"""Shared fixtures for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper at reduced
scale (the substrate is a from-scratch simulator, not the authors' 32-core
testbed).  Rendered outputs go to ``benchmarks/results/<name>.txt`` and to
stdout, so ``pytest benchmarks/ --benchmark-only`` leaves a full textual
report behind.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.datagen import generate
from repro.datagen.benchmark_dataset import BenchmarkDataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Reduced row counts per dataset: large enough for the paper's shape
#: findings, small enough for a laptop-scale run.
BENCH_ROWS: Dict[str, int] = {
    "Beers": 400,
    "Citation": 400,
    "Adult": 500,
    "BreastCancer": 350,
    "SmartFactory": 500,
    "Nasa": 400,
    "Bikes": 400,
    "SoilMoisture": 200,
    "Printer3D": 50,
    "Mercedes": 300,
    "Water": 300,
    "HAR": 500,
    "Power": 400,
    "Soccer": 600,
}

_CACHE: Dict[Tuple[str, int, int], BenchmarkDataset] = {}


def bench_dataset(name: str, n_rows: int = None, seed: int = 0) -> BenchmarkDataset:
    """Session-cached dataset generation at benchmark scale."""
    rows = n_rows if n_rows is not None else BENCH_ROWS[name]
    key = (name, rows, seed)
    if key not in _CACHE:
        _CACHE[key] = generate(name, n_rows=rows, seed=seed)
    return _CACHE[key]


def emit(name: str, text: str) -> None:
    """Print a rendered report and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n=== {name} ===")
    print(text)


@pytest.fixture
def datasets():
    return bench_dataset


@pytest.fixture
def report():
    return emit
