"""Section 6.5's rules ablation: rule-based detection quality vs the
number of user-provided rules.

The paper reports HoloClean's F1 on Adult dropping from 0.51 to 0.12 when
the rule count shrinks from 17 to 7.  We sweep the number of denial
constraints/FDs handed to HoloClean and NADEEF on the Adult analogue and
check the monotone shape.

A second ablation covers Min-K's vote threshold k (the design choice the
ensemble detectors hinge on): recall falls and precision rises with k.
"""

from typing import List

from conftest import bench_dataset, emit

from repro.context import CleaningContext
from repro.detectors import HoloCleanDetector, MinKDetector, NadeefDetector
from repro.metrics import detection_scores
from repro.reporting import render_table


def rules_sweep(seed: int = 0):
    dataset = bench_dataset("Adult", seed=seed)
    all_fds = list(dataset.fds)
    all_dcs = list(dataset.constraints)
    # Rule inventory, strongest first: FDs then range constraints.
    inventory = [("fd", fd) for fd in all_fds] + [("dc", dc) for dc in all_dcs]
    rows: List[List[object]] = []
    scores = {}
    for count in range(0, len(inventory) + 1):
        chosen = inventory[:count]
        context = CleaningContext(
            dirty=dataset.dirty,
            clean=dataset.clean,
            fds=[rule for kind, rule in chosen if kind == "fd"],
            constraints=[rule for kind, rule in chosen if kind == "dc"],
            seed=seed,
        )
        for detector in (HoloCleanDetector(), NadeefDetector()):
            result = detector.detect(context)
            score = detection_scores(result.cells, dataset.error_cells)
            rows.append(
                [detector.name, count, score.precision, score.recall, score.f1]
            )
            scores[(detector.name, count)] = score
    return rows, scores, len(inventory)


def test_ablation_rule_count(benchmark):
    rows, scores, n_rules = benchmark.pedantic(rules_sweep, rounds=1, iterations=1)
    emit(
        "ablation_rule_count",
        render_table(
            ["detector", "n_rules", "precision", "recall", "f1"],
            rows,
            title="Ablation: rule-based detection vs number of rules (Adult)",
        ),
    )
    # More rules -> better recall for NADEEF, monotone up to noise.
    zero = scores[("NADEEF", 0)]
    full = scores[("NADEEF", n_rules)]
    assert full.recall > zero.recall
    assert full.f1 > zero.f1
    # HoloClean degrades when rules are removed (the 0.51 -> 0.12 shape).
    holo_full = scores[("HoloClean", n_rules)]
    holo_zero = scores[("HoloClean", 0)]
    assert holo_full.recall >= holo_zero.recall


def mink_sweep(seed: int = 0):
    dataset = bench_dataset("SmartFactory", seed=seed)
    context = dataset.context(seed=seed)
    rows: List[List[object]] = []
    scores = {}
    for k in (1, 2, 3, 4):
        # Disable trusted bypass so the sweep isolates the voting knob.
        detector = MinKDetector(k=k, trusted=())
        result = detector.detect(context)
        score = detection_scores(result.cells, dataset.error_cells)
        rows.append([k, score.precision, score.recall, score.f1])
        scores[k] = score
    return rows, scores


def test_ablation_min_k(benchmark):
    rows, scores = benchmark.pedantic(mink_sweep, rounds=1, iterations=1)
    emit(
        "ablation_min_k",
        render_table(
            ["k", "precision", "recall", "f1"],
            rows,
            title="Ablation: Min-K vote threshold (Smart Factory)",
        ),
    )
    # Recall is monotone non-increasing in k; precision non-decreasing
    # while anything is still detected (an empty detection set has
    # undefined precision, reported as 0).
    assert scores[1].recall >= scores[2].recall >= scores[4].recall
    assert scores[3].precision >= scores[1].precision - 0.05


def holoclean_weights_sweep(seed: int = 0):
    from repro.metrics import repair_scores_categorical
    from repro.repair import HoloCleanRepair

    dataset = bench_dataset("Beers", seed=seed)
    context = dataset.context(seed=seed)
    rows: List[List[object]] = []
    scores = {}
    for label, learn in (("fixed weights", False), ("learned weights", True)):
        method = HoloCleanRepair(learn_weights=learn)
        repaired = method.repair(context, dataset.error_cells).repaired
        result = repair_scores_categorical(
            dataset.dirty, repaired, dataset.clean, dataset.error_cells
        )
        rows.append([label, result.precision, result.recall, result.f1])
        scores[label] = result
    return rows, scores


def test_ablation_holoclean_weight_learning(benchmark):
    """Design-choice ablation: HoloClean's learned factor weights vs the
    calibrated fixed weights."""
    rows, scores = benchmark.pedantic(
        holoclean_weights_sweep, rounds=1, iterations=1
    )
    emit(
        "ablation_holoclean_weights",
        render_table(
            ["configuration", "precision", "recall", "f1"],
            rows,
            title="Ablation: HoloClean factor-weight learning (Beers)",
        ),
    )
    # The holdout gate means learning can only match or improve.
    assert (
        scores["learned weights"].f1 >= scores["fixed weights"].f1 - 0.05
    )
