"""Section 6.5's AutoML experiment: TPOT / Auto-Sklearn analogues on
differently-cleaned versions of the Breast Cancer analogue.

The paper's finding: AutoML does *not* always compensate for improper
cleaning -- the same AutoML system lands on very different accuracies
depending on the cleaning strategy that produced its training data.
"""

import math
from typing import Dict, List

import numpy as np
from conftest import bench_dataset, emit

from repro.dataset.encoding import encode_supervised
from repro.dataset.splits import train_test_split
from repro.detectors import MaxEntropyDetector, MVDetector
from repro.metrics import f1_score
from repro.ml.automl import AutoLearn, TPotLite
from repro.repair import GroundTruthRepair, MeanModeImputeRepair, MissForestMixRepair
from repro.reporting import render_table


def automl_over_strategies(seed: int = 0):
    dataset = bench_dataset("BreastCancer", seed=seed)
    context = dataset.context(seed=seed)
    detections = MaxEntropyDetector().detect(context).cells
    versions = {
        "dirty": dataset.dirty,
        "ground_truth": dataset.clean,
        "MaxEntropy+GT": GroundTruthRepair().repair(context, detections).repaired,
        "MaxEntropy+Impute-Mean": MeanModeImputeRepair().repair(
            context, detections
        ).repaired,
        "MaxEntropy+MISS-Mix": MissForestMixRepair().repair(
            context, detections
        ).repaired,
    }
    rng = np.random.default_rng(seed)
    labels = [str(v) for v in dataset.clean.column(dataset.target)]
    train_idx, test_idx = train_test_split(
        dataset.clean.n_rows, 0.25, rng=rng, stratify=labels
    )
    test_table = dataset.clean.select_rows(test_idx)
    rows: List[List[object]] = []
    results: Dict[str, Dict[str, float]] = {}
    for version_name, table in versions.items():
        train_table = table.select_rows(train_idx)
        x_train, y_train, x_test, y_test, _ = encode_supervised(
            train_table, test_table, dataset.target, "classification"
        )
        entry = {}
        for system_name, system in (
            ("AutoLearn", AutoLearn(time_budget=8, seed=seed)),
            ("TPotLite", TPotLite(population_size=4, generations=2, seed=seed)),
        ):
            try:
                system.fit(x_train, y_train)
                score = f1_score(y_test, system.predict(x_test))
            except (RuntimeError, ValueError):
                score = math.nan
            entry[system_name] = score
            rows.append([system_name, version_name, score])
        results[version_name] = entry
    return rows, results


def test_automl_cleaning_dependence(benchmark):
    rows, results = benchmark.pedantic(
        automl_over_strategies, rounds=1, iterations=1
    )
    emit(
        "automl_cleaning_strategies",
        render_table(
            ["automl_system", "training_version", "test_f1_on_clean"],
            rows,
            title="AutoML accuracy by cleaning strategy (Breast Cancer)",
        ),
    )
    # AutoML on ground truth is strong...
    best_gt = max(results["ground_truth"].values())
    assert best_gt > 0.7
    # ...and the spread across cleaning strategies is non-trivial: AutoML
    # does not fully compensate for improper cleaning.
    for system in ("AutoLearn", "TPotLite"):
        values = [
            entry[system]
            for entry in results.values()
            if not math.isnan(entry[system])
        ]
        assert len(values) >= 3
    all_scores = [
        v for entry in results.values() for v in entry.values()
        if not math.isnan(v)
    ]
    assert max(all_scores) - min(all_scores) > 0.02
