"""Cleaning-kernel speedups: vectorized hot paths vs frozen references.

Every cleaning-stage kernel rewritten in the vectorization pass is
timed here against the scalar implementation frozen in the
``_reference`` modules, on honest workloads (generated benchmark
tables with injected errors, at 10k rows for the stages the paper
scales).  The property suite in ``tests/test_cleaning_kernels.py``
proves each pair produces *bit-identical* outputs, so these are pure
like-for-like comparisons.

Bars:

- duplicate detection (blocking + pair enumeration + pair features)
  and denial-constraint checking: >= 3x each at 10k rows;
- geometric mean across all seven kernels: >= 3x.

The numbers land in ``BENCH_cleaning.json`` at the repo root so they
stay diffable PR over PR (methodology in ``EXPERIMENTS.md``).
"""

import math
import os
import time

import numpy as np
from conftest import bench_dataset, emit

from repro.constraints._reference import (
    reference_fd_majority_repairs,
    reference_fd_violations,
)
from repro.context import CleaningContext
from repro.datagen import generate
from repro.detectors._reference import (
    reference_build_blocks,
    reference_enumerate_block_pairs,
    reference_histogram_outliers,
    reference_katara_violations,
    reference_pair_feature_matrix,
)
from repro.detectors.dboost import _histogram_outliers
from repro.detectors.duplicates import (
    _enumerate_block_pairs,
    build_blocks,
    column_standard_deviations,
    pair_feature_matrix,
)
from repro.detectors.katara import KnowledgeBase, katara_violations
from repro.kernels import reference_kernels
from repro.observability import write_bench_snapshot
from repro.repair import BaranRepair, HoloCleanRepair
from repro.reporting import render_table

#: Machine-readable perf snapshot, committed at the repo root.
BENCH_SNAPSHOT = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_cleaning.json"
)

SCALE_ROWS = 10_000
REPAIR_ROWS = 8_000
MAX_PAIRS = 20_000
DC_MAX_PAIRS = 200_000

_RESULTS = {}


def _best_of(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _record(kernel, ref_seconds, vec_seconds, workload):
    speedup = ref_seconds / vec_seconds
    _RESULTS[f"{kernel}_reference_seconds"] = round(ref_seconds, 4)
    _RESULTS[f"{kernel}_vectorized_seconds"] = round(vec_seconds, 4)
    _RESULTS[f"{kernel}_speedup"] = round(speedup, 2)
    emit(
        f"cleaning_{kernel}_speed",
        render_table(
            ["kernel", "seconds", "speedup"],
            [
                ["scalar reference", round(ref_seconds, 4), 1.0],
                ["vectorized", round(vec_seconds, 4), round(speedup, 2)],
            ],
            title=f"{kernel}: {workload}",
        ),
    )
    return speedup


def _scale_table():
    return bench_dataset("SmartFactory", n_rows=SCALE_ROWS).dirty


def test_dboost_histogram_speed(benchmark):
    table = _scale_table()
    numeric = [
        c for c in table.column_names if table.schema.kind_of(c) == "numerical"
    ]
    columns = [table.as_float(c) for c in numeric]

    def vectorized():
        for values in columns:
            _histogram_outliers(values, 0.1, 8)

    def reference():
        for values in columns:
            reference_histogram_outliers(values, 0.1, 8)

    benchmark.pedantic(vectorized, rounds=3, warmup_rounds=1)
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(reference)
    _record(
        "dboost_histogram",
        ref_seconds,
        vec_seconds,
        f"SmartFactory n={SCALE_ROWS}, {len(columns)} numeric columns",
    )


def test_duplicate_detection_speed_at_least_three_times(benchmark):
    table = _scale_table()
    stds = column_standard_deviations(table)

    def vectorized():
        pairs = _enumerate_block_pairs(build_blocks(table), MAX_PAIRS)
        return pair_feature_matrix(table, pairs, stds)

    def reference():
        pairs = reference_enumerate_block_pairs(
            reference_build_blocks(table), MAX_PAIRS
        )
        return reference_pair_feature_matrix(table, pairs, stds)

    benchmark.pedantic(vectorized, rounds=3, warmup_rounds=1)
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(reference, reps=2)
    speedup = _record(
        "duplicates",
        ref_seconds,
        vec_seconds,
        f"SmartFactory n={SCALE_ROWS}, blocking + {MAX_PAIRS} pair features",
    )
    assert speedup >= 3.0, (
        f"duplicate detection regressed to {speedup:.2f}x "
        f"(reference {ref_seconds:.3f}s, vectorized {vec_seconds:.3f}s)"
    )


def test_dc_checking_speed_at_least_three_times(benchmark):
    dataset = bench_dataset("Soccer", n_rows=SCALE_ROWS)
    table = dataset.dirty
    dc = dataset.fds[0].to_denial_constraint()

    def vectorized():
        return dc.violations(table, max_pairs=DC_MAX_PAIRS)

    def reference():
        with reference_kernels():
            return dc.violations(table, max_pairs=DC_MAX_PAIRS)

    benchmark.pedantic(vectorized, rounds=3, warmup_rounds=1)
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(reference, reps=2)
    speedup = _record(
        "dc_checking",
        ref_seconds,
        vec_seconds,
        f"Soccer n={SCALE_ROWS}, binary DC ({dc.name}), "
        f"max_pairs={DC_MAX_PAIRS}",
    )
    assert speedup >= 3.0, (
        f"DC checking regressed to {speedup:.2f}x "
        f"(reference {ref_seconds:.3f}s, vectorized {vec_seconds:.3f}s)"
    )


def test_fd_checking_speed(benchmark):
    dataset = bench_dataset("Soccer", n_rows=SCALE_ROWS)
    table = dataset.dirty
    fd = dataset.fds[0]

    def vectorized():
        fd.violations(table)
        fd.majority_repairs(table)

    def reference():
        reference_fd_violations(fd, table)
        reference_fd_majority_repairs(fd, table)

    benchmark.pedantic(vectorized, rounds=3, warmup_rounds=1)
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(reference)
    _record(
        "fd_checking",
        ref_seconds,
        vec_seconds,
        f"Soccer n={SCALE_ROWS}, violations + majority repairs",
    )


def _katara_setup():
    dataset = bench_dataset("Soccer", n_rows=SCALE_ROWS)
    categorical = [
        c
        for c in dataset.clean.column_names
        if dataset.clean.schema.kind_of(c) == "categorical"
    ][:2]
    kb = KnowledgeBase()
    alignment = {}
    for idx, column in enumerate(categorical):
        domain = {
            v
            for v in (
                KnowledgeBase.normalize(x)
                for x in dataset.clean.column(column)
            )
            if v is not None
        }
        kb.add_domain(f"concept{idx}", domain)
        alignment[column] = f"concept{idx}"
    if len(categorical) == 2:
        pairs = {
            (
                KnowledgeBase.normalize(dataset.clean.get_cell(i, categorical[0])),
                KnowledgeBase.normalize(dataset.clean.get_cell(i, categorical[1])),
            )
            for i in range(dataset.clean.n_rows)
        }
        kb.add_relation(
            "concept0",
            "concept1",
            {(a, b) for a, b in pairs if a is not None and b is not None},
        )
    return kb, dataset.dirty, alignment


def test_katara_speed(benchmark):
    kb, table, alignment = _katara_setup()

    benchmark.pedantic(
        lambda: katara_violations(kb, table, alignment),
        rounds=3,
        warmup_rounds=1,
    )
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(
        lambda: reference_katara_violations(kb, table, alignment)
    )
    _record(
        "katara",
        ref_seconds,
        vec_seconds,
        f"Soccer n={SCALE_ROWS}, domain + relation checks",
    )


def _repair_case():
    dataset = generate("Beers", n_rows=REPAIR_ROWS, seed=1)
    rng = np.random.default_rng(0)
    columns = list(dataset.dirty.column_names)
    detections = {
        (int(rng.integers(REPAIR_ROWS)), columns[int(rng.integers(len(columns)))])
        for _ in range(1_500)
    }
    return dataset, detections


def test_baran_scoring_speed(benchmark):
    dataset, detections = _repair_case()

    def vectorized():
        return BaranRepair(label_budget=10)._repair(
            dataset.context(seed=0), set(detections)
        )

    def reference():
        with reference_kernels():
            return BaranRepair(label_budget=10)._repair(
                dataset.context(seed=0), set(detections)
            )

    benchmark.pedantic(vectorized, rounds=3, warmup_rounds=1)
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(reference, reps=2)
    _record(
        "baran",
        ref_seconds,
        vec_seconds,
        f"Beers n={REPAIR_ROWS}, {len(detections)} detected cells",
    )


def test_holoclean_scoring_speed(benchmark):
    dataset, detections = _repair_case()

    def vectorized():
        return HoloCleanRepair()._repair(
            dataset.context(seed=0), set(detections)
        )

    def reference():
        with reference_kernels():
            return HoloCleanRepair()._repair(
                dataset.context(seed=0), set(detections)
            )

    benchmark.pedantic(vectorized, rounds=3, warmup_rounds=1)
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(reference, reps=2)
    _record(
        "holoclean",
        ref_seconds,
        vec_seconds,
        f"Beers n={REPAIR_ROWS}, {len(detections)} detected cells",
    )


KERNELS = (
    "dboost_histogram",
    "duplicates",
    "dc_checking",
    "fd_checking",
    "katara",
    "baran",
    "holoclean",
)


def test_write_cleaning_snapshot():
    """Runs last (file order): geometric-mean bar + persisted snapshot."""
    missing = [k for k in KERNELS if f"{k}_speedup" not in _RESULTS]
    assert not missing, f"benchmarks did not record {missing}"
    speedups = [_RESULTS[f"{k}_speedup"] for k in KERNELS]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    _RESULTS["geometric_mean_speedup"] = round(geomean, 2)
    emit(
        "cleaning_speed_summary",
        render_table(
            ["kernel", "speedup"],
            [[k, _RESULTS[f"{k}_speedup"]] for k in KERNELS]
            + [["geometric mean", round(geomean, 2)]],
            title="cleaning-kernel speedups, vectorized vs frozen reference",
        ),
    )
    write_bench_snapshot(
        BENCH_SNAPSHOT,
        "cleaning_speed",
        numbers=dict(_RESULTS),
        context={
            "datasets": {
                "dboost_histogram": "SmartFactory",
                "duplicates": "SmartFactory",
                "dc_checking": "Soccer",
                "fd_checking": "Soccer",
                "katara": "Soccer",
                "baran": "Beers",
                "holoclean": "Beers",
            },
            "scale_rows": SCALE_ROWS,
            "repair_rows": REPAIR_ROWS,
            "duplicate_max_pairs": MAX_PAIRS,
            "dc_max_pairs": DC_MAX_PAIRS,
            "repair_detections": 1_500,
            "rounds": 3,
            "timing": "best-of (min) wall clock",
        },
    )
    assert geomean >= 3.0, (
        f"expected >= 3x geometric-mean cleaning speedup, got {geomean:.2f}x"
    )
