"""Data-plane dispatch overhead: shared segments vs per-worker pickles.

Before the data plane, ``ProcessPoolExecutor`` shipped the stage's
shared context -- dataset tables and all -- as one pickle **per
worker**: a ``spawn`` pool at N workers serialized, piped and
deserialized the whole dataset N times before executing a single unit.
The data plane packs each table once into shared-memory segments and
ships only a small shell, so per-worker bytes collapse and dispatch
start-up stops scaling with table size.

Two measurements on a detection suite over a large SmartFactory table,
``spawn`` start method (the start method that cannot inherit memory, so
every byte shipped is paid for real):

- **bytes**: per-worker shared-context pickle with and without table
  sharing (bar: >= 10x reduction);
- **wall-clock**: end-to-end suite dispatch at 4 workers, data plane vs
  legacy whole-pickle (bar: >= 1.3x), with the 8-worker point recorded
  alongside.

Both modes must produce byte-identical payloads -- the speedup is free.
"""

import json
import os
import time

from conftest import bench_dataset, emit

from repro.benchmark import run_detection_suite
from repro.dataplane import SegmentManager, pack_shared
from repro.detectors import MVDetector, SDDetector
from repro.observability import write_bench_snapshot
from repro.parallel import ProcessPoolExecutor
from repro.reporting import render_table

#: Machine-readable perf snapshot, committed at the repo root so the
#: numbers are diffable PR over PR.
BENCH_SNAPSHOT = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_dataplane.json"
)

#: Large enough that shipping the table dominates dispatch; the paper's
#: Table-4 datasets run this order of magnitude and beyond.
ROWS = 60_000
WORKERS = 4
EXTRA_WORKERS = 8
ROUNDS = 2

MIN_BYTES_REDUCTION = 10.0
MIN_SPEEDUP = 1.3


def _dataset():
    return bench_dataset("SmartFactory", n_rows=ROWS, seed=3)


def _detectors():
    return [MVDetector(), SDDetector(2.5), SDDetector(3.0), SDDetector(3.5)]


def _suite_seconds(share_tables: bool, workers: int) -> tuple:
    executor = ProcessPoolExecutor(
        workers, start_method="spawn", share_tables=share_tables
    )
    started = time.perf_counter()
    runs = run_detection_suite(_dataset(), _detectors(), executor=executor)
    return time.perf_counter() - started, runs


def _payloads(runs) -> str:
    stripped = []
    for run in runs:
        payload = run.to_payload()
        payload["runtime_seconds"] = None  # wall clock differs by design
        stripped.append(payload)
    return json.dumps(stripped, sort_keys=True)


def test_dataplane_cuts_spawn_dispatch_overhead():
    dataset = _dataset()

    # Per-worker context bytes: the legacy shell carries the tables,
    # the data-plane shell carries segment references.
    with SegmentManager() as manager:
        legacy_bytes = pack_shared(
            dataset, manager, share_tables=False
        ).shipped_bytes
    with SegmentManager() as manager:
        shipment = pack_shared(dataset, manager, share_tables=True)
        plane_bytes = shipment.shipped_bytes
        shared_bytes = shipment.shared_bytes
    bytes_reduction = legacy_bytes / max(1, plane_bytes)

    # End-to-end wall clock, best of ROUNDS (pool start-up included --
    # that is exactly the overhead under test).
    legacy_seconds, legacy_runs = min(
        (_suite_seconds(False, WORKERS) for _ in range(ROUNDS)),
        key=lambda pair: pair[0],
    )
    plane_seconds, plane_runs = min(
        (_suite_seconds(True, WORKERS) for _ in range(ROUNDS)),
        key=lambda pair: pair[0],
    )
    assert _payloads(plane_runs) == _payloads(legacy_runs)
    speedup = legacy_seconds / plane_seconds

    legacy_8, _ = _suite_seconds(False, EXTRA_WORKERS)
    plane_8, _ = _suite_seconds(True, EXTRA_WORKERS)

    emit(
        "dataplane_speed",
        render_table(
            ["configuration", "ctx_bytes/worker", "wall_seconds", "speedup"],
            [
                [
                    f"legacy pickle, {WORKERS}w",
                    legacy_bytes,
                    round(legacy_seconds, 2),
                    1.0,
                ],
                [
                    f"data plane, {WORKERS}w",
                    plane_bytes,
                    round(plane_seconds, 2),
                    round(speedup, 2),
                ],
                [
                    f"legacy pickle, {EXTRA_WORKERS}w",
                    legacy_bytes,
                    round(legacy_8, 2),
                    1.0,
                ],
                [
                    f"data plane, {EXTRA_WORKERS}w",
                    plane_bytes,
                    round(plane_8, 2),
                    round(legacy_8 / plane_8, 2),
                ],
            ],
            title=(
                f"spawn dispatch, SmartFactory x {ROWS} rows, "
                f"{len(_detectors())} detectors "
                f"({shared_bytes / 1e6:.1f} MB shared once in segments)"
            ),
        ),
    )
    write_bench_snapshot(
        BENCH_SNAPSHOT,
        "dataplane_speed",
        numbers={
            "legacy_bytes_per_worker": legacy_bytes,
            "plane_bytes_per_worker": plane_bytes,
            "bytes_reduction": round(bytes_reduction, 2),
            "shared_segment_bytes": shared_bytes,
            "legacy_seconds_4w": round(legacy_seconds, 3),
            "plane_seconds_4w": round(plane_seconds, 3),
            "speedup_4w": round(speedup, 3),
            "legacy_seconds_8w": round(legacy_8, 3),
            "plane_seconds_8w": round(plane_8, 3),
            "speedup_8w": round(legacy_8 / plane_8, 3),
        },
        context={
            "dataset": "SmartFactory",
            "rows": ROWS,
            "n_units": len(_detectors()),
            "start_method": "spawn",
            "workers": [WORKERS, EXTRA_WORKERS],
            "rounds": ROUNDS,
        },
    )
    assert bytes_reduction >= MIN_BYTES_REDUCTION, (
        f"expected >= {MIN_BYTES_REDUCTION}x per-worker byte reduction, "
        f"got {bytes_reduction:.1f}x ({legacy_bytes} -> {plane_bytes})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x spawn dispatch speedup at {WORKERS} "
        f"workers, got {speedup:.2f}x (legacy {legacy_seconds:.2f}s, "
        f"data plane {plane_seconds:.2f}s)"
    )
