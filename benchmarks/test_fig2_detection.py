"""Figure 2: detection accuracy, IoU similarity, and runtime per dataset.

Each test regenerates one dataset's panel group (e.g. 2a-2c for Beers):
detected-cell counts with true/false-positive split, the pairwise IoU
matrix over true positives, and per-detector runtimes.
"""

from typing import Dict, List

from conftest import bench_dataset, emit

from repro.benchmark import BenchmarkController, detection_iou, run_detection_suite
from repro.detectors import (
    CleanLabDetector,
    DBoostDetector,
    ED2Detector,
    FahesDetector,
    HoloCleanDetector,
    IFDetector,
    IQRDetector,
    KataraDetector,
    KeyCollisionDetector,
    MaxEntropyDetector,
    MetadataDrivenDetector,
    MinKDetector,
    MVDetector,
    NadeefDetector,
    OpenRefineDetector,
    PicketDetector,
    RahaDetector,
    SDDetector,
    ZeroERDetector,
)
from repro.reporting import render_matrix, render_table

#: Benchmark-scale detector pool: identical methods, smaller budgets.
def detector_pool():
    return [
        KataraDetector(),
        NadeefDetector(),
        FahesDetector(),
        HoloCleanDetector(),
        DBoostDetector(n_search=8),
        OpenRefineDetector(),
        IFDetector(n_estimators=25),
        SDDetector(),
        IQRDetector(),
        MVDetector(),
        KeyCollisionDetector(),
        ZeroERDetector(),
        CleanLabDetector(),
        MinKDetector(),
        MaxEntropyDetector(),
        MetadataDrivenDetector(label_budget=150),
        RahaDetector(labels_per_column=10),
        ED2Detector(labels_per_column=15),
        PicketDetector(),
    ]


def run_dataset_panel(name: str, seed: int = 0):
    dataset = bench_dataset(name, seed=seed)
    controller = BenchmarkController(detectors=detector_pool())
    applicable = controller.applicable_detectors(dataset)
    runs = run_detection_suite(dataset, applicable, seed=seed)
    # Paper convention: detectors that found nothing are dropped from plots.
    active = [r for r in runs if not r.failed and r.result.n_detected > 0]
    return dataset, runs, active


def render_panel(name: str, dataset, runs, active) -> None:
    accuracy_rows: List[List[object]] = []
    for run in sorted(active, key=lambda r: -r.scores.f1):
        accuracy_rows.append(
            [
                run.detector,
                run.result.n_detected,
                run.scores.true_positives,
                run.scores.false_positives,
                run.scores.precision,
                run.scores.recall,
                run.scores.f1,
            ]
        )
    actual = len(dataset.error_cells)
    emit(
        f"fig2_{name.lower()}_accuracy",
        render_table(
            ["detector", "detected", "tp", "fp", "precision", "recall", "f1"],
            accuracy_rows,
            title=(
                f"Figure 2 ({name}): detection accuracy "
                f"(actual erroneous cells: {actual})"
            ),
        ),
    )
    names, matrix = detection_iou(active, dataset)
    emit(
        f"fig2_{name.lower()}_iou",
        render_matrix(
            names, matrix, title=f"Figure 2 ({name}): IoU over true positives"
        ),
    )
    runtime_rows = [
        [run.detector, run.result.runtime_seconds]
        for run in sorted(active, key=lambda r: -r.result.runtime_seconds)
    ]
    emit(
        f"fig2_{name.lower()}_runtime",
        render_table(
            ["detector", "runtime_s"],
            runtime_rows,
            title=f"Figure 2 ({name}): detection runtime",
            precision=4,
        ),
    )


def _scores(active) -> Dict[str, float]:
    return {r.detector: r.scores.f1 for r in active}


def test_fig2_beers(benchmark):
    """Fig 2a-2c: ML/ensemble methods lead on Beers' mixed errors."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("Beers"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    best_learned = max(
        f1.get(n, 0.0) for n in ("ED2", "RAHA", "Min-K", "MaxEntropy")
    )
    assert best_learned > 0.5
    # ML-based/ensemble methods beat single-error tools like KATARA.
    assert best_learned > f1.get("KATARA", 0.0)
    render_panel("Beers", dataset, runs, active)


def test_fig2_citation(benchmark):
    """Fig 2d-2e: key collision wins on duplicates; CleanLab only sees
    the mislabels."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("Citation"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    others = [v for k, v in f1.items() if k not in ("KeyCollision", "ZeroER")]
    assert f1.get("KeyCollision", 0.0) >= max(others, default=0.0)
    by_name = {r.detector: r for r in active}
    if "CleanLab" in by_name:
        # CleanLab captures only mislabel cells, so its recall over all
        # errors (mostly duplicate cells) is low -- the paper's F1=0.19.
        assert by_name["CleanLab"].scores.recall < 0.5
    render_panel("Citation", dataset, runs, active)


def test_fig2_adult(benchmark):
    """Fig 2f-2g: learned detectors lead on rule violations + outliers."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("Adult"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    learned_best = max(f1.get("RAHA", 0), f1.get("ED2", 0))
    assert learned_best > 0.5
    # dBoost captures outliers but misses rule violations -> lower recall.
    by_name = {r.detector: r for r in active}
    if "dBoost" in by_name:
        assert by_name["dBoost"].scores.recall < 0.9
    render_panel("Adult", dataset, runs, active)


def test_fig2_smart_factory(benchmark):
    """Fig 2h-2j: Min-K leads while staying fast."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("SmartFactory"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    assert f1.get("Min-K", 0.0) > 0.5
    render_panel("SmartFactory", dataset, runs, active)


def test_fig2_nasa(benchmark):
    """Fig 2k-2m: MaxEntropy/dBoost lead on the small MV+outlier set."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("Nasa"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    assert max(f1.get("MaxEntropy", 0), f1.get("dBoost", 0)) > 0.5
    render_panel("Nasa", dataset, runs, active)


def test_fig2_bikes(benchmark):
    """Fig 2n-2o: ensembles lead; Min-K cheaper than RAHA."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("Bikes"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    assert max(f1.get("Min-K", 0), f1.get("RAHA", 0)) > 0.4
    render_panel("Bikes", dataset, runs, active)


def test_fig2_water(benchmark):
    """Fig 2p: MaxEntropy/RAHA lead on implicit MVs + outliers."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("Water"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    assert max(f1.get("MaxEntropy", 0), f1.get("RAHA", 0)) > 0.4
    render_panel("Water", dataset, runs, active)


def test_fig2_power(benchmark):
    """Fig 2q: MVD finds exactly the explicit missing values."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("Power"), rounds=1, iterations=1
    )
    by_name = {r.detector: r for r in active}
    if "MVD" in by_name:
        assert by_name["MVD"].scores.precision == 1.0
    render_panel("Power", dataset, runs, active)


def test_fig2_har(benchmark):
    """Fig 2r-2t: RAHA leads at a runtime cost."""
    dataset, runs, active = benchmark.pedantic(
        lambda: run_dataset_panel("HAR"), rounds=1, iterations=1
    )
    f1 = _scores(active)
    assert f1.get("RAHA", 0.0) > 0.5
    by_name = {r.detector: r for r in active}
    if "RAHA" in by_name and "SD" in by_name:
        assert (
            by_name["RAHA"].result.runtime_seconds
            > by_name["SD"].result.runtime_seconds
        )
    render_panel("HAR", dataset, runs, active)
