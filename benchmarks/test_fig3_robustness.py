"""Figure 3a-3c: detection robustness.

3a/3b sweep the injected *error rate* (Adult-style and Power-style data);
3c sweeps the *outlier degree* on the Smart Factory analogue with a fixed
30% error rate, as Section 6.2.1 specifies.
"""

from typing import Dict, List, Tuple

import numpy as np
from conftest import emit

from repro.context import CleaningContext
from repro.datagen import generate
from repro.detectors import (
    DBoostDetector,
    ED2Detector,
    IQRDetector,
    MaxEntropyDetector,
    MetadataDrivenDetector,
    MinKDetector,
    MVDetector,
    RahaDetector,
    SDDetector,
)
from repro.errors import CompositeInjector, MissingValueInjector, OutlierInjector
from repro.metrics import detection_scores
from repro.reporting import render_series

ERROR_RATES = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3)
OUTLIER_DEGREES = (1.0, 2.0, 3.0, 4.0, 5.0)


def robustness_detectors():
    return [
        SDDetector(),
        IQRDetector(),
        DBoostDetector(n_search=6),
        MinKDetector(),
        MaxEntropyDetector(),
        RahaDetector(labels_per_column=10),
        ED2Detector(labels_per_column=12),
    ]


def sweep_error_rate(base_dataset_name: str, n_rows: int = 300, seed: int = 0):
    """Re-inject MVs+outliers at increasing rates; score each detector."""
    clean = generate(base_dataset_name, n_rows=n_rows, seed=seed).clean
    numeric = clean.schema.numerical_names
    series: Dict[str, List[Tuple[float, float]]] = {
        d.name: [] for d in robustness_detectors()
    }
    for rate in ERROR_RATES:
        injector = CompositeInjector(
            [
                OutlierInjector(columns=numeric, degree=4.0),
                MissingValueInjector(columns=numeric),
            ]
        )
        result = injector.inject(clean, rate, np.random.default_rng(seed + 1))
        context = CleaningContext(dirty=result.dirty, clean=clean, seed=seed)
        for detector in robustness_detectors():
            detected = detector.detect(context)
            scores = detection_scores(detected.cells, result.error_cells)
            series[detector.name].append((rate, scores.f1))
    return series


def sweep_outlier_degree(n_rows: int = 300, seed: int = 0):
    """Fixed 30% rate, varying outlier degree (Figure 3c)."""
    clean = generate("SmartFactory", n_rows=n_rows, seed=seed).clean
    numeric = clean.schema.numerical_names
    series: Dict[str, List[Tuple[float, float]]] = {
        d.name: [] for d in robustness_detectors()
    }
    for degree in OUTLIER_DEGREES:
        injector = OutlierInjector(columns=numeric, degree=degree)
        result = injector.inject(clean, 0.3, np.random.default_rng(seed + 2))
        context = CleaningContext(dirty=result.dirty, clean=clean, seed=seed)
        for detector in robustness_detectors():
            detected = detector.detect(context)
            scores = detection_scores(detected.cells, result.error_cells)
            series[detector.name].append((degree, scores.f1))
    return series


def test_fig3a_error_rate_adult(benchmark):
    series = benchmark.pedantic(
        lambda: sweep_error_rate("Adult"), rounds=1, iterations=1
    )
    emit(
        "fig3a_robustness_adult",
        render_series(
            series, "error_rate", "f1",
            title="Figure 3a: detection F1 vs error rate (Adult analogue)",
        ),
    )
    # Learned/ensemble detectors reach high F1 somewhere in the sweep.
    for name in ("MaxEntropy", "Min-K", "ED2"):
        assert max(f1 for _, f1 in series[name]) > 0.5, name


def test_fig3b_error_rate_power(benchmark):
    series = benchmark.pedantic(
        lambda: sweep_error_rate("Power"), rounds=1, iterations=1
    )
    emit(
        "fig3b_robustness_power",
        render_series(
            series, "error_rate", "f1",
            title="Figure 3b: detection F1 vs error rate (Power analogue)",
        ),
    )
    assert max(f1 for _, f1 in series["ED2"]) > 0.5


def test_fig3c_outlier_degree(benchmark):
    series = benchmark.pedantic(sweep_outlier_degree, rounds=1, iterations=1)
    emit(
        "fig3c_outlier_degree",
        render_series(
            series, "outlier_degree", "f1",
            title=(
                "Figure 3c: detection F1 vs outlier degree "
                "(Smart Factory analogue, 30% error rate)"
            ),
        ),
    )
    # The paper's shape: detection improves as outliers move further out.
    for name in ("SD", "IQR", "dBoost", "Min-K"):
        first = series[name][0][1]
        last = series[name][-1][1]
        assert last >= first - 0.05, (name, first, last)
    # At the largest degree the resistant statistical detector is strong.
    # (Plain SD suffers the classic masking effect at 30% contamination --
    # the injected outliers inflate the column std -- which is why the
    # paper recommends IQR as the "more resistant" measure.)
    assert series["IQR"][-1][1] > 0.6
    assert max(f1 for _, f1 in series["ED2"]) > 0.6
