"""Figure 3d-3e: scalability over fractions of the Soccer analogue.

Detection accuracy and runtime at increasing data fractions; detectors
that exceed a per-fraction budget are reported as "stopped working", the
way the paper reports RAHA/ED2 halting at 50% of Soccer.
"""

import math
from typing import Dict, List, Tuple

from conftest import emit

from repro.benchmark import run_detection_suite
from repro.datagen import generate
from repro.datagen.benchmark_dataset import BenchmarkDataset
from repro.detectors import (
    DBoostDetector,
    ED2Detector,
    IQRDetector,
    KataraDetector,
    MinKDetector,
    MVDetector,
    NadeefDetector,
    PicketDetector,
    RahaDetector,
    SDDetector,
)
from repro.reporting import render_series

FRACTIONS = (0.1, 0.25, 0.5, 0.75, 1.0)
FULL_ROWS = 1200  # reduced-scale stand-in for Soccer's 180k rows


def scalability_detectors():
    return [
        MVDetector(),
        SDDetector(),
        IQRDetector(),
        DBoostDetector(n_search=6),
        NadeefDetector(),
        MinKDetector(),
        RahaDetector(labels_per_column=10),
        ED2Detector(labels_per_column=12),
        # Picket's memory boundary: it refuses datasets beyond a size cap,
        # reproducing the "terminated due to memory faults" behaviour.
        PicketDetector(max_rows=int(FULL_ROWS * 0.5)),
    ]


def fraction_dataset(fraction: float, seed: int = 0) -> BenchmarkDataset:
    rows = max(60, int(FULL_ROWS * fraction))
    return generate("Soccer", n_rows=rows, seed=seed)


def sweep_fractions():
    from repro.metrics import detection_scores

    f1_series: Dict[str, List[Tuple[float, float]]] = {}
    runtime_series: Dict[str, List[Tuple[float, float]]] = {}
    stopped: Dict[str, float] = {}
    nadeef_rule_f1 = 0.0
    for fraction in FRACTIONS:
        dataset = fraction_dataset(fraction)
        runs = run_detection_suite(dataset, scalability_detectors())
        for run in runs:
            if run.failed:
                stopped.setdefault(run.detector, fraction)
                continue
            f1_series.setdefault(run.detector, []).append(
                (fraction, run.scores.f1)
            )
            runtime_series.setdefault(run.detector, []).append(
                (fraction, run.result.runtime_seconds)
            )
            if run.detector == "NADEEF" and fraction == 1.0:
                rule_cells = dataset.cells_by_type.get("rule_violation", set())
                nadeef_rule_f1 = detection_scores(
                    run.result.cells, rule_cells
                ).f1
    return f1_series, runtime_series, stopped, nadeef_rule_f1


def test_fig3d_fig3e_scalability(benchmark):
    f1_series, runtime_series, stopped, nadeef_rule_f1 = benchmark.pedantic(
        sweep_fractions, rounds=1, iterations=1
    )
    stopped_note = (
        "\nstopped working at fraction: "
        + ", ".join(f"{k}={v}" for k, v in sorted(stopped.items()))
        if stopped
        else ""
    )
    emit(
        "fig3d_scalability_f1",
        render_series(
            f1_series, "fraction", "f1",
            title="Figure 3d: detection F1 vs Soccer data fraction",
        )
        + stopped_note,
    )
    emit(
        "fig3e_scalability_runtime",
        render_series(
            runtime_series, "fraction", "runtime_s",
            title="Figure 3e: detection runtime vs Soccer data fraction",
        ),
    )
    # Shape findings of the paper:
    # (1) some detectors stop working beyond a fraction (Picket here);
    assert "Picket" in stopped and stopped["Picket"] > 0.25
    # (2) the ensemble keeps a high F1 across fractions; NADEEF stays
    #     perfect-precision on the rule violations it targets (our Soccer
    #     analogue has proportionally fewer rule violations than the
    #     original, so NADEEF's *overall* recall is bounded by the mix);
    assert max(f1 for _, f1 in f1_series["Min-K"]) > 0.5
    assert nadeef_rule_f1 > 0.5
    # (3) ML-supported detectors cost more runtime than simple statistics
    #     at the full fraction.
    full_runtime = {
        name: points[-1][1]
        for name, points in runtime_series.items()
        if points[-1][0] == 1.0
    }
    if "ED2" in full_runtime and "SD" in full_runtime:
        assert full_runtime["ED2"] > full_runtime["SD"]
    # (4) runtime grows with the fraction for every surviving detector.
    for name, points in runtime_series.items():
        if len(points) >= 2 and points[-1][1] > 0.05:
            assert points[-1][1] >= points[0][1] * 0.5, name
