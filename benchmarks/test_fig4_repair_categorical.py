"""Figure 4: repair results on the categorical attributes.

Beers (4a-4b) and Breast Cancer (4c-4d): repair precision/recall/F1 for
every (detector, repair) strategy, plus repair runtimes.  Breast Cancer is
all-numeric in Table 4, so its "categorical" panel in the paper covers the
cells that typos turned into text; we evaluate the same cells here through
the numerical RMSE lens in fig5 and use the repair *accuracy on detected
cells* here.
"""

import math
from typing import Dict, List, Set

from conftest import bench_dataset, emit

from repro.benchmark import run_detection_suite, run_repair_suite
from repro.dataset.table import Cell
from repro.detectors import (
    ED2Detector,
    FahesDetector,
    HoloCleanDetector,
    KataraDetector,
    MaxEntropyDetector,
    MinKDetector,
    NadeefDetector,
    RahaDetector,
)
from repro.repair import (
    BaranRepair,
    GroundTruthRepair,
    HoloCleanRepair,
    MeanModeImputeRepair,
    MissForestMixRepair,
    OpenRefineRepair,
)
from repro.reporting import render_table


def detection_pool():
    return [
        KataraDetector(),
        NadeefDetector(),
        HoloCleanDetector(),
        MinKDetector(),
        MaxEntropyDetector(),
        RahaDetector(labels_per_column=10),
        ED2Detector(labels_per_column=15),
    ]


def repair_pool():
    return [
        GroundTruthRepair(),
        MeanModeImputeRepair(),
        MissForestMixRepair(),
        HoloCleanRepair(),
        OpenRefineRepair(),
        BaranRepair(label_budget=15),
    ]


def run_repair_grid(dataset_name: str, seed: int = 0):
    dataset = bench_dataset(dataset_name, seed=seed)
    detection_runs = run_detection_suite(dataset, detection_pool(), seed=seed)
    detections: Dict[str, Set[Cell]] = {
        run.detector: set(run.result.cells)
        for run in detection_runs
        if not run.failed and run.result.n_detected > 0
    }
    repair_runs = run_repair_suite(dataset, detections, repair_pool(), seed=seed)
    return dataset, detection_runs, repair_runs


def render_grid(name: str, repair_runs) -> None:
    accuracy_rows: List[List[object]] = []
    runtime_rows: List[List[object]] = []
    for run in repair_runs:
        if run.failed:
            accuracy_rows.append(
                [run.strategy, None, None, None, "FAILED: " + run.failure[:40]]
            )
            continue
        accuracy_rows.append(
            [
                run.strategy,
                run.categorical_precision,
                run.categorical_recall,
                run.categorical_f1,
                "",
            ]
        )
        runtime_rows.append([run.strategy, run.result.runtime_seconds])
    emit(
        f"fig4_{name.lower()}_repair_accuracy",
        render_table(
            ["strategy", "precision", "recall", "f1", "note"],
            accuracy_rows,
            title=f"Figure 4 ({name}): categorical repair accuracy",
        ),
    )
    runtime_rows.sort(key=lambda r: -r[1])
    emit(
        f"fig4_{name.lower()}_repair_runtime",
        render_table(
            ["strategy", "runtime_s"],
            runtime_rows,
            title=f"Figure 4 ({name}): repair runtime",
            precision=4,
        ),
    )


def test_fig4ab_beers(benchmark):
    dataset, detection_runs, repair_runs = benchmark.pedantic(
        lambda: run_repair_grid("Beers"), rounds=1, iterations=1
    )
    render_grid("Beers", repair_runs)
    scores = {
        run.strategy: run.categorical_f1
        for run in repair_runs
        if not run.failed and not math.isnan(run.categorical_f1)
    }
    # GT repair of a high-recall detection yields near-perfect repair F1.
    gt_scores = [v for k, v in scores.items() if k.endswith("+GT")]
    assert max(gt_scores) > 0.8
    # KATARA's false negatives cap its GT-repaired F1 below the best
    # detectors' (the paper's 0.66-vs-0.99 observation).
    if "KATARA+GT" in scores:
        assert scores["KATARA+GT"] <= max(gt_scores)
    # BARAN produces competitive repairs for learned detections.
    baran_scores = [
        v for k, v in scores.items()
        if k.endswith("+BARAN") and k.split("+")[0] in ("RAHA", "ED2", "MaxEntropy")
    ]
    assert max(baran_scores, default=0.0) > 0.4


def test_fig4cd_breast_cancer(benchmark):
    dataset, detection_runs, repair_runs = benchmark.pedantic(
        lambda: run_repair_grid("BreastCancer"), rounds=1, iterations=1
    )
    # All-numeric dataset: categorical repair scores are undefined, the
    # runtime panel and the RMSE panel (fig5) carry the information.
    render_grid("BreastCancer", repair_runs)
    ok = [r for r in repair_runs if not r.failed]
    assert ok
    # Numerical repair: the detections of the learned detectors repaired by
    # GT must reach (near-)zero RMSE only if recall was perfect; at least
    # the best strategy must beat the dirty version (checked in fig5).
    assert any(not math.isnan(r.numerical_rmse) for r in ok)
