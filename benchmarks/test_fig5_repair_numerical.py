"""Figure 5: repair results on the numerical attributes (RMSE + runtime).

Smart Factory (5a-5b), Breast Cancer (5c), Bikes (5d), Water (5e-5f).
The red dashed line of the paper -- the dirty version's RMSE -- is printed
as a reference row; strategies above it made the data worse.
"""

import math
from typing import Dict, List, Set

from conftest import bench_dataset, emit

from repro.benchmark import run_detection_suite, run_repair_suite
from repro.dataset.table import Cell
from repro.detectors import (
    DBoostDetector,
    ED2Detector,
    FahesDetector,
    HoloCleanDetector,
    IQRDetector,
    KataraDetector,
    MaxEntropyDetector,
    MetadataDrivenDetector,
    MinKDetector,
    MVDetector,
    NadeefDetector,
    RahaDetector,
    SDDetector,
)
from repro.metrics import repair_rmse
from repro.repair import (
    BayesMissRepair,
    DataWigMixRepair,
    GroundTruthRepair,
    KNNMissRepair,
    MeanModeImputeRepair,
    MedianModeImputeRepair,
    MissForestMixRepair,
)
from repro.reporting import render_table


def detection_pool():
    return [
        MVDetector(),
        SDDetector(),
        IQRDetector(),
        DBoostDetector(n_search=6),
        FahesDetector(),
        MinKDetector(),
        MaxEntropyDetector(),
        MetadataDrivenDetector(label_budget=150),
        RahaDetector(labels_per_column=10),
        ED2Detector(labels_per_column=15),
    ]


def repair_pool():
    return [
        GroundTruthRepair(),
        MeanModeImputeRepair(),
        MedianModeImputeRepair(),
        MissForestMixRepair(),
        DataWigMixRepair(),
        BayesMissRepair(),
        KNNMissRepair(),
    ]


def run_numeric_grid(dataset_name: str, seed: int = 0):
    dataset = bench_dataset(dataset_name, seed=seed)
    detection_runs = run_detection_suite(dataset, detection_pool(), seed=seed)
    detections: Dict[str, Set[Cell]] = {
        run.detector: set(run.result.cells)
        for run in detection_runs
        if not run.failed and run.result.n_detected > 0
    }
    repair_runs = run_repair_suite(dataset, detections, repair_pool(), seed=seed)
    dirty_rmse = repair_rmse(dataset.dirty, dataset.clean)
    return dataset, repair_runs, dirty_rmse


def render_numeric(name: str, repair_runs, dirty_rmse: float) -> None:
    rows: List[List[object]] = [["(dirty version)", dirty_rmse, ""]]
    runtime_rows: List[List[object]] = []
    for run in repair_runs:
        if run.failed:
            rows.append([run.strategy, None, "FAILED"])
            continue
        rows.append([run.strategy, run.numerical_rmse, ""])
        runtime_rows.append([run.strategy, run.result.runtime_seconds])
    rows[1:] = sorted(
        rows[1:], key=lambda r: math.inf if r[1] is None else r[1]
    )
    emit(
        f"fig5_{name.lower()}_rmse",
        render_table(
            ["strategy", "rmse", "note"],
            rows,
            title=(
                f"Figure 5 ({name}): numerical repair RMSE "
                "(lower is better; first row = dirty baseline)"
            ),
        ),
    )
    runtime_rows.sort(key=lambda r: -r[1])
    emit(
        f"fig5_{name.lower()}_runtime",
        render_table(
            ["strategy", "runtime_s"],
            runtime_rows,
            title=f"Figure 5 ({name}): repair runtime",
            precision=4,
        ),
    )


def _strategy_rmse(repair_runs) -> Dict[str, float]:
    return {
        run.strategy: run.numerical_rmse
        for run in repair_runs
        if not run.failed and not math.isnan(run.numerical_rmse)
    }


def test_fig5ab_smart_factory(benchmark):
    dataset, repair_runs, dirty_rmse = benchmark.pedantic(
        lambda: run_numeric_grid("SmartFactory"), rounds=1, iterations=1
    )
    render_numeric("SmartFactory", repair_runs, dirty_rmse)
    rmse = _strategy_rmse(repair_runs)
    # High-recall detections repaired well beat the dirty baseline.
    best = min(rmse.values())
    assert best < dirty_rmse
    # RAHA's detections support strong repairs across methods (Fig 5a).
    raha = [v for k, v in rmse.items() if k.startswith("RAHA+")]
    assert min(raha, default=math.inf) < dirty_rmse


def test_fig5c_breast_cancer(benchmark):
    dataset, repair_runs, dirty_rmse = benchmark.pedantic(
        lambda: run_numeric_grid("BreastCancer"), rounds=1, iterations=1
    )
    render_numeric("BreastCancer", repair_runs, dirty_rmse)
    rmse = _strategy_rmse(repair_runs)
    learned = [
        v for k, v in rmse.items()
        if k.split("+")[0] in ("RAHA", "ED2") and not k.endswith("+GT")
    ]
    assert min(learned, default=math.inf) < dirty_rmse


def test_fig5d_bikes(benchmark):
    dataset, repair_runs, dirty_rmse = benchmark.pedantic(
        lambda: run_numeric_grid("Bikes"), rounds=1, iterations=1
    )
    render_numeric("Bikes", repair_runs, dirty_rmse)
    rmse = _strategy_rmse(repair_runs)
    # Most strategies improve on dirty...
    better = sum(1 for v in rmse.values() if v < dirty_rmse)
    assert better >= len(rmse) / 2
    # ...but low-precision detections (e.g. FAHES on outlier-free columns)
    # can make the data *worse* than dirty -- the paper's Fig 5d bars above
    # the dashed line.  We assert only that the phenomenon is possible to
    # observe, not that it must occur at this scale.


def test_fig5ef_water(benchmark):
    dataset, repair_runs, dirty_rmse = benchmark.pedantic(
        lambda: run_numeric_grid("Water"), rounds=1, iterations=1
    )
    render_numeric("Water", repair_runs, dirty_rmse)
    rmse = _strategy_rmse(repair_runs)
    # All repaired versions are at least as good as dirty for the leading
    # detectors (RAHA / MaxEntropy in the paper).
    leaders = [
        v for k, v in rmse.items()
        if k.split("+")[0] in ("RAHA", "MaxEntropy")
    ]
    assert leaders and min(leaders) < dirty_rmse
