"""Figure 6: ML-oriented repair methods (ActiveClean, CPClean, BoostClean).

Model F1 in scenarios S1 (train+test on dirty), S4 (train+test on ground
truth), and S5 (the method's own model, tested on dirty data) for the Adult
and Breast Cancer analogues -- both binary tasks, as the methods require.
"""

import math
from typing import Dict, List

import numpy as np
from conftest import bench_dataset, emit

from repro.benchmark import run_scenario
from repro.dataset.encoding import encode_supervised
from repro.dataset.splits import train_test_split
from repro.metrics import f1_score
from repro.repair import ActiveCleanRepair, BoostCleanRepair, CPCleanRepair
from repro.reporting import render_table


def methods():
    return [
        ActiveCleanRepair(n_iterations=4, batch_size=15),
        BoostCleanRepair(n_rounds=3),
        CPCleanRepair(max_cleaned=40),
    ]


def evaluate_ml_oriented(dataset_name: str, seed: int = 0):
    from repro.detectors import MinKDetector

    dataset = bench_dataset(dataset_name, seed=seed)
    context = dataset.context(seed=seed)
    # The ML-oriented methods consume a *detector's* output, as in the real
    # pipeline (the oracle mask would flag nearly every row of the very
    # dirty Adult analogue, leaving ActiveClean no clean warm-start
    # partition).
    detections = MinKDetector().detect(context).cells
    rows: List[List[object]] = []
    scores: Dict[str, Dict[str, float]] = {}
    for method in methods():
        entry: Dict[str, float] = {}
        try:
            fitted = method.fit(context, detections)
        except (RuntimeError, ValueError) as exc:
            rows.append([method.name, None, None, None, f"FAILED: {exc}"])
            scores[method.name] = entry
            continue
        # S5: the method's own model served dirty data.
        entry["S5"] = fitted.model.f1(dataset.dirty)
        # S1 / S4 reference models: logistic regression, the same convex
        # family ActiveClean optimises.
        entry["S1"] = run_scenario("S1", dataset.dirty, dataset, "Logit", seed=seed)
        entry["S4"] = run_scenario("S4", dataset.dirty, dataset, "Logit", seed=seed)
        rows.append(
            [method.name, entry["S1"], entry["S4"], entry["S5"], ""]
        )
        scores[method.name] = entry
    return dataset, rows, scores


def _render(name: str, rows) -> None:
    emit(
        f"fig6_{name.lower()}",
        render_table(
            ["method", "S1 (dirty)", "S4 (ground truth)", "S5 (method model)", "note"],
            rows,
            title=f"Figure 6 ({name}): ML-oriented repair accuracy",
        ),
    )


def test_fig6a_adult(benchmark):
    dataset, rows, scores = benchmark.pedantic(
        lambda: evaluate_ml_oriented("Adult"), rounds=1, iterations=1
    )
    _render("Adult", rows)
    for method_name, entry in scores.items():
        if not entry:
            continue
        # The cleaned models land near (slightly below) the S4 upper bound.
        assert entry["S5"] <= entry["S4"] + 0.15, method_name
        assert entry["S5"] > 0.3, method_name


def test_fig6b_breast_cancer(benchmark):
    dataset, rows, scores = benchmark.pedantic(
        lambda: evaluate_ml_oriented("BreastCancer"), rounds=1, iterations=1
    )
    _render("BreastCancer", rows)
    ran = [m for m, entry in scores.items() if entry]
    assert ran, "no ML-oriented method ran on BreastCancer"
    for method_name in ran:
        assert scores[method_name]["S5"] > 0.3, method_name
