"""Figure 7a-7i: classification accuracy across data versions and scenarios.

For each dataset we build repaired versions from a grid of cleaning
strategies, train classifiers on each version under S1 and S4, repeat over
seeds, and report mean +- std with the Wilcoxon S1-vs-S4 decision (the
filled/empty markers of Figure 7b).
"""

import math
from typing import Dict, List, Tuple

from conftest import bench_dataset, emit

from repro.benchmark import evaluate_scenarios, run_detection_suite
from repro.dataset.table import Table
from repro.detectors import (
    MaxEntropyDetector,
    MinKDetector,
    MVDetector,
    NadeefDetector,
    RahaDetector,
)
from repro.repair import (
    DeleteRepair,
    GroundTruthRepair,
    MeanModeImputeRepair,
    MissForestMixRepair,
)
from repro.reporting import render_table

N_SEEDS = 4


def build_variants(dataset, detector_pool, repair_pool, seed=0):
    """dirty + (detector x repair) repaired versions, with kept_rows."""
    context = dataset.context(seed=seed)
    variants: List[Tuple[str, Table, object]] = [("D0 (dirty)", dataset.dirty, None)]
    runs = run_detection_suite(dataset, detector_pool, seed=seed)
    for run in runs:
        if run.failed or run.result.n_detected == 0:
            continue
        for method in repair_pool:
            try:
                result = method.repair(context, run.result.cells)
            except (RuntimeError, ValueError):
                continue
            variants.append(
                (
                    f"{run.detector}+{method.name}",
                    result.repaired,
                    result.metadata.get("kept_rows"),
                )
            )
    return variants


def scenario_grid(dataset_name: str, models, detector_pool, repair_pool, seed=0):
    dataset = bench_dataset(dataset_name, seed=seed)
    variants = build_variants(dataset, detector_pool, repair_pool, seed=seed)
    rows: List[List[object]] = []
    table_scores: Dict[Tuple[str, str], Dict[str, float]] = {}
    for model_name in models:
        for variant_name, table, kept in variants:
            evaluation = evaluate_scenarios(
                dataset, table, variant_name, model_name,
                scenario_names=("S1", "S4"), n_seeds=N_SEEDS, kept_rows=kept,
            )
            ab = evaluation.ab_test("S1", "S4")
            marker = "filled" if ab.reject_null(0.05) else "empty"
            rows.append(
                [
                    model_name,
                    variant_name,
                    evaluation.mean("S1"),
                    evaluation.std("S1"),
                    evaluation.mean("S4"),
                    evaluation.std("S4"),
                    ab.p_value,
                    marker,
                ]
            )
            table_scores[(model_name, variant_name)] = {
                "S1": evaluation.mean("S1"),
                "S4": evaluation.mean("S4"),
            }
    return dataset, rows, table_scores


HEADERS = [
    "model", "variant", "S1_mean", "S1_std", "S4_mean", "S4_std",
    "wilcoxon_p", "marker",
]


def test_fig7ab_beers(benchmark):
    """Fig 7a-7b: classifier F1 on Beers versions; S1 tracks repair quality."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "Beers",
            models=["MLP", "DT", "Logit"],
            detector_pool=[
                NadeefDetector(), MaxEntropyDetector(),
                RahaDetector(labels_per_column=10),
            ],
            repair_pool=[
                GroundTruthRepair(), MeanModeImputeRepair(),
                MissForestMixRepair(),
            ],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7ab_beers_classification", render_table(HEADERS, rows,
         title="Figure 7a-b (Beers): classification F1, S1 vs S4"))
    # GT-repaired versions track the S4 upper bound.
    for model in ("DT", "Logit"):
        gt_variants = [
            v for (m, v) in scores if m == model and v.endswith("+GT")
        ]
        for variant in gt_variants:
            entry = scores[(model, variant)]
            if not math.isnan(entry["S1"]):
                assert entry["S1"] >= entry["S4"] - 0.2


def test_fig7cd_adult(benchmark):
    """Fig 7c-7d: robust models (Ridge) have tight S1 ranges; trees vary."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "Adult",
            models=["DT", "Ridge", "SVC"],
            detector_pool=[MaxEntropyDetector(), MinKDetector()],
            repair_pool=[
                GroundTruthRepair(), MeanModeImputeRepair(), DeleteRepair(),
            ],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7cd_adult_classification", render_table(HEADERS, rows,
         title="Figure 7c-d (Adult): classification F1, S1 vs S4"))

    def s1_range(model):
        values = [
            entry["S1"] for (m, v), entry in scores.items()
            if m == model and not math.isnan(entry["S1"])
        ]
        return (max(values) - min(values)) if values else 0.0

    # Ridge's spread across versions stays moderate (the paper's
    # "robust to data quality problems" observation).
    assert s1_range("Ridge") <= s1_range("DT") + 0.25


def test_fig7ef_breast_cancer(benchmark):
    """Fig 7e-7f: XGB slightly better in S4 than S1 for most versions."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "BreastCancer",
            models=["DT", "GNB", "XGB"],
            detector_pool=[MaxEntropyDetector(), MVDetector()],
            repair_pool=[GroundTruthRepair(), MeanModeImputeRepair()],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7ef_breast_cancer_classification", render_table(HEADERS, rows,
         title="Figure 7e-f (Breast Cancer): classification F1, S1 vs S4"))
    xgb = [
        entry for (m, _), entry in scores.items()
        if m == "XGB" and not math.isnan(entry["S1"])
    ]
    better_in_s4 = sum(1 for e in xgb if e["S4"] >= e["S1"] - 0.05)
    assert better_in_s4 >= len(xgb) // 2


def test_fig7gh_citation(benchmark):
    """Fig 7g-7i: on duplicates+mislabels, Delete tracks the ground truth."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "Citation",
            models=["Logit", "XGB"],
            detector_pool=[MinKDetector()],
            repair_pool=[
                GroundTruthRepair(), DeleteRepair(), MissForestMixRepair(),
            ],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7gh_citation_classification", render_table(HEADERS, rows,
         title="Figure 7g-i (Citation): classification F1, S1 vs S4"))
    delete_scores = [
        entry for (m, v), entry in scores.items() if v.endswith("+Delete")
    ]
    for entry in delete_scores:
        if not math.isnan(entry["S1"]):
            # Deleting duplicate/mislabeled rows approaches the GT ceiling.
            assert entry["S1"] >= entry["S4"] - 0.25


def test_fig7_classifiers_robust_to_attribute_errors(benchmark):
    """Section 6.5's headline: classifiers' S1 stays close to S4."""
    def measure():
        dataset = bench_dataset("SmartFactory")
        gaps = []
        for model in ("DT", "Logit", "KNN"):
            evaluation = evaluate_scenarios(
                dataset, dataset.dirty, "dirty", model,
                scenario_names=("S1", "S4"), n_seeds=N_SEEDS,
            )
            gaps.append(evaluation.mean("S4") - evaluation.mean("S1"))
        return gaps

    gaps = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "fig7_classifier_robustness_summary",
        render_table(
            ["model", "S4_minus_S1"],
            [[m, g] for m, g in zip(("DT", "Logit", "KNN"), gaps)],
            title="Classification S4-S1 gaps on dirty Smart Factory",
        ),
    )
    # Attribute errors barely dent classification accuracy.
    assert max(gaps) < 0.25
