"""Figure 7p-7t: clustering Silhouette across data versions.

Water (7p-7q), Power (7s), HAR (7t): each clusterer runs on the dirty,
repaired, and ground-truth versions; per the paper, clustering is more
sensitive to attribute errors than classification, though some repaired
versions can even beat the ground truth.
"""

import math
from typing import Dict, List, Tuple

from conftest import bench_dataset, emit

from repro.benchmark import evaluate_scenarios, run_detection_suite
from repro.detectors import (
    FahesDetector,
    MaxEntropyDetector,
    MVDetector,
    RahaDetector,
)
from repro.repair import GroundTruthRepair, MeanModeImputeRepair, MissForestMixRepair
from repro.reporting import render_table
from test_fig7_classification import HEADERS, scenario_grid

N_SEEDS = 3


def test_fig7pq_water(benchmark):
    """Fig 7p-7q: Birch & co. do better on GT, but some repaired versions
    can beat it."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "Water",
            models=["BIRCH", "GMM", "HC"],
            detector_pool=[
                FahesDetector(), MaxEntropyDetector(),
                RahaDetector(labels_per_column=8),
            ],
            repair_pool=[GroundTruthRepair(), MeanModeImputeRepair()],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7pq_water_clustering", render_table(HEADERS, rows,
         title="Figure 7p-q (Water): clustering Silhouette, S1 vs S4"))
    # The paper's clustering shape: S4 (ground truth) beats S1 for most
    # variants -- clustering is sensitive to residual attribute errors.
    pairs = [
        entry for entry in scores.values() if not math.isnan(entry["S1"])
    ]
    s4_wins = sum(1 for entry in pairs if entry["S4"] >= entry["S1"] - 0.02)
    assert s4_wins >= len(pairs) * 0.6
    # And (Fig 7q's curiosity) at least one repaired version changes the
    # picture relative to plain dirty data for some clusterer.
    for model in ("BIRCH", "GMM", "HC"):
        dirty_entry = scores.get((model, "D0 (dirty)"))
        repaired = [
            entry["S1"] for (m, v), entry in scores.items()
            if m == model and v != "D0 (dirty)" and not math.isnan(entry["S1"])
        ]
        assert dirty_entry is not None and repaired


def test_fig7s_power(benchmark):
    """Fig 7s: K-Means on Power versions."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "Power",
            models=["KMeans"],
            detector_pool=[MVDetector(), MaxEntropyDetector()],
            repair_pool=[GroundTruthRepair(), MissForestMixRepair()],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7s_power_clustering", render_table(HEADERS, rows,
         title="Figure 7s (Power): K-Means Silhouette, S1 vs S4"))
    values = [e for e in scores.values() if not math.isnan(e["S4"])]
    assert values and all(-1.0 <= e["S4"] <= 1.0 for e in values)


def test_fig7t_har(benchmark):
    """Fig 7t: tight S1 distributions on HAR; RAHA-based repairs track GT."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "HAR",
            models=["KMeans", "GMM", "BIRCH"],
            detector_pool=[MaxEntropyDetector(), RahaDetector(labels_per_column=8)],
            repair_pool=[GroundTruthRepair(), MeanModeImputeRepair()],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7t_har_clustering", render_table(HEADERS, rows,
         title="Figure 7t (HAR): clustering Silhouette, S1 vs S4"))


def test_fig7_clustering_more_sensitive_than_classification(benchmark):
    """Section 6.5: regression/clustering suffer more from dirty data
    than classification does (S4-S1 gap comparison)."""
    def measure():
        clustering_dataset = bench_dataset("Water")
        classification_dataset = bench_dataset("SmartFactory")
        clustering_gap = []
        for model in ("KMeans", "GMM"):
            evaluation = evaluate_scenarios(
                clustering_dataset, clustering_dataset.dirty, "dirty", model,
                scenario_names=("S1", "S4"), n_seeds=N_SEEDS,
            )
            s1, s4 = evaluation.mean("S1"), evaluation.mean("S4")
            span = max(abs(s4), 1e-6)
            clustering_gap.append((s4 - s1) / span)
        classification_gap = []
        for model in ("DT", "Logit"):
            evaluation = evaluate_scenarios(
                classification_dataset, classification_dataset.dirty,
                "dirty", model,
                scenario_names=("S1", "S4"), n_seeds=N_SEEDS,
            )
            s1, s4 = evaluation.mean("S1"), evaluation.mean("S4")
            span = max(abs(s4), 1e-6)
            classification_gap.append((s4 - s1) / span)
        return clustering_gap, classification_gap

    clustering_gap, classification_gap = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        "fig7_task_sensitivity_summary",
        render_table(
            ["task", "relative S4-S1 gap"],
            [
                ["clustering (Water, KMeans)", clustering_gap[0]],
                ["clustering (Water, GMM)", clustering_gap[1]],
                ["classification (SmartFactory, DT)", classification_gap[0]],
                ["classification (SmartFactory, Logit)", classification_gap[1]],
            ],
            title="Relative accuracy loss from dirty data, by task",
        ),
    )
    # The paper's headline: clustering loses relatively more than
    # classification when trained on dirty data.
    assert max(clustering_gap) > min(classification_gap) - 0.02
