"""Figure 7j-7o: regression RMSE across data versions and scenarios.

Includes the S2-vs-S3 experiment of Figures 7n-7o: models trained on dirty
data but *served* clean data (S2) beat models trained clean but served
dirty data (S3) -- the paper's "serve with high-quality data" finding.
"""

import math
from typing import Dict, List, Tuple

from conftest import bench_dataset, emit

from repro.benchmark import evaluate_scenarios, run_detection_suite
from repro.detectors import (
    DBoostDetector,
    MaxEntropyDetector,
    MinKDetector,
    MVDetector,
    RahaDetector,
)
from repro.repair import (
    GroundTruthRepair,
    KNNMissRepair,
    MeanModeImputeRepair,
    MissForestMixRepair,
)
from repro.reporting import render_table
from test_fig7_classification import HEADERS, build_variants, scenario_grid

N_SEEDS = 4


def test_fig7jk_nasa(benchmark):
    """Fig 7j-7k: XGB is strong in S4 but sensitive to repair quality;
    DT/RF have tighter S1 distributions."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "Nasa",
            models=["XGB", "DT", "Ridge"],
            detector_pool=[MaxEntropyDetector(), DBoostDetector(n_search=6)],
            repair_pool=[
                GroundTruthRepair(), MeanModeImputeRepair(),
                MissForestMixRepair(),
            ],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7jk_nasa_regression", render_table(HEADERS, rows,
         title="Figure 7j-k (Nasa): regression RMSE, S1 vs S4 (lower=better)"))

    def s1_values(model):
        return [
            e["S1"] for (m, _), e in scores.items()
            if m == model and not math.isnan(e["S1"])
        ]

    # Regression is sensitive to attribute errors: the dirty version's S1
    # RMSE exceeds S4's for at least one model.
    worse = 0
    for model in ("XGB", "DT", "Ridge"):
        entry = scores.get((model, "D0 (dirty)"))
        if entry and entry["S1"] > entry["S4"]:
            worse += 1
    assert worse >= 1


def test_fig7l_soil_moisture(benchmark):
    """Fig 7l-7m: KNN keeps a tight S1 RMSE distribution."""
    dataset, rows, scores = benchmark.pedantic(
        lambda: scenario_grid(
            "SoilMoisture",
            models=["KNN", "Ridge"],
            detector_pool=[MVDetector(), MaxEntropyDetector()],
            repair_pool=[GroundTruthRepair(), MissForestMixRepair()],
        ),
        rounds=1, iterations=1,
    )
    emit("fig7lm_soil_regression", render_table(HEADERS, rows,
         title="Figure 7l-m (Soil Moisture): regression RMSE, S1 vs S4"))
    knn = [
        e["S1"] for (m, _), e in scores.items()
        if m == "KNN" and not math.isnan(e["S1"])
    ]
    assert knn
    # Tiny error rate (1%): S1 spread stays narrow relative to its level.
    assert (max(knn) - min(knn)) <= max(0.6 * max(knn), 0.3)


def s2_vs_s3(dataset_name: str, model_name: str):
    dataset = bench_dataset(dataset_name)
    evaluation = evaluate_scenarios(
        dataset, dataset.dirty, "dirty", model_name,
        scenario_names=("S2", "S3"), n_seeds=N_SEEDS,
    )
    return evaluation


def test_fig7no_s2_beats_s3(benchmark):
    """Fig 7n-7o: RANSAC and Bayesian Ridge do better in S2 than S3."""
    def measure():
        rows = []
        outcomes = []
        for dataset_name in ("Nasa", "Bikes"):
            for model_name in ("RANSAC", "BRidge"):
                evaluation = s2_vs_s3(dataset_name, model_name)
                s2, s3 = evaluation.mean("S2"), evaluation.mean("S3")
                rows.append([dataset_name, model_name, s2, s3])
                outcomes.append((dataset_name, model_name, s2, s3))
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "fig7no_s2_vs_s3",
        render_table(
            ["dataset", "model", "S2_rmse (train dirty, test clean)",
             "S3_rmse (train clean, test dirty)"],
            rows,
            title="Figure 7n-o: S2 vs S3 RMSE (lower is better)",
        ),
    )
    # The paper's finding: S2 < S3 (dirty-trained models served clean data
    # outperform clean-trained models served dirty data).
    wins = sum(1 for _, _, s2, s3 in outcomes if s2 < s3)
    assert wins >= 3, outcomes
