"""Kernel speedups: vectorized CART/KNN vs the frozen scalar reference,
plus the warm artifact cache against a cold end-to-end run.

Three measurements, all against honest workloads:

- **tree fit+predict**: both builders train on the one-hot-heavy matrix
  produced by actually encoding a generated benchmark dataset (the
  matrices REIN's model zoo really sees), at the repo-default tree
  configuration.  The property suite proves the two builders produce
  *identical* trees, so this is a pure like-for-like kernel comparison.
  Bar: >= 3x.
- **KNN distances**: the blocked Gram-matrix kernel against the naive
  (n, m, d) broadcast.  Reported, no bar -- the margin is enormous and
  asserting a huge multiple would just make the suite flaky on slow
  hosts.  A conservative floor guards against regressions.
- **warm cache end-to-end**: an ML detector suite (featurization-bound
  ED2) run cold then warm on the same artifact cache.  Bar: >= 2x, and
  the warm run's payloads must be byte-identical to an uncached run's.

The combined numbers land in ``BENCH_kernels.json`` at the repo root so
they stay diffable PR over PR.
"""

import json
import os
import time

import numpy as np
from conftest import bench_dataset, emit

from repro.benchmark import run_detection_suite
from repro.cache import ArtifactCache, cache_scope
from repro.dataset.encoding import TableEncoder
from repro.detectors.ml_detectors import ED2Detector
from repro.ml._reference import (
    ReferenceDecisionTreeClassifier,
    reference_pairwise_sq_distances,
)
from repro.ml.neighbors import _pairwise_sq_distances
from repro.ml.tree import DecisionTreeClassifier
from repro.observability import write_bench_snapshot
from repro.reporting import render_table

#: Machine-readable perf snapshot, committed at the repo root.
BENCH_SNAPSHOT = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_kernels.json"
)

TREE_ROWS = 4000
CACHE_ROWS = 2000

#: Numbers accumulated across the tests in this module; the final test
#: writes them as one snapshot.
_RESULTS = {}


def _best_of(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _encoded_features():
    dataset = bench_dataset("Beers", n_rows=TREE_ROWS)
    features = TableEncoder(max_categories=12).fit_transform(dataset.dirty)
    labels = np.random.default_rng(0).integers(0, 2, size=len(features))
    return features, labels


def test_tree_fit_predict_at_least_three_times_faster(benchmark):
    features, labels = _encoded_features()

    def vectorized():
        return DecisionTreeClassifier(seed=0).fit(features, labels).predict(
            features
        )

    def reference():
        model = ReferenceDecisionTreeClassifier(seed=0).fit(features, labels)
        return model.predict(features)

    benchmark.pedantic(vectorized, rounds=3, warmup_rounds=1)
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(reference, reps=3)
    speedup = ref_seconds / vec_seconds
    _RESULTS["tree_fit_predict_reference_seconds"] = round(ref_seconds, 4)
    _RESULTS["tree_fit_predict_vectorized_seconds"] = round(vec_seconds, 4)
    _RESULTS["tree_fit_predict_speedup"] = round(speedup, 2)
    emit(
        "kernel_tree_speed",
        render_table(
            ["builder", "fit+predict seconds", "speedup"],
            [
                ["scalar reference", round(ref_seconds, 3), 1.0],
                ["vectorized", round(vec_seconds, 3), round(speedup, 2)],
            ],
            title=(
                f"CART fit+predict, encoded Beers "
                f"({features.shape[0]} x {features.shape[1]})"
            ),
        ),
    )
    assert speedup >= 3.0, (
        f"expected >= 3x tree fit+predict speedup, got {speedup:.2f}x "
        f"(reference {ref_seconds:.3f}s, vectorized {vec_seconds:.3f}s)"
    )


def test_knn_distance_kernel_speedup(benchmark):
    rng = np.random.default_rng(1)
    queries = rng.normal(size=(600, 60))
    reference_points = rng.normal(size=(2500, 60))

    benchmark.pedantic(
        lambda: _pairwise_sq_distances(queries, reference_points),
        rounds=5,
        warmup_rounds=1,
    )
    vec_seconds = benchmark.stats.stats.min
    ref_seconds = _best_of(
        lambda: reference_pairwise_sq_distances(queries, reference_points),
        reps=3,
    )
    speedup = ref_seconds / vec_seconds
    _RESULTS["knn_distances_reference_seconds"] = round(ref_seconds, 4)
    _RESULTS["knn_distances_vectorized_seconds"] = round(vec_seconds, 4)
    _RESULTS["knn_distances_speedup"] = round(speedup, 2)
    emit(
        "kernel_knn_speed",
        render_table(
            ["kernel", "seconds", "speedup"],
            [
                ["naive broadcast", round(ref_seconds, 4), 1.0],
                ["blocked Gram", round(vec_seconds, 4), round(speedup, 2)],
            ],
            title="pairwise sq distances, 600 queries x 2500 refs x 60 dims",
        ),
    )
    # Conservative floor: the real margin is one to two orders larger.
    assert speedup >= 5.0, f"distance kernel regressed to {speedup:.2f}x"


def _detection_payloads(runs) -> str:
    stripped = []
    for run in runs:
        payload = run.to_payload()
        payload["runtime_seconds"] = None  # wall clock differs by design
        stripped.append(payload)
    return json.dumps(stripped, sort_keys=True)


def test_warm_cache_end_to_end_at_least_twice_as_fast(tmp_path):
    dataset = bench_dataset("Beers", n_rows=CACHE_ROWS)
    cache = ArtifactCache(str(tmp_path / "artifacts"))

    def suite():
        detectors = [ED2Detector(labels_per_column=12, batch_size=4)]
        return run_detection_suite(dataset, detectors)

    uncached_runs = suite()

    def cached_suite():
        with cache_scope(cache):
            return suite()

    started = time.perf_counter()
    cold_runs = cached_suite()
    cold_seconds = time.perf_counter() - started
    warm_seconds = _best_of(cached_suite, reps=3)
    warm_runs = cached_suite()

    assert _detection_payloads(cold_runs) == _detection_payloads(
        uncached_runs
    )
    assert _detection_payloads(warm_runs) == _detection_payloads(
        uncached_runs
    )
    stats = cache.stats()
    assert stats["hits"] > 0 and stats["puts"] > 0

    speedup = cold_seconds / warm_seconds
    _RESULTS["cache_cold_seconds"] = round(cold_seconds, 4)
    _RESULTS["cache_warm_seconds"] = round(warm_seconds, 4)
    _RESULTS["cache_warm_speedup"] = round(speedup, 2)
    emit(
        "kernel_cache_speed",
        render_table(
            ["configuration", "wall_seconds", "speedup"],
            [
                ["cold cache", round(cold_seconds, 3), 1.0],
                ["warm cache", round(warm_seconds, 3), round(speedup, 2)],
            ],
            title=(
                f"ED2 detection suite, Beers n={CACHE_ROWS}: "
                "cold vs warm artifact cache"
            ),
        ),
    )
    assert speedup >= 2.0, (
        f"expected >= 2x warm-cache speedup, got {speedup:.2f}x "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s)"
    )


def test_write_kernel_snapshot():
    """Runs last (file order): persists every number measured above."""
    required = {
        "tree_fit_predict_speedup",
        "knn_distances_speedup",
        "cache_warm_speedup",
    }
    missing = required - _RESULTS.keys()
    assert not missing, f"benchmarks did not record {sorted(missing)}"
    write_bench_snapshot(
        BENCH_SNAPSHOT,
        "kernel_speed",
        numbers=dict(_RESULTS),
        context={
            "tree_dataset": "Beers",
            "tree_rows": TREE_ROWS,
            "tree_config": "repo defaults (unbounded depth)",
            "knn_shape": "600x2500x60",
            "cache_workload": "ED2 detection suite",
            "cache_rows": CACHE_ROWS,
            "rounds": 3,
        },
    )
