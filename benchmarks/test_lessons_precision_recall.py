"""Section 6.5's repair lessons, quantified.

Two claims from the "Repair Methods" lessons:

1. for ordinary repair methods, detection *precision* drives the repair
   quality: false positives make the repairer corrupt clean cells, pushing
   the repaired dataset "out of sync with the ground truth" (measured as
   categorical repair precision on Beers);
2. with a highly-effective repair method (simulated by GT), the relation
   flips: false *negatives* are more harmful than false positives (GT
   never corrupts a clean cell, but undetected errors stay -- measured as
   numerical RMSE on Smart Factory).
"""

from typing import List, Set

import numpy as np
from conftest import bench_dataset, emit

from repro.dataset.table import Cell
from repro.metrics import repair_rmse, repair_scores_categorical
from repro.repair import GroundTruthRepair, MeanModeImputeRepair
from repro.reporting import render_table

SETTINGS = [
    ("high P, high R", 0.95, 0.95),
    ("high P, low R", 0.95, 0.40),
    ("low P, high R", 0.40, 0.95),
    ("low P, low R", 0.40, 0.40),
]


def synthetic_detection(
    dataset, precision: float, recall: float, rng
) -> Set[Cell]:
    """A detection set with (approximately) the requested precision/recall."""
    errors = sorted(dataset.error_cells)
    n_tp = int(round(recall * len(errors)))
    picks = rng.choice(len(errors), size=n_tp, replace=False) if n_tp else []
    true_positives = {errors[int(i)] for i in picks}
    if precision >= 1.0:
        return true_positives
    n_fp = int(round(n_tp * (1.0 - precision) / max(precision, 1e-9)))
    clean_cells = [
        (i, column)
        for column in dataset.clean.column_names
        for i in range(dataset.clean.n_rows)
        if (i, column) not in dataset.error_cells
    ]
    fp_picks = rng.choice(
        len(clean_cells), size=min(n_fp, len(clean_cells)), replace=False
    )
    return true_positives | {clean_cells[int(i)] for i in fp_picks}


def categorical_sweep(seed: int = 0):
    """Lesson 1: ordinary repair on categorical attributes (Beers)."""
    dataset = bench_dataset("Beers", seed=seed)
    context = dataset.context(seed=seed)
    rng = np.random.default_rng(seed + 100)
    rows: List[List[object]] = []
    measured = {}
    for label, precision, recall in SETTINGS:
        cells = synthetic_detection(dataset, precision, recall, rng)
        repaired = MeanModeImputeRepair().repair(context, cells).repaired
        scores = repair_scores_categorical(
            dataset.dirty, repaired, dataset.clean, dataset.error_cells
        )
        rows.append([label, precision, recall,
                     scores.precision, scores.recall, scores.f1])
        measured[label] = scores
    return rows, measured


def numeric_sweep(seed: int = 0):
    """Lesson 2: highly-effective repair, numerical RMSE (Smart Factory)."""
    dataset = bench_dataset("SmartFactory", seed=seed)
    context = dataset.context(seed=seed)
    rng = np.random.default_rng(seed + 100)
    dirty_rmse = repair_rmse(dataset.dirty, dataset.clean)
    rows: List[List[object]] = []
    measured = {}
    for label, precision, recall in SETTINGS:
        cells = synthetic_detection(dataset, precision, recall, rng)
        gt = GroundTruthRepair().repair(context, cells).repaired
        gt_rmse = repair_rmse(gt, dataset.clean)
        rows.append([label, precision, recall, gt_rmse])
        measured[label] = gt_rmse
    rows.append(["(dirty baseline)", None, None, dirty_rmse])
    return rows, measured, dirty_rmse


def test_lesson1_precision_drives_ordinary_repair(benchmark):
    rows, measured = benchmark.pedantic(categorical_sweep, rounds=1, iterations=1)
    emit(
        "lessons_repair_precision",
        render_table(
            ["detection", "det_P", "det_R",
             "repair_precision", "repair_recall", "repair_f1"],
            rows,
            title=(
                "Section 6.5 lesson 1: categorical repair quality under "
                "controlled detection precision/recall (Beers, mode impute)"
            ),
        ),
    )
    # Losing detection precision collapses repair precision; losing
    # detection recall leaves repair precision intact.
    assert (
        measured["high P, low R"].precision
        > measured["low P, high R"].precision
    )
    # And the degradation is substantial (factor >= 1.5).
    assert (
        measured["high P, high R"].precision
        > 1.5 * measured["low P, high R"].precision
    )


def test_lesson2_recall_drives_effective_repair(benchmark):
    rows, measured, dirty_rmse = benchmark.pedantic(
        numeric_sweep, rounds=1, iterations=1
    )
    emit(
        "lessons_gt_repair_recall",
        render_table(
            ["detection", "det_P", "det_R", "gt_repair_rmse"],
            rows,
            title=(
                "Section 6.5 lesson 2: GT repair RMSE under controlled "
                "detection precision/recall (Smart Factory)"
            ),
        ),
    )
    # With GT repair, false negatives dominate: low recall is the worse
    # setting, low precision is nearly harmless.
    assert measured["high P, low R"] > measured["low P, high R"]
    assert measured["low P, high R"] < 0.5 * dirty_rmse
    assert measured["high P, high R"] < dirty_rmse
