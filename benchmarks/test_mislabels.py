"""Section 6.4's mislabel experiment + the suggestion-3 extension.

The paper flips binary labels on Adult and Breast Cancer and reports that
models trained on the dirty labels perform slightly worse than on the
ground truth (RF: 0.90 dirty vs 0.93 clean).  We reproduce that shape, and
additionally evaluate the noise-aware defences (label smoothing, prune-and-
retrain) the paper's actionable suggestions call for.
"""

from typing import List

import numpy as np
from conftest import bench_dataset, emit

from repro.dataset.encoding import encode_supervised
from repro.dataset.splits import train_test_split
from repro.errors import MislabelInjector
from repro.metrics import f1_score
from repro.ml import LogisticRegression, RandomForestClassifier
from repro.ml.noise_aware import LabelSmoothingClassifier, PruneAndRetrainClassifier
from repro.reporting import render_table


def mislabel_experiment(dataset_name: str, flip_rate: float = 0.15, seed: int = 0):
    dataset = bench_dataset(dataset_name, seed=seed)
    clean = dataset.clean
    flipped = MislabelInjector(dataset.target).inject(
        clean, flip_rate, np.random.default_rng(seed + 1)
    ).dirty
    rng = np.random.default_rng(seed)
    labels = [str(v) for v in clean.column(dataset.target)]
    train_idx, test_idx = train_test_split(
        clean.n_rows, 0.25, rng=rng, stratify=labels
    )
    test_table = clean.select_rows(test_idx)  # always scored on clean labels
    rows: List[List[object]] = []
    scores = {}
    for version_name, table in (("clean labels", clean), ("flipped labels", flipped)):
        train_table = table.select_rows(train_idx)
        x_train, y_train, x_test, y_test, _ = encode_supervised(
            train_table, test_table, dataset.target, "classification"
        )
        for model_name, model in (
            ("RF", RandomForestClassifier(n_estimators=20, max_depth=10, seed=0)),
            ("Logit", LogisticRegression()),
            ("Logit+smoothing", LabelSmoothingClassifier(epsilon=0.2)),
            ("Logit+prune", PruneAndRetrainClassifier(seed=0)),
        ):
            model.fit(x_train, y_train)
            f1 = f1_score(y_test, model.predict(x_test))
            rows.append([model_name, version_name, f1])
            scores[(model_name, version_name)] = f1
    return rows, scores


def test_mislabels_breast_cancer(benchmark):
    rows, scores = benchmark.pedantic(
        lambda: mislabel_experiment("BreastCancer"), rounds=1, iterations=1
    )
    emit(
        "mislabels_breast_cancer",
        render_table(
            ["model", "training labels", "test_f1_on_clean"],
            rows,
            title="Mislabel experiment (Breast Cancer, 15% flipped)",
        ),
    )
    # Paper's shape: dirty labels cost a little accuracy, not a collapse.
    for model in ("RF", "Logit"):
        clean_f1 = scores[(model, "clean labels")]
        dirty_f1 = scores[(model, "flipped labels")]
        assert dirty_f1 <= clean_f1 + 0.03
        assert dirty_f1 > clean_f1 - 0.3
    # Extension: the noise-aware variants close (part of) the gap.
    plain = scores[("Logit", "flipped labels")]
    defended = max(
        scores[("Logit+smoothing", "flipped labels")],
        scores[("Logit+prune", "flipped labels")],
    )
    assert defended >= plain - 0.02


def test_mislabels_adult(benchmark):
    rows, scores = benchmark.pedantic(
        lambda: mislabel_experiment("Adult"), rounds=1, iterations=1
    )
    emit(
        "mislabels_adult",
        render_table(
            ["model", "training labels", "test_f1_on_clean"],
            rows,
            title="Mislabel experiment (Adult, 15% flipped)",
        ),
    )
    for model in ("RF", "Logit"):
        assert (
            scores[(model, "flipped labels")]
            <= scores[(model, "clean labels")] + 0.03
        )
