"""Parallel engine speedup: the unit grid sharded over worker processes.

REIN's grid is embarrassingly parallel, and its cost is dominated by the
tools, not the harness.  This benchmark models a suite of detectors that
each hold the interpreter for a fixed wall-clock interval (an I/O-bound
tool analogue, so the measurement does not depend on the host's core
count) and measures the same suite serially and with ``--workers 4``.
The acceptance bar is a >= 2x wall-clock improvement at 4 workers --
conservative against the ~4x ideal to absorb pool start-up -- plus the
usual determinism check that both runs produce identical payloads.
"""

import json
import os
import time

from conftest import bench_dataset, emit

from repro.benchmark import run_detection_suite
from repro.detectors.base import Detector
from repro.observability import write_bench_snapshot
from repro.parallel import ProcessPoolExecutor
from repro.reporting import render_table

#: Machine-readable perf snapshot, committed at the repo root so the
#: numbers are diffable PR over PR.
BENCH_SNAPSHOT = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_parallel.json"
)

#: Per-detector wall-clock cost and suite width.  8 x 0.12s serial work
#: against 4 workers leaves generous headroom over the 2x bar.
SLEEP_SECONDS = 0.12
N_DETECTORS = 8
WORKERS = 4


class SleepyDetector(Detector):
    """Holds the wall clock for a fixed interval, then flags nothing.

    Module-level (picklable) stand-in for a tool whose cost is waiting
    on something external -- the case where process-level sharding pays
    off even on a single core.
    """

    def __init__(self, index: int) -> None:
        self.name = f"Sleepy-{index}"

    def _detect(self, context):
        time.sleep(SLEEP_SECONDS)
        return set()


def _suite(executor=None):
    dataset = bench_dataset("SmartFactory", n_rows=200)
    detectors = [SleepyDetector(i) for i in range(N_DETECTORS)]
    return run_detection_suite(dataset, detectors, executor=executor)


def _payloads(runs) -> str:
    stripped = []
    for run in runs:
        payload = run.to_payload()
        payload["runtime_seconds"] = None  # wall clock differs by design
        stripped.append(payload)
    return json.dumps(stripped, sort_keys=True)


def test_four_workers_at_least_twice_as_fast(benchmark):
    started = time.perf_counter()
    serial_runs = _suite()
    serial_seconds = time.perf_counter() - started

    parallel_runs = benchmark.pedantic(
        lambda: _suite(ProcessPoolExecutor(WORKERS)),
        rounds=3,
        warmup_rounds=1,
    )
    parallel_seconds = benchmark.stats.stats.mean

    assert _payloads(parallel_runs) == _payloads(serial_runs)
    speedup = serial_seconds / parallel_seconds
    emit(
        "parallel_speedup",
        render_table(
            ["configuration", "wall_seconds", "speedup"],
            [
                ["serial", round(serial_seconds, 3), 1.0],
                [
                    f"{WORKERS} workers",
                    round(parallel_seconds, 3),
                    round(speedup, 2),
                ],
            ],
            title=(
                f"{N_DETECTORS} wait-bound detectors x {SLEEP_SECONDS}s: "
                "serial vs process pool"
            ),
        ),
    )
    write_bench_snapshot(
        BENCH_SNAPSHOT,
        "parallel_speedup",
        numbers={
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(speedup, 3),
        },
        context={
            "workers": WORKERS,
            "n_units": N_DETECTORS,
            "unit_sleep_seconds": SLEEP_SECONDS,
            "rounds": 3,
        },
    )
    assert speedup >= 2.0, (
        f"expected >= 2x speedup at {WORKERS} workers, got {speedup:.2f}x "
        f"(serial {serial_seconds:.3f}s, parallel {parallel_seconds:.3f}s)"
    )
