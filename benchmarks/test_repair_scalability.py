"""Repair-method scalability (contribution 5 covers all cleaning methods).

Repair runtime and quality across small / medium / large instances of the
Smart Factory analogue, with a fixed 15% error rate and oracle detections,
so the sweep isolates the repair methods' own scaling behaviour.
"""

from typing import Dict, List, Tuple

from conftest import emit

from repro.datagen import generate
from repro.metrics import repair_rmse
from repro.repair import (
    BayesMissRepair,
    GroundTruthRepair,
    KNNMissRepair,
    MeanModeImputeRepair,
    MissForestMixRepair,
)
from repro.reporting import render_series

SIZES = (150, 400, 900)


def repair_pool():
    return [
        GroundTruthRepair(),
        MeanModeImputeRepair(),
        MissForestMixRepair(),
        BayesMissRepair(),
        KNNMissRepair(),
    ]


def sweep_sizes(seed: int = 0):
    runtime: Dict[str, List[Tuple[float, float]]] = {}
    quality: Dict[str, List[Tuple[float, float]]] = {}
    for size in SIZES:
        dataset = generate("SmartFactory", n_rows=size, seed=seed)
        context = dataset.context(seed=seed)
        for method in repair_pool():
            result = method.repair(context, dataset.error_cells)
            runtime.setdefault(method.name, []).append(
                (float(size), result.runtime_seconds)
            )
            quality.setdefault(method.name, []).append(
                (float(size), repair_rmse(result.repaired, dataset.clean))
            )
    return runtime, quality


def test_repair_scalability(benchmark):
    runtime, quality = benchmark.pedantic(sweep_sizes, rounds=1, iterations=1)
    emit(
        "repair_scalability_runtime",
        render_series(
            runtime, "n_rows", "runtime_s",
            title="Repair runtime vs dataset size (Smart Factory, 15% errors)",
        ),
    )
    emit(
        "repair_scalability_rmse",
        render_series(
            quality, "n_rows", "rmse",
            title="Repair RMSE vs dataset size",
        ),
    )
    # Shapes: ML-driven imputers cost more than statistics at every size...
    for size_index in range(len(SIZES)):
        assert (
            runtime["MISS-Mix"][size_index][1]
            > runtime["Impute-Mean"][size_index][1]
        )
    # ...their runtime grows with data size...
    assert runtime["MISS-Mix"][-1][1] > runtime["MISS-Mix"][0][1]
    # ...and their quality advantage persists across sizes.
    for size_index in range(len(SIZES)):
        assert (
            quality["MISS-Mix"][size_index][1]
            <= quality["Impute-Mean"][size_index][1] + 0.05
        )
