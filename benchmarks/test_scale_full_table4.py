"""Figure 3d-3e at full Table-4 scale: block-sharded out-of-core runs.

The reduced-scale Fig 3 benchmark (``test_fig3_scalability.py``) sweeps
*fractions* of a 1200-row Soccer analogue; this one drives the row-block
sharding substrate at the paper's actual order of magnitude -- 100k+
rows of the Soccer analogue (the full dataset is ~180k) -- and records
the two claims that make out-of-core execution trustworthy:

1. **Byte-identity** (control): on a small dataset, a blocked detection
   suite serializes to exactly the same bytes as the unblocked run --
   same cells, same scores, for every block size tried.
2. **Bounded memory** (scale): streaming inference over row blocks
   keeps peak allocation roughly flat as rows grow 4x, where the
   whole-table path's peak grows linearly.  Measured with tracemalloc
   (per-measurement peaks, reset between points -- unlike ru_maxrss,
   which is process-monotone and cannot compare sweep points).

Row sweep (Fig 3d): 25k / 50k / 100k rows, all 44 columns.
Column sweep (Fig 3e): 11 / 22 / 44 columns at 50k rows.

Numbers land in ``BENCH_scale.json`` at the repo root so the scalability
story is diffable PR over PR.
"""

import json
import os
import time
from typing import Dict, List, Tuple

from conftest import emit

from repro.benchmark import run_detection_suite
from repro.context import CleaningContext
from repro.datagen import generate
from repro.dataset.encoding import TableEncoder
from repro.detectors import IQRDetector, MVDetector, SDDetector
from repro.ml.tree import DecisionTreeClassifier
from repro.observability import (
    Telemetry,
    traced_allocation,
    write_bench_snapshot,
)
from repro.reporting import render_series, render_table

BENCH_SNAPSHOT = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_scale.json"
)

#: Fixed block size for every blocked run in this module (rows).
BLOCK_ROWS = 4096

ROW_SWEEP = (25_000, 50_000, 100_000)
COLUMN_SWEEP = (11, 22, 44)
COLUMN_SWEEP_ROWS = 50_000


def detectors():
    return [MVDetector(), SDDetector(), IQRDetector()]


def _suite_bytes(runs) -> bytes:
    """Canonical serialization of a detection suite's observable output."""
    payload = [
        {
            "detector": run.detector,
            "cells": sorted([row, column] for row, column in run.result.cells),
            "precision": run.scores.precision,
            "recall": run.scores.recall,
            "f1": run.scores.f1,
            "failed": run.failed,
        }
        for run in runs
    ]
    return json.dumps(payload, sort_keys=True).encode()


def control_byte_identity() -> Dict[str, int]:
    """Blocked == unblocked, byte for byte, on a small control dataset."""
    dataset = generate("Adult", n_rows=400, seed=7)
    reference = _suite_bytes(run_detection_suite(dataset, detectors(), seed=0))
    checked = 0
    for block_rows in (1, 17, 128, 400, 10_000):
        blocked = _suite_bytes(
            run_detection_suite(
                dataset, detectors(), seed=0, block_rows=block_rows
            )
        )
        assert blocked == reference, f"divergence at block_rows={block_rows}"
        checked += 1
    return {"control_rows": 400, "block_sizes_checked": checked}


def _sweep_rows(seed: int = 0):
    """Fig 3d: blocked detection runtime/F1 vs rows at full width."""
    runtime: Dict[str, List[Tuple[float, float]]] = {}
    f1: Dict[str, List[Tuple[float, float]]] = {}
    peaks: Dict[int, Dict[str, float]] = {}
    for n_rows in ROW_SWEEP:
        dataset = generate("Soccer", n_rows=n_rows, seed=seed)
        telemetry = Telemetry()
        runs = run_detection_suite(
            dataset,
            detectors(),
            seed=seed,
            block_rows=BLOCK_ROWS,
            telemetry=telemetry,
        )
        for run in runs:
            assert not run.failed, (n_rows, run.detector, run.failure)
            runtime.setdefault(run.detector, []).append(
                (float(n_rows), run.result.runtime_seconds)
            )
            f1.setdefault(run.detector, []).append(
                (float(n_rows), run.scores.f1)
            )
        peaks[n_rows] = dict(
            telemetry.metrics.snapshot().get("max_gauges", {})
        )
        del dataset, runs  # each sweep point stands alone
    return runtime, f1, peaks


def _sweep_columns(seed: int = 0):
    """Fig 3e: blocked detection runtime vs column count at 50k rows."""
    dataset = generate("Soccer", n_rows=COLUMN_SWEEP_ROWS, seed=seed)
    names = dataset.dirty.column_names
    runtime: Dict[str, List[Tuple[float, float]]] = {}
    for n_columns in COLUMN_SWEEP:
        subset = dataset.dirty.select_columns(names[:n_columns])
        context = CleaningContext(dirty=subset)
        for detector in detectors():
            fitted = detector.fit_profile(context)
            started = time.perf_counter()
            for start, block in subset.iter_blocks(BLOCK_ROWS):
                detector._detect_block(context, fitted, block, start)
            elapsed = time.perf_counter() - started
            runtime.setdefault(detector.name, []).append(
                (float(n_columns), elapsed)
            )
    del dataset
    return runtime


def _streaming_inference_peaks(seed: int = 0):
    """Peak allocation: blocked streaming inference vs whole-table.

    The model pipeline (encode -> predict) is where whole-table
    execution actually materializes O(rows x features) float64: the
    encoded matrix.  Blocked streaming encodes and predicts one row
    block at a time and discards each encoded block, so its peak is
    O(block_rows x features) regardless of table length.
    """
    blocked_peaks: Dict[int, float] = {}
    unblocked_peaks: Dict[int, float] = {}
    for n_rows in ROW_SWEEP:
        dataset = generate("Soccer", n_rows=n_rows, seed=seed)
        table = dataset.dirty
        encoder = TableEncoder().fit(table)
        head = encoder.transform(table.block_view(0, 512))
        labels = (head[:, 0] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=4, seed=0).fit(head, labels)
        del head, labels

        with traced_allocation() as probe:
            for _, block in table.iter_blocks(BLOCK_ROWS):
                model.predict(encoder.transform(block))
        blocked_peaks[n_rows] = probe.peak_bytes

        if n_rows == max(ROW_SWEEP):
            with traced_allocation() as probe:
                model.predict(encoder.transform(table))
            unblocked_peaks[n_rows] = probe.peak_bytes
        del dataset, table, encoder, model
    return blocked_peaks, unblocked_peaks


def test_scale_full_table4(benchmark):
    control = benchmark.pedantic(
        control_byte_identity, rounds=1, iterations=1
    )
    row_runtime, row_f1, row_peaks = _sweep_rows()
    column_runtime = _sweep_columns()
    blocked_peaks, unblocked_peaks = _streaming_inference_peaks()

    # Sublinear memory: 4x the rows must cost far less than 4x the peak.
    low, high = min(ROW_SWEEP), max(ROW_SWEEP)
    growth = blocked_peaks[high] / blocked_peaks[low]
    assert growth < 2.0, (
        f"blocked streaming peak grew {growth:.2f}x over a "
        f"{high // low}x row growth"
    )
    # And the whole-table path really does pay O(rows) at the top size.
    contrast = unblocked_peaks[high] / blocked_peaks[high]
    assert contrast > 4.0, (
        f"whole-table peak only {contrast:.2f}x the blocked peak at "
        f"{high} rows"
    )

    emit(
        "scale_full_rows_runtime",
        render_series(
            row_runtime, "n_rows", "runtime_s",
            title=(
                f"Fig 3d analogue: blocked detection runtime vs rows "
                f"(Soccer, 44 columns, block_rows={BLOCK_ROWS})"
            ),
        ),
    )
    emit(
        "scale_full_rows_f1",
        render_series(
            row_f1, "n_rows", "f1",
            title="Fig 3d analogue: detection F1 vs rows (Soccer)",
        ),
    )
    emit(
        "scale_full_columns_runtime",
        render_series(
            column_runtime, "n_columns", "runtime_s",
            title=(
                f"Fig 3e analogue: blocked detection runtime vs columns "
                f"(Soccer, {COLUMN_SWEEP_ROWS} rows)"
            ),
        ),
    )
    emit(
        "scale_full_memory",
        render_table(
            ["n_rows", "blocked_peak_mb", "unblocked_peak_mb"],
            [
                [
                    n,
                    round(blocked_peaks[n] / 1e6, 1),
                    round(unblocked_peaks.get(n, float("nan")) / 1e6, 1)
                    if n in unblocked_peaks
                    else "-",
                ]
                for n in ROW_SWEEP
            ],
            title=(
                "Streaming inference peak allocation (tracemalloc): "
                "blocked stays flat, whole-table grows with rows"
            ),
        ),
    )

    write_bench_snapshot(
        BENCH_SNAPSHOT,
        "scale_full_table4",
        numbers={
            "blocked_peak_bytes": {
                str(n): round(v) for n, v in blocked_peaks.items()
            },
            "unblocked_peak_bytes": {
                str(n): round(v) for n, v in unblocked_peaks.items()
            },
            "blocked_peak_growth_100k_over_25k": round(growth, 3),
            "unblocked_over_blocked_at_100k": round(contrast, 2),
            "detection_runtime_seconds": {
                name: {str(int(n)): round(s, 3) for n, s in series}
                for name, series in row_runtime.items()
            },
            "detection_f1": {
                name: {str(int(n)): round(v, 4) for n, v in series}
                for name, series in row_f1.items()
            },
            "column_sweep_runtime_seconds": {
                name: {str(int(n)): round(s, 3) for n, s in series}
                for name, series in column_runtime.items()
            },
            "peak_rss_gauges": {
                str(n): row_peaks[n] for n in ROW_SWEEP
            },
        },
        context={
            "dataset": "Soccer",
            "block_rows": BLOCK_ROWS,
            "row_sweep": list(ROW_SWEEP),
            "column_sweep": list(COLUMN_SWEEP),
            "column_sweep_rows": COLUMN_SWEEP_ROWS,
            "detectors": [d.name for d in detectors()],
            **control,
        },
    )
