"""Service throughput: the worker pool scales job drain rate.

The service's value proposition over `repro submit --inline` is the
worker pool: N workers drain the queue ~N times faster when jobs are
bound by the tools rather than the harness.  This benchmark submits a
batch of wait-bound jobs (``sleepy_execute`` holds the interpreter for
a fixed interval, so the measurement does not depend on core count)
over real HTTP at 1, 4 and 8 workers, and records jobs/second plus the
p50/p99 submit-to-finish latency the queue's own timestamps report.

Acceptance bar: >= 3x throughput at 4 workers over 1 -- conservative
against the 4x ideal to absorb fork and HTTP overhead.
"""

import os
import time

from conftest import emit

from repro.observability import write_bench_snapshot
from repro.reporting import render_table
from repro.service import BenchService, JobSpec, SchedulerPolicy, ServiceClient

#: Machine-readable perf snapshot, committed at the repo root so the
#: numbers are diffable PR over PR.
BENCH_SNAPSHOT = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_service.json"
)

#: Per-job wall-clock cost and batch width.  40 x 0.05s of serial work
#: leaves generous headroom over the 3x bar at 4 workers.
SLEEP_SECONDS = 0.05
N_JOBS = 40
WORKER_COUNTS = (1, 4, 8)


def _specs():
    return [
        JobSpec(
            kind="detect", dataset="Nasa", rows=60, seed=seed,
            options={"detectors": ["MVD"]},
        )
        for seed in range(N_JOBS)
    ]


def _percentile(sorted_values, q):
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _run_batch(tmp_path, n_workers):
    """Submit N_JOBS over HTTP, drain with n_workers, measure."""
    root = tmp_path / f"w{n_workers}"
    root.mkdir()
    os.environ["REPRO_SERVICE_SLEEP_SECONDS"] = str(SLEEP_SECONDS)
    service = BenchService(
        str(root / "queue.sqlite"),
        n_workers=n_workers,
        policy=SchedulerPolicy(max_depth=N_JOBS * 2),
        execute_ref="repro.service.testing:sleepy_execute",
        poll_seconds=0.005,
    )
    with service:
        client = ServiceClient(service.address, timeout=30.0)
        specs = _specs()
        started = time.perf_counter()
        for spec in specs:
            client.submit(spec.to_payload())
        records = client.wait_all(
            [spec.job_id for spec in specs],
            deadline_seconds=120.0,
            poll_seconds=0.01,
        )
        wall_seconds = time.perf_counter() - started
    latencies = sorted(r["latency_seconds"] for r in records.values())
    assert len(latencies) == N_JOBS
    return {
        "workers": n_workers,
        "wall_seconds": wall_seconds,
        "jobs_per_second": N_JOBS / wall_seconds,
        "p50_latency_seconds": _percentile(latencies, 0.50),
        "p99_latency_seconds": _percentile(latencies, 0.99),
    }


def test_four_workers_triple_single_worker_throughput(tmp_path):
    measurements = [_run_batch(tmp_path, n) for n in WORKER_COUNTS]
    by_workers = {m["workers"]: m for m in measurements}
    scaling = (
        by_workers[4]["jobs_per_second"] / by_workers[1]["jobs_per_second"]
    )

    emit(
        "service_throughput",
        render_table(
            ["workers", "wall_s", "jobs_per_s", "p50_ms", "p99_ms"],
            [
                [
                    m["workers"],
                    round(m["wall_seconds"], 3),
                    round(m["jobs_per_second"], 1),
                    round(m["p50_latency_seconds"] * 1000, 1),
                    round(m["p99_latency_seconds"] * 1000, 1),
                ]
                for m in measurements
            ],
            title=(
                f"{N_JOBS} wait-bound jobs x {SLEEP_SECONDS}s over HTTP: "
                "worker pool scaling"
            ),
        ),
    )
    write_bench_snapshot(
        BENCH_SNAPSHOT,
        "service_throughput",
        numbers={
            f"jobs_per_second_{m['workers']}w": round(m["jobs_per_second"], 2)
            for m in measurements
        }
        | {
            f"p50_latency_seconds_{m['workers']}w": round(
                m["p50_latency_seconds"], 4
            )
            for m in measurements
        }
        | {
            f"p99_latency_seconds_{m['workers']}w": round(
                m["p99_latency_seconds"], 4
            )
            for m in measurements
        }
        | {"scaling_4w_over_1w": round(scaling, 3)},
        context={
            "n_jobs": N_JOBS,
            "job_sleep_seconds": SLEEP_SECONDS,
            "worker_counts": list(WORKER_COUNTS),
            "transport": "http",
        },
    )
    assert scaling >= 3.0, (
        f"expected >= 3x throughput at 4 workers, got {scaling:.2f}x "
        f"({by_workers[1]['jobs_per_second']:.1f} -> "
        f"{by_workers[4]['jobs_per_second']:.1f} jobs/s)"
    )
