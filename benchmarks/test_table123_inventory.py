"""Tables 1-3: method inventory, model pool, and scenario definitions.

These tables are structural rather than experimental; the benchmarks
regenerate them from the live registries so the printed inventory always
matches what the code actually ships.
"""

from conftest import emit

from repro.benchmark import ALL_SCENARIOS
from repro.detectors import ML_SUPPORTED, NON_LEARNING, all_detectors
from repro.ml.model_zoo import CLASSIFICATION, CLUSTERING, REGRESSION, specs_for_task
from repro.repair import GENERIC, ML_ORIENTED, all_repair_methods
from repro.reporting import render_table


def build_table1():
    detector_rows = [
        [d.name, "II" if d.category == ML_SUPPORTED else "I",
         ", ".join(sorted(d.tackles))]
        for d in all_detectors()
    ]
    repair_rows = [
        [m.name, "II" if m.category == ML_ORIENTED else "I"]
        for m in all_repair_methods()
    ]
    return detector_rows, repair_rows


def test_table1_method_inventory(benchmark):
    detector_rows, repair_rows = benchmark.pedantic(
        build_table1, rounds=1, iterations=1
    )
    assert len(detector_rows) == 19
    assert len(repair_rows) == 19
    # Category split of Table 1: 15 non-learning + 4 ML-supported detectors;
    # 16 generic + 3 ML-oriented repairs.
    assert sum(1 for r in detector_rows if r[1] == "II") == 4
    assert sum(1 for r in repair_rows if r[1] == "II") == 3
    emit(
        "table1_detectors",
        render_table(
            ["detector", "category", "tackled errors"],
            detector_rows,
            title="Table 1 (left): error detection methods",
        ),
    )
    emit(
        "table1_repairs",
        render_table(
            ["repair method", "category"],
            repair_rows,
            title="Table 1 (right): data repair methods",
        ),
    )


def build_table2():
    rows = []
    for task, mark in (
        (CLASSIFICATION, "C"),
        (REGRESSION, "R"),
        (CLUSTERING, "UC"),
    ):
        for spec in specs_for_task(task):
            rows.append([spec.name, mark, len(spec.space.dimensions)])
    return rows


def test_table2_model_pool(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    classifiers = [r for r in rows if r[1] == "C"]
    regressors = [r for r in rows if r[1] == "R"]
    clusterers = [r for r in rows if r[1] == "UC"]
    # Table 2's counts: 12 classifiers, 11 regressors, 6 clusterers
    # (+2 AutoML systems, exercised in test_automl.py).
    assert len(classifiers) == 12
    assert len(regressors) == 11
    assert len(clusterers) == 6
    emit(
        "table2_models",
        render_table(
            ["model", "task", "tunable dimensions"],
            rows,
            title="Table 2: examined ML models (plus AutoLearn & TPotLite)",
        ),
    )


def test_table3_scenarios(benchmark):
    def build():
        return [[s.name, s.train, s.test] for s in ALL_SCENARIOS]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 5
    assert rows[3] == ["S4", "ground_truth", "ground_truth"]
    emit(
        "table3_scenarios",
        render_table(
            ["scenario", "train on", "test on"],
            rows,
            title="Table 3: evaluation scenarios",
        ),
    )
