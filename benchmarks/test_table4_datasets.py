"""Table 4: dataset characteristics.

Regenerates every dataset analogue and prints its Table 4 row (rows,
columns, type mix, realised error rate, error profile, domain, ML task).
"""

from conftest import bench_dataset, emit

from repro.datagen import DATASET_NAMES, dataset_spec
from repro.reporting import render_table


def build_table4():
    rows = []
    for name in DATASET_NAMES:
        dataset = bench_dataset(name)
        summary = dataset.summary_row()
        spec = dataset_spec(name)
        rows.append(
            [
                summary["dataset"],
                summary["rows"],
                spec.table4_rows,
                summary["columns"],
                summary["numerical"],
                summary["categorical"],
                summary["error_rate"],
                spec.error_rate,
                summary["errors"],
                summary["domain"],
                summary["task"],
            ]
        )
    return rows


def test_table4_dataset_characteristics(benchmark):
    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    assert len(rows) == 14
    # Shape checks against the paper's Table 4.
    by_name = {r[0]: r for r in rows}
    # Type mixes.
    assert by_name["BreastCancer"][5] == 0          # all-numeric
    assert by_name["Beers"][5] == 5                  # 5 categorical columns
    assert by_name["Adult"][4] == 7 and by_name["Adult"][5] == 8
    # Realised error rates land in the same band as Table 4's.
    for name in ("Beers", "SmartFactory", "Water", "Citation", "Nasa"):
        realised, target = by_name[name][6], by_name[name][7]
        assert 0.25 * target <= realised <= 2.5 * target, (name, realised)
    # Adult is the dirtiest dataset, Soil Moisture among the cleanest.
    assert by_name["Adult"][6] > by_name["SoilMoisture"][6]
    emit(
        "table4_datasets",
        render_table(
            [
                "dataset", "rows", "paper_rows", "cols", "num", "cat",
                "error_rate", "paper_rate", "errors", "domain", "task",
            ],
            rows,
            title="Table 4: dataset characteristics (reduced scale)",
        ),
    )
