"""Cleaning your own tabular data with the framework.

Shows the extension path a downstream user takes: build a Table from raw
columns, discover FD rules automatically (the FDX-analogue profiler),
declare patterns, inject controlled errors for evaluation, and run
detection + repair with auto-generated signals only -- no ground truth
needed at detection time for the non-learning tools.

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro.constraints import ColumnPattern, discover_fds
from repro.context import CleaningContext
from repro.dataset import Table
from repro.dataset.table import infer_schema
from repro.detectors import FahesDetector, NadeefDetector, SDDetector
from repro.errors import CompositeInjector, ImplicitMissingInjector, OutlierInjector
from repro.metrics import detection_scores
from repro.repair import HoloCleanRepair
from repro.reporting import render_table


def build_orders_table(n_rows: int = 300, seed: int = 5) -> Table:
    """A small e-commerce orders table with an embedded FD (zip -> city)."""
    rng = np.random.default_rng(seed)
    zips = ["10115", "80331", "20095", "50667"]
    city_of = {"10115": "berlin", "80331": "munich",
               "20095": "hamburg", "50667": "cologne"}
    chosen = [zips[int(rng.integers(4))] for _ in range(n_rows)]
    columns = {
        "order_id": [float(i) for i in range(n_rows)],
        "zip": chosen,
        "city": [city_of[z] for z in chosen],
        "amount": rng.lognormal(3.0, 0.4, size=n_rows).tolist(),
        "items": [float(rng.integers(1, 9)) for _ in range(n_rows)],
    }
    return Table(infer_schema(columns), columns)


def main() -> None:
    clean = build_orders_table()

    # 1. Profile the clean data: FD discovery (FDX analogue).
    fds = discover_fds(clean, max_lhs=1, columns=["zip", "city"])
    print("discovered FDs:", ", ".join(str(fd) for fd in fds) or "(none)")

    # 2. Inject a controlled error profile so we can evaluate.
    injector = CompositeInjector([
        OutlierInjector(columns=["amount"], degree=5.0),
        ImplicitMissingInjector(columns=["items", "city"]),
    ])
    result = injector.inject(clean, 0.08, np.random.default_rng(1))
    print(f"injected {len(result.error_cells)} erroneous cells "
          f"({result.error_rate():.3f} of the table)\n")

    # 3. Detect with auto-generated signals only (no ground truth).
    context = CleaningContext(
        dirty=result.dirty,
        fds=fds,
        patterns=[ColumnPattern("zip", r"\d{5}")],
        seed=0,
    )
    rows = []
    union = set()
    for detector in (SDDetector(), FahesDetector(), NadeefDetector()):
        detected = detector.detect(context)
        scores = detection_scores(detected.cells, result.error_cells)
        union |= set(detected.cells)
        rows.append([detector.name, detected.n_detected,
                     scores.precision, scores.recall, scores.f1])
    scores = detection_scores(union, result.error_cells)
    rows.append(["(union)", len(union), scores.precision, scores.recall,
                 scores.f1])
    print(render_table(
        ["detector", "detected", "precision", "recall", "f1"], rows,
        title="Detection with auto-generated signals"))

    # 4. Repair with HoloClean-style inference over the discovered FDs.
    repaired = HoloCleanRepair().repair(context, union).repaired
    fixed = sum(
        1 for cell in union
        if cell in result.error_cells
        and str(repaired.get_cell(*cell)).strip()
        == str(clean.get_cell(*cell)).strip()
    )
    print(f"\nHoloClean repair fixed {fixed} cells exactly "
          f"out of {len(union & result.error_cells)} detected true errors")


if __name__ == "__main__":
    main()
