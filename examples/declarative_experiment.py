"""Declarative experiments: run the benchmark from a JSON config.

The original REIN repository drives experiments via declarations; this
example defines one in code, shows its JSON form (store it, version it,
share it), executes it, and prints the three-stage report.

Run:  python examples/declarative_experiment.py
"""

from repro.benchmark import ExperimentConfig, run_experiment


def main() -> None:
    config = ExperimentConfig(
        dataset="Beers",
        n_rows=300,
        seed=4,
        detectors=["MVD", "NADEEF", "MaxEntropy"],
        repairs=["GT", "Impute-Mean", "MISS-Mix"],
        models=["DT", "Logit"],
        scenarios=["S1", "S4"],
        n_seeds=3,
    )
    print("experiment declaration:\n")
    print(config.to_json())
    print("\nrunning...\n")
    report = run_experiment(config)
    print(report.render())

    # The report is structured, not just text: pick out a headline number.
    best = max(
        (e for e in report.evaluations if e.variant != "dirty"),
        key=lambda e: e.mean("S1"),
    )
    print(
        f"\nbest cleaned variant for S1: {best.model} on {best.variant} "
        f"(F1 {best.mean('S1'):.3f} vs ground-truth bound "
        f"{best.mean('S4'):.3f})"
    )


if __name__ == "__main__":
    main()
