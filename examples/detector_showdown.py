"""Detector showdown: the full 19-detector pool on one dataset.

Uses the benchmark controller to prune detectors that cannot apply (wrong
error types, missing signals, capability boundaries), runs the rest, and
prints the Figure 2-style panels: accuracy, IoU similarity, and runtime.

Run:  python examples/detector_showdown.py [dataset]
"""

import sys

from repro.benchmark import BenchmarkController, detection_iou, run_detection_suite
from repro.datagen import DATASET_NAMES, generate
from repro.reporting import render_matrix, render_table


def main(dataset_name: str = "SmartFactory") -> None:
    dataset = generate(dataset_name, n_rows=400, seed=3)
    controller = BenchmarkController()
    applicable = controller.applicable_detectors(dataset)
    skipped = sorted(
        {d.name for d in controller.detectors} - {d.name for d in applicable}
    )
    print(f"dataset: {dataset.name} | error types: {sorted(dataset.error_types)}")
    print(f"controller pruned: {', '.join(skipped) or '(none)'}\n")

    runs = run_detection_suite(dataset, applicable, seed=0)
    active = [r for r in runs if not r.failed and r.result.n_detected > 0]
    failures = [r for r in runs if r.failed]

    rows = [
        [r.detector, r.result.n_detected, r.scores.true_positives,
         r.scores.false_positives, r.scores.precision, r.scores.recall,
         r.scores.f1, r.result.runtime_seconds]
        for r in sorted(active, key=lambda r: -r.scores.f1)
    ]
    print(render_table(
        ["detector", "detected", "tp", "fp", "precision", "recall", "f1",
         "runtime_s"],
        rows,
        title=f"Detection accuracy ({len(dataset.error_cells)} actual "
              "erroneous cells)",
    ))
    if failures:
        print("\nfailed detectors:")
        for run in failures:
            print(f"  {run.detector}: {run.failure}")

    names, matrix = detection_iou(active, dataset)
    print()
    print(render_matrix(names, matrix, title="IoU over true positives"))


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "SmartFactory"
    if name not in DATASET_NAMES:
        raise SystemExit(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    main(name)
