"""End-to-end cleaning-for-ML study with persistence and significance tests.

Reproduces REIN's full pipeline on one dataset:

1. store ground truth + dirty versions in the SQLite data repository;
2. run a detector x repair grid, storing each repaired version;
3. train a model on every version under scenarios S1 and S4, repeated over
   seeds, logging results to the results store;
4. report mean +- std per version with the Wilcoxon S1-vs-S4 decision.

Run:  python examples/ml_pipeline_study.py
"""

from repro.benchmark import evaluate_scenarios, run_detection_suite
from repro.datagen import generate
from repro.detectors import MaxEntropyDetector, MVDetector
from repro.repair import GroundTruthRepair, MeanModeImputeRepair, MissForestMixRepair
from repro.repository import DataRepository, ResultsStore
from repro.repository.store import DIRTY, GROUND_TRUTH, REPAIRED, ResultRecord
from repro.reporting import render_table


def main() -> None:
    dataset = generate("SmartFactory", n_rows=400, seed=11)
    context = dataset.context(seed=0)

    repository = DataRepository()  # in-memory; pass a path to persist
    results = ResultsStore()
    repository.save_version(dataset.name, GROUND_TRUTH, dataset.clean)
    repository.save_version(dataset.name, DIRTY, dataset.dirty)

    # Detection.
    detection_runs = run_detection_suite(
        dataset, [MVDetector(), MaxEntropyDetector()], seed=0
    )

    # Repair grid -> repaired versions stored under their strategy names.
    variants = [("dirty", dataset.dirty, None)]
    for run in detection_runs:
        if run.failed or not run.result.n_detected:
            continue
        for method in (
            GroundTruthRepair(), MeanModeImputeRepair(), MissForestMixRepair(),
        ):
            result = method.repair(context, run.result.cells)
            strategy = f"{run.detector}+{method.name}"
            repository.save_version(
                dataset.name, REPAIRED, result.repaired, variant=strategy
            )
            variants.append(
                (strategy, result.repaired, result.metadata.get("kept_rows"))
            )
    print(f"stored versions: {repository.list_versions(dataset.name)}\n")

    # Scenario evaluation with repeats + A/B test.
    rows = []
    for variant_name, table, kept in variants:
        evaluation = evaluate_scenarios(
            dataset, table, variant_name, "RF",
            scenario_names=("S1", "S4"), n_seeds=5, kept_rows=kept,
        )
        for scenario_name, scores in evaluation.scores.items():
            for seed, value in enumerate(scores):
                results.add(ResultRecord(
                    dataset.name, "model", variant_name, "f1", value,
                    seed=seed, scenario=scenario_name,
                ))
        ab = evaluation.ab_test("S1", "S4")
        rows.append([
            variant_name,
            evaluation.mean("S1"), evaluation.std("S1"),
            evaluation.mean("S4"), evaluation.std("S4"),
            ab.p_value,
            "different" if ab.reject_null() else "equivalent",
        ])
    print(render_table(
        ["version", "S1_mean", "S1_std", "S4_mean", "S4_std", "p_value",
         "S1-vs-S4"],
        rows,
        title="Random forest F1 across data versions (5 seeds)",
    ))
    print(f"\nresult records logged: {results.count()}")


if __name__ == "__main__":
    main()
