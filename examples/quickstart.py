"""Quickstart: detect, repair, and measure the downstream ML impact.

Generates a small Beers-style dataset with injected errors, runs three
detectors, repairs the best detection with missForest, and compares a
classifier trained on dirty vs repaired vs ground-truth data (scenarios S1
and S4 of the REIN benchmark).

Run:  python examples/quickstart.py
"""

from repro.benchmark import run_scenario
from repro.datagen import generate
from repro.detectors import MaxEntropyDetector, MVDetector, SDDetector
from repro.metrics import detection_scores, repair_rmse
from repro.repair import MissForestMixRepair
from repro.reporting import render_table


def main() -> None:
    # 1. A dirty dataset with ground truth (Beers analogue, Table 4).
    dataset = generate("Beers", n_rows=400, seed=7)
    print(f"dataset: {dataset.name}, {dataset.dirty.shape[0]} rows, "
          f"error rate {dataset.error_rate():.3f}, "
          f"errors: {sorted(dataset.error_types)}\n")

    # 2. Detection: three detectors of increasing sophistication.
    context = dataset.context(seed=0)
    rows = []
    best_name, best_cells, best_f1 = None, frozenset(), -1.0
    for detector in (MVDetector(), SDDetector(), MaxEntropyDetector()):
        result = detector.detect(context)
        scores = detection_scores(result.cells, dataset.error_cells)
        rows.append(
            [detector.name, result.n_detected, scores.precision,
             scores.recall, scores.f1, result.runtime_seconds]
        )
        if scores.f1 > best_f1:
            best_name, best_cells, best_f1 = detector.name, result.cells, scores.f1
    print(render_table(
        ["detector", "detected", "precision", "recall", "f1", "runtime_s"],
        rows, title="Detection"))

    # 3. Repair the best detection with missForest-style imputation.
    repair = MissForestMixRepair()
    repaired = repair.repair(context, best_cells).repaired
    print(f"\nRepair: {best_name} + {repair.name}")
    print(f"  RMSE dirty    : {repair_rmse(dataset.dirty, dataset.clean):.3f}")
    print(f"  RMSE repaired : {repair_rmse(repaired, dataset.clean):.3f}")

    # 4. Downstream impact: classifier F1 in S1 (train/test on a version)
    #    vs S4 (train/test on ground truth).
    rows = []
    for version_name, table in (
        ("dirty", dataset.dirty),
        (f"{best_name}+{repair.name}", repaired),
    ):
        s1 = run_scenario("S1", table, dataset, "DT", seed=0)
        s4 = run_scenario("S4", table, dataset, "DT", seed=0)
        rows.append([version_name, s1, s4])
    print()
    print(render_table(
        ["training version", "S1 f1", "S4 f1 (upper bound)"],
        rows, title="Downstream classification (decision tree)"))


if __name__ == "__main__":
    main()
