"""REIN reproduction: benchmarking data cleaning methods in ML pipelines.

The package mirrors the architecture of the REIN benchmark (EDBT 2023):

- :mod:`repro.dataset`     tabular substrate (typed tables, encoding, splits)
- :mod:`repro.constraints` denial constraints, FDs, patterns, FD discovery
- :mod:`repro.errors`      controlled error injection (BART analogue et al.)
- :mod:`repro.detectors`   19 error detection methods
- :mod:`repro.repair`      19 data repair methods
- :mod:`repro.ml`          classification / regression / clustering / AutoML
- :mod:`repro.tuning`      hyperparameter search (Optuna analogue)
- :mod:`repro.metrics`     detection / repair / model metrics + Wilcoxon test
- :mod:`repro.repository`  SQLite data-version, results, and checkpoint stores
- :mod:`repro.resilience`  execution guards, failure taxonomy, chaos harness
- :mod:`repro.benchmark`   controller, scenarios S1-S5, experiment runner
- :mod:`repro.datagen`     synthetic analogues of the 14 benchmark datasets
- :mod:`repro.reporting`   text renderers for the paper's tables and figures
"""

from repro.dataset.schema import Column, Schema
from repro.dataset.table import Table

__version__ = "1.0.0"

__all__ = ["Table", "Column", "Schema", "__version__"]
