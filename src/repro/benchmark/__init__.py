"""Benchmark layer: controller, scenarios S1-S5, and the experiment runner.

This is the paper's primary contribution -- the framework that wires dirty
data, cleaning tools, and ML models together while pruning meaningless
combinations (Section 2) and validating conclusions statistically
(Section 4).
"""

from repro.benchmark.config import ExperimentConfig, ExperimentReport, run_experiment
from repro.benchmark.controller import BenchmarkController
from repro.benchmark.signals import AutoSignals, auto_signals
from repro.benchmark.runner import (
    DetectionRun,
    RepairRun,
    ScenarioEvaluation,
    detection_iou,
    estimate_n_clusters,
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
    run_scenario,
)
from repro.benchmark.scenarios import ALL_SCENARIOS, S1, S2, S3, S4, S5, Scenario, scenario

__all__ = [
    "ALL_SCENARIOS",
    "AutoSignals",
    "BenchmarkController",
    "ExperimentConfig",
    "ExperimentReport",
    "auto_signals",
    "run_experiment",
    "DetectionRun",
    "RepairRun",
    "S1",
    "S2",
    "S3",
    "S4",
    "S5",
    "Scenario",
    "ScenarioEvaluation",
    "detection_iou",
    "estimate_n_clusters",
    "evaluate_scenarios",
    "run_detection_suite",
    "run_repair_suite",
    "run_scenario",
    "scenario",
]
