"""Declarative experiment configurations.

The original REIN repository is driven by experiment declarations (which
dataset, which cleaners, which models, how many repetitions).  This module
provides the same interface: an :class:`ExperimentConfig` serializable to
JSON, and :func:`run_experiment` which executes the full detection ->
repair -> scenario pipeline it describes and returns a structured report.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.benchmark.controller import BenchmarkController
from repro.benchmark.runner import (
    DetectionRun,
    RepairRun,
    ScenarioEvaluation,
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
)
from repro.datagen import DATASET_NAMES, generate
from repro.detectors import detector_registry
from repro.ml.model_zoo import get_spec
from repro.repair import RepairMethod, repair_registry
from repro.reporting import render_table
from repro.resilience.failures import FailureRecord
from repro.resilience.policy import ResiliencePolicy


@dataclass
class ExperimentConfig:
    """One benchmark experiment declaration.

    Attributes:
        dataset: a Table 4 dataset name.
        n_rows: rows to generate (None = Table 4 size).
        seed: master seed for data generation and experiment RNG.
        detectors: detector names to run (None = controller decides).
        repairs: repair-method names (None = controller decides; only
            generic table-producing repairs are used here).
        models: model names from the zoo for the dataset's task.
        scenarios: Table 3 scenario names to evaluate.
        n_seeds: repetitions per scenario (the paper uses 10).
    """

    dataset: str
    n_rows: Optional[int] = None
    seed: int = 0
    detectors: Optional[List[str]] = None
    repairs: Optional[List[str]] = None
    models: List[str] = field(default_factory=lambda: ["DT"])
    scenarios: List[str] = field(default_factory=lambda: ["S1", "S4"])
    n_seeds: int = 3

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_NAMES:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; "
                f"choose from {sorted(DATASET_NAMES)}"
            )
        if self.n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        known_detectors = set(detector_registry())
        for name in self.detectors or []:
            if name not in known_detectors:
                raise ValueError(f"unknown detector {name!r}")
        known_repairs = set(repair_registry())
        for name in self.repairs or []:
            if name not in known_repairs:
                raise ValueError(f"unknown repair method {name!r}")

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        payload = json.loads(text)
        return cls(**payload)


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    config: ExperimentConfig
    detection_runs: List[DetectionRun]
    repair_runs: List[RepairRun]
    evaluations: List[ScenarioEvaluation]

    def detection_table(self) -> str:
        rows = [
            [r.detector, r.result.n_detected, r.scores.precision,
             r.scores.recall, r.scores.f1,
             "FAILED" if r.failed else ""]
            for r in self.detection_runs
        ]
        return render_table(
            ["detector", "detected", "precision", "recall", "f1", "note"],
            rows, title=f"{self.config.dataset}: detection",
        )

    def repair_table(self) -> str:
        rows = [
            [r.strategy, r.categorical_f1, r.numerical_rmse,
             "FAILED" if r.failed else ""]
            for r in self.repair_runs
        ]
        return render_table(
            ["strategy", "categorical_f1", "numerical_rmse", "note"],
            rows, title=f"{self.config.dataset}: repair grid",
        )

    def model_table(self) -> str:
        rows = []
        for evaluation in self.evaluations:
            row: List[object] = [evaluation.model, evaluation.variant]
            for scenario in self.config.scenarios:
                row.append(evaluation.mean(scenario))
                row.append(evaluation.std(scenario))
            rows.append(row)
        headers = ["model", "variant"]
        for scenario in self.config.scenarios:
            headers.extend([f"{scenario}_mean", f"{scenario}_std"])
        return render_table(
            headers, rows, title=f"{self.config.dataset}: modeling",
        )

    def failure_records(self) -> List[FailureRecord]:
        """Every categorized failure the experiment produced, in order."""
        records: List[FailureRecord] = []
        for run in self.detection_runs:
            if run.failure_record is not None:
                records.append(run.failure_record)
        for run in self.repair_runs:
            if run.failure_record is not None:
                records.append(run.failure_record)
        for evaluation in self.evaluations:
            for name in sorted(evaluation.failures):
                for seed in sorted(evaluation.failures[name]):
                    records.append(evaluation.failures[name][seed])
        return records

    def failures_table(self) -> str:
        """One row per failure: stage, method, category, reason."""
        rows = [
            [r.stage, r.method, r.category,
             "quarantined" if r.quarantined else f"retries={r.retries}",
             r.describe()]
            for r in self.failure_records()
        ]
        return render_table(
            ["stage", "method", "category", "note", "reason"], rows,
            title=f"{self.config.dataset}: failures",
        )

    def render(self) -> str:
        sections = [
            self.detection_table(), self.repair_table(), self.model_table()
        ]
        if self.failure_records():
            sections.append(self.failures_table())
        return "\n\n".join(sections)


def run_experiment(
    config: ExperimentConfig,
    policy: Optional[ResiliencePolicy] = None,
) -> ExperimentReport:
    """Execute one declared experiment end to end.

    ``policy`` activates the resilience layer: per-stage deadlines,
    transient retries, circuit-breaker quarantine shared across the whole
    experiment, and SQLite checkpoints keyed by a content-addressed run
    id (same config -> same run) so an interrupted experiment resumes by
    skipping completed units.
    """
    policy = policy or ResiliencePolicy()
    dataset = generate(config.dataset, n_rows=config.n_rows, seed=config.seed)
    breaker = policy.make_breaker()
    checkpoint = policy.open_checkpoint("experiment", config.to_json())
    controller = BenchmarkController(breaker=breaker)
    guard_kwargs = dict(
        deadline_seconds=policy.deadline_seconds,
        retry=policy.retry,
        breaker=breaker,
        checkpoint=checkpoint,
        clock=policy.clock,
        sleep=policy.sleep,
        executor=policy.make_executor(),
    )
    try:
        return _run_experiment_stages(
            config, dataset, controller, guard_kwargs, policy
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()


def _run_experiment_stages(
    config: ExperimentConfig,
    dataset,
    controller: BenchmarkController,
    guard_kwargs: Dict,
    policy: ResiliencePolicy,
) -> ExperimentReport:
    if config.detectors is None:
        detectors = controller.applicable_detectors(dataset)
    else:
        registry = detector_registry()
        detectors = [registry[name] for name in config.detectors]
    detection_runs = run_detection_suite(
        dataset, detectors, seed=config.seed, **guard_kwargs
    )

    if config.repairs is None:
        repairs = [
            m for m in controller.applicable_repairs(dataset)
            if isinstance(m, RepairMethod)
        ]
    else:
        registry = repair_registry()
        repairs = [registry[name] for name in config.repairs]
        non_generic = [m.name for m in repairs if not isinstance(m, RepairMethod)]
        if non_generic:
            raise ValueError(
                "ML-oriented repairs produce models, not tables; "
                f"remove {non_generic} or use the fig6 harness"
            )
    detections = {
        r.detector: set(r.result.cells)
        for r in detection_runs
        if not r.failed and r.result.n_detected > 0
    }
    repair_runs = run_repair_suite(
        dataset, detections, repairs, seed=config.seed, **guard_kwargs
    )

    evaluations: List[ScenarioEvaluation] = []
    if dataset.task is not None and config.models:
        variants = [("dirty", dataset.dirty, None)]
        for run in repair_runs:
            if run.failed:
                continue
            variants.append(
                (
                    run.strategy,
                    run.result.repaired,
                    run.result.metadata.get("kept_rows"),
                )
            )
        for model_name in config.models:
            get_spec(dataset.task, model_name)  # fail fast on bad names
            for variant_name, table, kept in variants:
                evaluations.append(
                    evaluate_scenarios(
                        dataset, table, variant_name, model_name,
                        scenario_names=tuple(config.scenarios),
                        n_seeds=config.n_seeds,
                        kept_rows=kept,
                        deadline_seconds=policy.deadline_seconds,
                        retry=policy.retry,
                        checkpoint=guard_kwargs.get("checkpoint"),
                        clock=policy.clock,
                        sleep=policy.sleep,
                        executor=guard_kwargs.get("executor"),
                    )
                )
    return ExperimentReport(config, detection_runs, repair_runs, evaluations)
