"""The benchmark controller (Section 2).

The controller wires the other components together and -- its second job --
*prunes* unnecessary experiments using design-time knowledge: a dataset
known to contain only duplicates is never fed to outlier detectors, a
detector whose signals (KB, rules, keys, labels) are absent is skipped,
and capability boundaries from Section 6.5 (RAHA/ED2/Meta break on
duplicate-bearing data, Picket on large data, BoostClean/CPClean on
multi-class tasks) are enforced up front.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Union

from repro.datagen.benchmark_dataset import BenchmarkDataset
from repro.detectors import all_detectors
from repro.detectors.base import Detector
from repro.errors import profile
from repro.repair import MLOrientedRepair, RepairMethod, all_repair_methods
from repro.resilience.guards import CircuitBreaker

#: Which error types each *specialised* detector can possibly find.  The
#: controller skips a specialised detector when the dataset's profile has
#: no overlap.  Holistic detectors (tackles contains 'holistic') always run.
_OUTLIER_LIKE = {
    profile.OUTLIER,
    profile.IMPLICIT_MISSING,
    profile.GAUSSIAN_NOISE,
}


class BenchmarkController:
    """Selects the applicable detector / repair / model pools per dataset."""

    def __init__(
        self,
        detectors: Optional[Sequence[Detector]] = None,
        repairs: Optional[Sequence[Union[RepairMethod, MLOrientedRepair]]] = None,
        picket_max_rows: int = 5000,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.detectors = (
            list(detectors) if detectors is not None else all_detectors()
        )
        self.repairs = (
            list(repairs) if repairs is not None else all_repair_methods()
        )
        self.picket_max_rows = picket_max_rows
        #: Shared circuit breaker: methods it has quarantined (after K
        #: consecutive failures in the running suite) are pruned up front,
        #: exactly like the design-time capability boundaries below.
        self.breaker = breaker

    def quarantined_methods(self) -> Dict[str, str]:
        """Quarantined method name -> recorded reason (empty w/o breaker)."""
        if self.breaker is None:
            return {}
        return self.breaker.quarantined

    # ------------------------------------------------------------------
    # Detector pruning
    # ------------------------------------------------------------------
    def applicable_detectors(
        self, dataset: BenchmarkDataset, with_ground_truth: bool = True
    ) -> List[Detector]:
        """Detectors worth running on this dataset (with reasons applied).

        ``with_ground_truth=False`` models the production setting (no
        oracle): the ML-supported detectors that require annotator labels
        (RAHA, ED2, Meta) are pruned; self-supervised Picket survives.
        """
        return [
            detector
            for detector in self.detectors
            if self._detector_applies(detector, dataset, with_ground_truth)
        ]

    def _detector_applies(
        self,
        detector: Detector,
        dataset: BenchmarkDataset,
        has_oracle: bool = True,
    ) -> bool:
        name = detector.name
        error_types = dataset.error_types
        # Runtime quarantine (circuit breaker tripped earlier in the run).
        if self.breaker is not None and self.breaker.is_quarantined(name):
            return False
        # Signal requirements.
        if name == "KATARA" and dataset.knowledge_base is None:
            return False
        if name == "NADEEF" and not (
            dataset.fds or dataset.constraints or dataset.patterns
        ):
            return False
        if name == "KeyCollision" and not dataset.key_columns:
            return False
        if name == "CleanLab" and (
            dataset.task != "classification" or dataset.target is None
        ):
            return False
        # Error-type pruning for specialised detectors.
        if "holistic" not in detector.tackles:
            if name in ("SD", "IQR", "IF", "dBoost") and not (
                error_types & _OUTLIER_LIKE
            ):
                return False
            if name == "MVD" and profile.MISSING not in error_types:
                return False
            if name == "FAHES" and profile.IMPLICIT_MISSING not in error_types:
                return False
            if name in ("KeyCollision", "ZeroER") and (
                profile.DUPLICATE not in error_types
            ):
                return False
            if name == "CleanLab" and profile.MISLABEL not in error_types:
                return False
        # Capability boundaries (Section 6.5).
        if name in ("RAHA", "ED2", "Meta"):
            if profile.DUPLICATE in error_types:
                return False  # ground-truth alignment breaks with duplicates
            if not has_oracle:
                return False
        if name == "Picket" and dataset.dirty.n_rows > self.picket_max_rows:
            return False  # memory faults on large data
        return True

    # ------------------------------------------------------------------
    # Repair pruning
    # ------------------------------------------------------------------
    def applicable_repairs(
        self, dataset: BenchmarkDataset
    ) -> List[Union[RepairMethod, MLOrientedRepair]]:
        return [
            method
            for method in self.repairs
            if self._repair_applies(method, dataset)
        ]

    def _repair_applies(
        self,
        method: Union[RepairMethod, MLOrientedRepair],
        dataset: BenchmarkDataset,
    ) -> bool:
        name = method.name
        if self.breaker is not None and self.breaker.is_quarantined(name):
            return False
        if name == "CleanLab":
            return (
                dataset.task == "classification"
                and profile.MISLABEL in dataset.error_types
            )
        if name in ("ActiveClean", "BoostClean", "CPClean"):
            if dataset.task != "classification" or dataset.target is None:
                return False
            if name in ("BoostClean", "CPClean"):
                labels = {
                    str(v).strip()
                    for v in dataset.clean.column(dataset.target)
                }
                if len(labels) != 2:
                    return False  # multi-class limitation
        if name == "OpenRefine":
            return bool(dataset.clean.schema.categorical_names)
        if name == "HoloClean":
            # HoloClean needs constraints or categorical context.
            return bool(
                dataset.fds
                or dataset.constraints
                or dataset.clean.schema.categorical_names
                or dataset.clean.schema.numerical_names
            )
        return True

    # ------------------------------------------------------------------
    def experiment_plan(self, dataset: BenchmarkDataset) -> Dict[str, List[str]]:
        """Names of the detectors and repairs the controller would run."""
        return {
            "detectors": [d.name for d in self.applicable_detectors(dataset)],
            "repairs": [r.name for r in self.applicable_repairs(dataset)],
            "quarantined": sorted(self.quarantined_methods()),
        }
