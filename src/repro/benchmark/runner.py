"""Experiment runner: the evaluation module of Figure 1.

Provides the three experiment stages as composable functions --

- :func:`run_detection_suite`: every applicable detector on a dataset,
  scored with P/R/F1 + IoU + runtime (Figure 2);
- :func:`run_repair_suite`: detector x repair grid producing repaired
  versions scored with categorical P/R/F1 and numerical RMSE (Figures 4-5);
- :func:`evaluate_scenarios`: ML models trained/tested on the version
  pairs of Table 3's scenarios, repeated over seeds, with the Wilcoxon
  A/B decision between any two scenarios (Figure 7).

Each suite is expressed as an :class:`~repro.parallel.ExecutionPlan` over
independent units (the same units the checkpoint layer keys by) and run
through :func:`~repro.parallel.execute_plan` -- serially by default, or
sharded across worker processes when an ``executor`` is supplied.  The
driver merges completed units in canonical order and replays
circuit-breaker bookkeeping there, so results are identical for any
executor and any completion order.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.datagen.benchmark_dataset import BenchmarkDataset
from repro.dataset.encoding import TableEncoder, encode_supervised
from repro.dataset.splits import train_test_split
from repro.dataset.table import Cell, Table
from repro.detectors.base import BlockwiseDetector, DetectionResult, Detector
from repro.metrics.detection import DetectionScores, detection_scores, iou_matrix
from repro.metrics.model import f1_score, rmse, silhouette_score
from repro.metrics.repair import repair_rmse, repair_scores_categorical
from repro.metrics.stats import WilcoxonResult, wilcoxon_signed_rank
from repro.benchmark.scenarios import Scenario, scenario as get_scenario
from repro.ml.model_zoo import build_model, get_spec
from repro.observability.telemetry import current_telemetry, telemetry_scope
from repro.parallel.engine import block_spans, execute_plan, execute_plan_blocked
from repro.parallel.plan import ExecutionPlan, StageAdapter, UnitSpec
from repro.repair.base import MLOrientedRepair, RepairMethod, RepairResult
from repro.repository.store import nan_guard
from repro.resilience.checkpoint import (
    SuiteCheckpoint,
    scores_from_payload,
    scores_to_payload,
    table_from_payload,
    table_to_payload,
    unit_key,
)
from repro.resilience.deadline import Deadline
from repro.resilience.failures import FailureRecord
from repro.resilience.guards import CircuitBreaker, RetryPolicy, guarded_call
from repro.resilience.validation import validate_repair_result


def _run_staged_plan(
    plan: ExecutionPlan,
    telemetry,
    executor,
    checkpoint,
    breaker,
    blocks: Optional[Dict[int, List[Tuple[int, int]]]] = None,
    merge_blocks=None,
    **stage_attrs: Any,
) -> List[Any]:
    """Drive one stage plan, bracketed by a telemetry stage span.

    ``telemetry=None`` falls back to the installed current telemetry; if
    none is installed either, this is exactly the bare
    :func:`execute_plan` call (zero observability cost).  The scope is
    re-entrant, so callers that already installed the same telemetry
    (the CLI's suite span) compose cleanly.

    With ``blocks``/``merge_blocks`` set, the plan runs in the engine's
    ``(unit x row-block)`` sharding mode instead
    (:func:`~repro.parallel.engine.execute_plan_blocked`).
    """

    def drive(active_telemetry) -> List[Any]:
        if blocks:
            return execute_plan_blocked(
                plan,
                blocks,
                merge_blocks,
                executor=executor,
                checkpoint=checkpoint,
                breaker=breaker,
                telemetry=active_telemetry,
            )
        return execute_plan(
            plan,
            executor=executor,
            checkpoint=checkpoint,
            breaker=breaker,
            telemetry=active_telemetry,
        )

    telemetry = telemetry if telemetry is not None else current_telemetry()
    if telemetry is None:
        return drive(None)
    with telemetry_scope(telemetry):
        with telemetry.stage(
            plan.adapter.stage, units=len(plan.units), **stage_attrs
        ):
            return drive(telemetry)


# ----------------------------------------------------------------------
# Detection stage
# ----------------------------------------------------------------------
@dataclass
class DetectionRun:
    """One detector's output and its scores on one dataset.

    ``failure_record`` carries the structured taxonomy entry for failed
    runs; ``failed``/``failure`` keep the legacy flag/string view of it.
    """

    detector: str
    result: DetectionResult
    scores: DetectionScores
    failed: bool = False
    failure: str = ""
    failure_record: Optional[FailureRecord] = None

    def to_payload(self) -> Dict[str, Any]:
        """Canonical JSON payload for checkpointing."""
        return {
            "detector": self.detector,
            "cells": sorted([int(r), str(c)] for r, c in self.result.cells),
            "runtime_seconds": self.result.runtime_seconds,
            "scores": scores_to_payload(self.scores),
            "failure_record": (
                self.failure_record.to_payload()
                if self.failure_record is not None
                else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "DetectionRun":
        record = (
            FailureRecord.from_payload(payload["failure_record"])
            if payload["failure_record"] is not None
            else None
        )
        result = DetectionResult(
            payload["detector"],
            frozenset((int(r), str(c)) for r, c in payload["cells"]),
            payload["runtime_seconds"],
        )
        return cls(
            payload["detector"],
            result,
            scores_from_payload(payload["scores"]),
            failed=record is not None,
            failure=record.describe() if record is not None else "",
            failure_record=record,
        )


def _failed_detection_run(
    dataset: BenchmarkDataset, record: FailureRecord
) -> DetectionRun:
    """Book a detection failure with honest elapsed runtime.

    Crashed tools used to report ``runtime=0.0``, which under-reported
    them in Figure-2-style runtime panels; the guard's elapsed time (up
    to and including the failing attempt) is the honest figure.
    """
    empty = DetectionResult(
        record.method, frozenset(), record.elapsed_seconds
    )
    return DetectionRun(
        record.method,
        empty,
        detection_scores(set(), dataset.error_cells),
        failed=True,
        failure=record.describe(),
        failure_record=record,
    )


@dataclass(frozen=True)
class _DetectionShared:
    """Per-suite context shipped to every detection unit (picklable).

    ``profiles``/``profile_seconds`` are populated only for blocked
    runs: position-aligned whole-table fit results (and their fit times)
    for blockwise detectors, ``None``/``0.0`` elsewhere.
    """

    dataset: BenchmarkDataset
    detectors: Tuple[Detector, ...]
    seed: int
    deadline_seconds: Optional[float]
    retry: Optional[RetryPolicy]
    clock: Optional[Callable[[], float]]
    sleep: Callable[[float], None]
    profiles: Tuple[Any, ...] = ()
    profile_seconds: Tuple[float, ...] = ()


def _unit_deadline(shared) -> Optional[Deadline]:
    """Fresh per-unit deadline carrying the suite's budget and clock."""
    if shared.deadline_seconds is None:
        return None
    return Deadline(
        shared.deadline_seconds, clock=shared.clock or time.monotonic
    )


def _execute_detection_unit(
    shared: _DetectionShared, spec: UnitSpec
) -> DetectionRun:
    span = spec.params.get("block")
    if span is not None:
        return _execute_detection_block(shared, spec, span)
    detector = shared.detectors[spec.params["position"]]
    deadline = _unit_deadline(shared)
    context = shared.dataset.context(
        seed=shared.seed, deadline=deadline, clock=shared.clock
    )
    guarded = guarded_call(
        lambda: detector.detect(context),
        method=detector.name,
        stage="detection",
        deadline=deadline,
        retry=shared.retry,
        clock=shared.clock,
        sleep=shared.sleep,
        dataset=shared.dataset.name,
        seed=shared.seed,
    )
    if guarded.ok:
        result = guarded.value
        return DetectionRun(
            detector.name,
            result,
            detection_scores(result.cells, shared.dataset.error_cells),
        )
    return _failed_detection_run(shared.dataset, guarded.failure)


def _execute_detection_block(
    shared: _DetectionShared, spec: UnitSpec, span: Tuple[int, int]
) -> DetectionRun:
    """Run one detector on one row block (a blocked sub-unit).

    The block run's cells carry global row indices; its scores are the
    block's own partial view (the merged run recomputes scores from the
    union, which is what the suite reports).
    """
    position = spec.params["position"]
    detector = shared.detectors[position]
    fitted = shared.profiles[position]
    deadline = _unit_deadline(shared)
    context = shared.dataset.context(
        seed=shared.seed, deadline=deadline, clock=shared.clock
    )
    start, stop = int(span[0]), int(span[1])
    block = context.dirty.block_view(start, stop)
    guarded = guarded_call(
        lambda: detector.detect_block(context, fitted, block, start),
        method=detector.name,
        stage="detection",
        deadline=deadline,
        retry=shared.retry,
        clock=shared.clock,
        sleep=shared.sleep,
        dataset=shared.dataset.name,
        seed=shared.seed,
    )
    if guarded.ok:
        result = guarded.value
        return DetectionRun(
            detector.name,
            result,
            detection_scores(result.cells, shared.dataset.error_cells),
        )
    return _failed_detection_run(shared.dataset, guarded.failure)


def _merge_detection_blocks(
    shared: _DetectionShared, spec: UnitSpec, runs: List[DetectionRun]
) -> DetectionRun:
    """Fold one blocked unit's block runs into the whole-unit run.

    Cells are the union of block cells (disjoint by construction) and
    scores are recomputed from that union, so the merged run's cells and
    scores are byte-identical to the unblocked run's.  Runtime is the
    honest total: profile fit seconds plus the sum of block detect
    seconds.  A failed block fails the unit with the first (canonical
    block order) failure record, mirroring how a whole-table run dies on
    the first block it would have reached.
    """
    position = spec.params["position"]
    detector = shared.detectors[position]
    runtime = shared.profile_seconds[position] + sum(
        run.result.runtime_seconds for run in runs
    )
    failed = next((run for run in runs if run.failed), None)
    if failed is not None:
        record = failed.failure_record
        empty = DetectionResult(detector.name, frozenset(), runtime)
        return DetectionRun(
            detector.name,
            empty,
            detection_scores(set(), shared.dataset.error_cells),
            failed=True,
            failure=record.describe() if record is not None else "",
            failure_record=record,
        )
    cells: Set[Cell] = set()
    for run in runs:
        cells.update(run.result.cells)
    result = DetectionResult(detector.name, frozenset(cells), runtime)
    return DetectionRun(
        detector.name,
        result,
        detection_scores(result.cells, shared.dataset.error_cells),
    )


def _detection_quarantine_run(
    shared: _DetectionShared, spec: UnitSpec, reason: str
) -> DetectionRun:
    record = FailureRecord.quarantine_skip(
        spec.method,
        "detection",
        reason,
        dataset=shared.dataset.name,
        seed=shared.seed,
    )
    return _failed_detection_run(shared.dataset, record)


def _run_failure_record(run) -> Optional[FailureRecord]:
    return run.failure_record


def _detection_runtime(run: DetectionRun) -> float:
    """Honest per-unit runtime (failed runs carry guard elapsed time)."""
    return run.result.runtime_seconds


_DETECTION_ADAPTER = StageAdapter(
    stage="detection",
    execute=_execute_detection_unit,
    to_payload=DetectionRun.to_payload,
    from_payload=DetectionRun.from_payload,
    quarantine_skip=_detection_quarantine_run,
    failure_of=_run_failure_record,
    runtime_of=_detection_runtime,
)


def run_detection_suite(
    dataset: BenchmarkDataset,
    detectors: Sequence[Detector],
    seed: int = 0,
    deadline_seconds: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    checkpoint: Optional[SuiteCheckpoint] = None,
    clock: Optional[Callable[[], float]] = None,
    sleep: Callable[[float], None] = time.sleep,
    executor=None,
    telemetry=None,
    block_rows: Optional[int] = None,
) -> List[DetectionRun]:
    """Run each detector on the dataset; failures are recorded, not fatal.

    Detectors that crash (e.g. Picket's memory boundary) appear in the
    output flagged ``failed`` with a categorized ``failure_record`` --
    the paper likewise reports tools that "stopped working" at certain
    sizes rather than hiding them.  Each detector runs under
    :func:`~repro.resilience.guards.guarded_call` with an optional
    per-detector wall-clock ``deadline_seconds`` budget, transient-retry
    policy, and circuit ``breaker`` whose quarantined methods are skipped
    with a recorded reason.  With a ``checkpoint``, completed detectors
    are loaded from the store instead of re-executed.  ``executor``
    selects the execution engine (None = serial reference; see
    :mod:`repro.parallel` for the process-pool engine) -- results are
    identical either way.  ``telemetry`` (or an installed telemetry
    scope) records a stage span, per-unit spans/metrics, and ledger
    events without perturbing any result.

    ``block_rows`` turns on ``(unit x row-block)`` sharding for the
    detectors that support it (:class:`BlockwiseDetector`): their
    whole-table profiles are fitted once up front, inference streams
    over zero-copy row blocks, and the per-unit cells and scores are
    byte-identical to the unblocked run.  Detectors without blockwise
    support run whole-table in the same plan.  A blockwise detector
    whose profile fit fails falls back to whole-table execution, where
    the guard records the failure through the ordinary taxonomy.
    """
    detectors = tuple(detectors)
    profiles: Tuple[Any, ...] = ()
    profile_seconds: Tuple[float, ...] = ()
    blocks: Dict[int, List[Tuple[int, int]]] = {}
    if block_rows is not None:
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        fit_clock = clock or time.perf_counter
        fit_context = dataset.context(seed=seed, clock=clock)
        fitted: List[Any] = []
        fit_times: List[float] = []
        spans = block_spans(dataset.dirty.n_rows, block_rows)
        for index, detector in enumerate(detectors):
            if not isinstance(detector, BlockwiseDetector):
                fitted.append(None)
                fit_times.append(0.0)
                continue
            started = fit_clock()
            guarded = guarded_call(
                lambda d=detector: d.fit_profile(fit_context),
                method=detector.name,
                stage="detection",
                retry=retry,
                clock=clock,
                sleep=sleep,
                dataset=dataset.name,
                seed=seed,
            )
            fit_times.append(fit_clock() - started)
            if guarded.ok:
                fitted.append(guarded.value)
                blocks[index] = spans
            else:
                fitted.append(None)
        profiles = tuple(fitted)
        profile_seconds = tuple(fit_times)
    shared = _DetectionShared(
        dataset,
        detectors,
        seed,
        deadline_seconds,
        retry,
        clock,
        sleep,
        profiles=profiles,
        profile_seconds=profile_seconds,
    )
    units = [
        UnitSpec(
            index,
            unit_key(
                "detection", dataset.name, detector=detector.name, seed=seed
            ),
            detector.name,
            {"position": index},
        )
        for index, detector in enumerate(detectors)
    ]
    plan = ExecutionPlan(_DETECTION_ADAPTER, shared, units)
    stage_attrs: Dict[str, Any] = {"dataset": dataset.name}
    if block_rows is not None:
        stage_attrs["block_rows"] = block_rows
    return _run_staged_plan(
        plan,
        telemetry,
        executor,
        checkpoint,
        breaker,
        blocks=blocks or None,
        merge_blocks=(
            (lambda spec, runs: _merge_detection_blocks(shared, spec, runs))
            if blocks
            else None
        ),
        **stage_attrs,
    )


def detection_iou(
    runs: Sequence[DetectionRun], dataset: BenchmarkDataset
) -> Tuple[List[str], List[List[float]]]:
    """Pairwise IoU over true positives (Figures 2b/2e/...)."""
    detections = {
        run.detector: set(run.result.cells) for run in runs if not run.failed
    }
    return iou_matrix(detections, dataset.error_cells)


# ----------------------------------------------------------------------
# Repair stage
# ----------------------------------------------------------------------
@dataclass
class RepairRun:
    """One (detector, repair) combination's scores."""

    detector: str
    repair: str
    result: Optional[RepairResult]
    categorical_f1: float = math.nan
    categorical_precision: float = math.nan
    categorical_recall: float = math.nan
    numerical_rmse: float = math.nan
    failed: bool = False
    failure: str = ""
    failure_record: Optional[FailureRecord] = None

    @property
    def strategy(self) -> str:
        return f"{self.detector}+{self.repair}"

    def to_payload(self) -> Dict[str, Any]:
        """Canonical JSON payload for checkpointing."""
        result_payload = None
        if self.result is not None:
            result_payload = {
                "method": self.result.method,
                "repaired": table_to_payload(self.result.repaired),
                "runtime_seconds": self.result.runtime_seconds,
                "metadata": _jsonable_metadata(self.result.metadata),
            }
        return {
            "detector": self.detector,
            "repair": self.repair,
            "result": result_payload,
            "categorical_f1": self.categorical_f1,
            "categorical_precision": self.categorical_precision,
            "categorical_recall": self.categorical_recall,
            "numerical_rmse": self.numerical_rmse,
            "failure_record": (
                self.failure_record.to_payload()
                if self.failure_record is not None
                else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RepairRun":
        record = (
            FailureRecord.from_payload(payload["failure_record"])
            if payload["failure_record"] is not None
            else None
        )
        result = None
        if payload["result"] is not None:
            result = RepairResult(
                payload["result"]["method"],
                table_from_payload(payload["result"]["repaired"]),
                payload["result"]["runtime_seconds"],
                payload["result"]["metadata"],
            )
        return cls(
            payload["detector"],
            payload["repair"],
            result,
            categorical_f1=nan_guard(payload["categorical_f1"]),
            categorical_precision=nan_guard(payload["categorical_precision"]),
            categorical_recall=nan_guard(payload["categorical_recall"]),
            numerical_rmse=nan_guard(payload["numerical_rmse"]),
            failed=record is not None,
            failure=record.describe() if record is not None else "",
            failure_record=record,
        )


def _jsonable_metadata(metadata: Dict[str, Any]) -> Dict[str, Any]:
    """Keep only JSON-round-trippable metadata entries (checkpointing)."""
    kept: Dict[str, Any] = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        kept[key] = value
    return kept


def _score_repair_run(run: RepairRun, dataset: BenchmarkDataset) -> None:
    """Fill in the categorical / numerical repair scores in place."""
    assert run.result is not None
    repaired = run.result.repaired
    if repaired.n_rows == dataset.clean.n_rows:
        if dataset.clean.schema.categorical_names:
            scores = repair_scores_categorical(
                dataset.dirty, repaired, dataset.clean, dataset.error_cells
            )
            run.categorical_f1 = scores.f1
            run.categorical_precision = scores.precision
            run.categorical_recall = scores.recall
        if dataset.clean.schema.numerical_names:
            run.numerical_rmse = repair_rmse(repaired, dataset.clean)


@dataclass(frozen=True)
class _RepairShared:
    """Per-suite context shipped to every repair unit (picklable).

    ``detections`` maps detector name -> *sorted tuple* of flagged cells;
    tuples keep pickling cheap and give every worker process the same
    canonical iteration order regardless of hash seed.
    """

    dataset: BenchmarkDataset
    repairs: Tuple[RepairMethod, ...]
    detections: Dict[str, Tuple[Cell, ...]]
    seed: int
    deadline_seconds: Optional[float]
    retry: Optional[RetryPolicy]
    clock: Optional[Callable[[], float]]
    sleep: Callable[[float], None]


def _execute_repair_unit(shared: _RepairShared, spec: UnitSpec) -> RepairRun:
    detector_name = spec.params["detector"]
    method = shared.repairs[spec.params["position"]]
    # Rebuild the set by sorted insertion so iteration order is canonical
    # in every worker process.
    cells: Set[Cell] = set()
    for cell in shared.detections[detector_name]:
        cells.add(cell)
    deadline = _unit_deadline(shared)
    context = shared.dataset.context(
        seed=shared.seed, deadline=deadline, clock=shared.clock
    )

    def attempt() -> RepairResult:
        result = method.repair(context, cells)
        validate_repair_result(result, shared.dataset.dirty, cells)
        return result

    guarded = guarded_call(
        attempt,
        method=method.name,
        stage="repair",
        deadline=deadline,
        retry=shared.retry,
        clock=shared.clock,
        sleep=shared.sleep,
        dataset=shared.dataset.name,
        detector=detector_name,
        seed=shared.seed,
    )
    if guarded.ok:
        run = RepairRun(detector_name, method.name, guarded.value)
        _score_repair_run(run, shared.dataset)
        return run
    record = guarded.failure
    return RepairRun(
        detector_name,
        method.name,
        None,
        failed=True,
        failure=record.describe(),
        failure_record=record,
    )


def _repair_quarantine_run(
    shared: _RepairShared, spec: UnitSpec, reason: str
) -> RepairRun:
    record = FailureRecord.quarantine_skip(
        spec.method,
        "repair",
        reason,
        dataset=shared.dataset.name,
        detector=spec.params["detector"],
        seed=shared.seed,
    )
    return RepairRun(
        spec.params["detector"],
        spec.method,
        None,
        failed=True,
        failure=record.describe(),
        failure_record=record,
    )


def _repair_runtime(run: RepairRun) -> Optional[float]:
    """Repair runtime; failed units report the guard's elapsed time."""
    if run.result is not None:
        return run.result.runtime_seconds
    if run.failure_record is not None:
        return run.failure_record.elapsed_seconds
    return None


_REPAIR_ADAPTER = StageAdapter(
    stage="repair",
    execute=_execute_repair_unit,
    to_payload=RepairRun.to_payload,
    from_payload=RepairRun.from_payload,
    quarantine_skip=_repair_quarantine_run,
    failure_of=_run_failure_record,
    runtime_of=_repair_runtime,
)


def run_repair_suite(
    dataset: BenchmarkDataset,
    detections_by_detector: Dict[str, Set[Cell]],
    repairs: Sequence[RepairMethod],
    seed: int = 0,
    deadline_seconds: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    checkpoint: Optional[SuiteCheckpoint] = None,
    clock: Optional[Callable[[], float]] = None,
    sleep: Callable[[float], None] = time.sleep,
    executor=None,
    telemetry=None,
) -> List[RepairRun]:
    """Score every (detector, repair) combination on the dataset.

    Each combination runs under the same guards as the detection suite
    (deadline / retry / quarantine / checkpoint).  Repair outputs are
    additionally structure-validated: a misaligned or NaN-flooded table
    books a ``data``-category failure instead of being scored.
    ``executor`` selects the execution engine (None = serial reference);
    ``telemetry`` observes the stage without perturbing results.
    """
    repairs = tuple(repairs)
    shared = _RepairShared(
        dataset,
        repairs,
        {
            name: tuple(sorted(cells))
            for name, cells in detections_by_detector.items()
        },
        seed,
        deadline_seconds,
        retry,
        clock,
        sleep,
    )
    units = []
    for detector_name in sorted(detections_by_detector):
        for position, method in enumerate(repairs):
            units.append(
                UnitSpec(
                    len(units),
                    unit_key(
                        "repair",
                        dataset.name,
                        detector=detector_name,
                        repair=method.name,
                        seed=seed,
                    ),
                    method.name,
                    {"detector": detector_name, "position": position},
                )
            )
    plan = ExecutionPlan(_REPAIR_ADAPTER, shared, units)
    return _run_staged_plan(
        plan, telemetry, executor, checkpoint, breaker, dataset=dataset.name
    )


# ----------------------------------------------------------------------
# Modeling stage (scenarios)
# ----------------------------------------------------------------------
def estimate_n_clusters(
    features: np.ndarray, k_max: int = 8, seed: int = 0
) -> int:
    """Pick k by the Silhouette index (Section 6.1's clustering setup)."""
    from repro.ml.cluster import KMeans

    best_k, best_score = 2, -np.inf
    for k in range(2, min(k_max, len(features) - 1) + 1):
        model = KMeans(n_clusters=k, n_init=1, seed=seed)
        labels = model.fit_predict(features)
        score = silhouette_score(features, labels)
        if score > best_score:
            best_k, best_score = k, score
    return best_k


def _aligned_rows(
    variant: Table, clean: Table, kept_rows: Optional[Sequence[int]]
) -> Optional[Dict[int, int]]:
    """Map original row index -> variant row index, or None if unaligned."""
    if variant.n_rows == clean.n_rows:
        return {i: i for i in range(clean.n_rows)}
    if kept_rows is not None and len(kept_rows) == variant.n_rows:
        return {int(original): k for k, original in enumerate(kept_rows)}
    return None


def run_scenario(
    scenario: Union[str, Scenario],
    variant_table: Table,
    dataset: BenchmarkDataset,
    model_name: str,
    seed: int = 0,
    test_fraction: float = 0.25,
    kept_rows: Optional[Sequence[int]] = None,
    model_params: Optional[Dict[str, object]] = None,
    sample_rows: Optional[int] = None,
    tune_trials: Optional[int] = None,
) -> float:
    """Train/test one model under one scenario; return its metric.

    Returns macro-F1 (classification), RMSE (regression), or the Silhouette
    index (clustering).  ``kept_rows`` maps a shorter variant (Delete
    repair) back to the aligned ground-truth indices so train/test splits
    stay leakage-free.  ``sample_rows`` optionally subsamples for speed.
    ``tune_trials`` enables the paper's per-model hyperparameter search
    (the Optuna analogue) over an inner holdout of the training data
    before the final fit; None uses the zoo defaults.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    task = dataset.task
    if task is None:
        raise ValueError(f"dataset {dataset.name} has no associated ML task")
    clean = dataset.clean
    rng = np.random.default_rng(seed)
    if task == "clustering":
        train_table, _ = scenario.versions(variant_table, clean)
        encoder = TableEncoder()
        features = encoder.fit_transform(train_table)
        if sample_rows is not None and len(features) > sample_rows:
            picks = rng.choice(len(features), size=sample_rows, replace=False)
            features = features[picks]
        if tune_trials is not None and tune_trials > 0:
            raise ValueError(
                "tune_trials is not supported for clustering models; "
                "the cluster count is chosen by the Silhouette sweep"
            )
        spec = get_spec("clustering", model_name)
        params = dict(model_params or {})
        cluster_dims = [
            dim
            for dim in ("n_clusters", "n_components")
            if dim in spec.space.dimensions and dim not in params
        ]
        if cluster_dims:
            # One Silhouette sweep feeds every cluster-count dimension --
            # specs declaring both n_clusters and n_components used to pay
            # for the identical sweep twice.
            estimated = estimate_n_clusters(features, seed=seed)
            for dim in cluster_dims:
                params[dim] = estimated
        model = spec.build(**params)
        labels = model.fit_predict(features)
        return silhouette_score(features, labels)

    target = dataset.target
    assert target is not None
    mapping = _aligned_rows(variant_table, clean, kept_rows)
    stratify = None
    if task == "classification":
        stratify = [str(v) for v in clean.column(target)]
    train_idx, test_idx = train_test_split(
        clean.n_rows, test_fraction, rng=rng, stratify=stratify
    )
    if sample_rows is not None and len(train_idx) > sample_rows:
        train_idx = rng.choice(train_idx, size=sample_rows, replace=False)

    def resolve(table: Table, indices: np.ndarray) -> Table:
        if table is clean:
            return clean.select_rows(indices)
        if mapping is None:
            # Unaligned variant without kept_rows: fall back to its own rows.
            own = [i for i in indices if i < table.n_rows]
            return table.select_rows(own)
        rows = [mapping[int(i)] for i in indices if int(i) in mapping]
        return table.select_rows(rows)

    train_version, test_version = scenario.versions(variant_table, clean)
    train_table = resolve(train_version, train_idx)
    test_table = resolve(test_version, test_idx)
    if train_table.n_rows < 5 or test_table.n_rows < 2:
        return math.nan
    supervised_task = task
    x_train, y_train, x_test, y_test, _ = encode_supervised(
        train_table, test_table, target, supervised_task
    )
    if tune_trials is not None and tune_trials > 0:
        model = _tuned_model(
            task, model_name, x_train, y_train, tune_trials, seed
        )
    else:
        model = build_model(task, model_name, **(model_params or {}))
        model.fit(x_train, y_train)
    predictions = model.predict(x_test)
    if task == "classification":
        return f1_score(y_test, predictions)
    return rmse(y_test, predictions)


def _tuned_model(
    task: str,
    model_name: str,
    x_train: np.ndarray,
    y_train: np.ndarray,
    n_trials: int,
    seed: int,
):
    """Hyperparameter-tune a zoo model on an inner holdout, then refit.

    This is where REIN plugs Optuna in (Section 4); we use the TPE-style
    study of :mod:`repro.tuning` with the model's declared search space.
    """
    from repro.tuning.search import tune_estimator

    spec = get_spec(task, model_name)
    inner_train, inner_valid = train_test_split(
        len(x_train), 0.25, seed=seed
    )
    model, _ = tune_estimator(
        spec.build,
        spec.space,
        x_train[inner_train],
        y_train[inner_train],
        x_train[inner_valid],
        y_train[inner_valid],
        n_trials=n_trials,
        seed=seed,
    )
    # Refit the winning configuration on the full training split
    # (spec.build drops placeholder "_"-prefixed dimensions).
    winner = spec.build(**model.get_params())
    winner.fit(x_train, y_train)
    return winner


@dataclass
class ScenarioEvaluation:
    """Per-scenario score lists for one (variant, model) pair.

    ``failures`` explains every NaN score: it maps scenario name to
    ``{seed: FailureRecord}`` for the seeds whose run raised, so reports
    can say *why* a score is missing instead of showing an anonymous NaN.
    """

    dataset: str
    variant: str
    model: str
    scores: Dict[str, List[float]] = field(default_factory=dict)
    failures: Dict[str, Dict[int, FailureRecord]] = field(default_factory=dict)

    def mean(self, scenario_name: str) -> float:
        values = [v for v in self.scores.get(scenario_name, []) if not math.isnan(v)]
        return float(np.mean(values)) if values else math.nan

    def std(self, scenario_name: str) -> float:
        values = [v for v in self.scores.get(scenario_name, []) if not math.isnan(v)]
        return float(np.std(values)) if values else math.nan

    def ab_test(self, first: str = "S1", second: str = "S4") -> WilcoxonResult:
        """Wilcoxon signed-rank A/B test between two scenarios.

        Seeds where either run failed (NaN score) are dropped pairwise --
        one crashed S4 seed must not poison the whole statistic -- and the
        returned ``n_effective`` counts surviving pairs only.  Unknown
        scenario names raise :class:`ValueError` naming the evaluated
        scenarios, as does a comparison with no complete pairs left.
        """
        for name in (first, second):
            if name not in self.scores:
                known = ", ".join(sorted(self.scores)) or "none"
                raise ValueError(
                    f"unknown scenario {name!r}; evaluated scenarios: {known}"
                )
        pairs = [
            (a, b)
            for a, b in zip(self.scores[first], self.scores[second])
            if not (math.isnan(a) or math.isnan(b))
        ]
        if not pairs:
            raise ValueError(
                f"no complete score pairs between {first!r} and {second!r}: "
                "every seed failed in at least one of the two scenarios"
            )
        return wilcoxon_signed_rank(
            [a for a, _ in pairs], [b for _, b in pairs]
        )

    def record_failure(
        self, scenario_name: str, seed: int, record: FailureRecord
    ) -> None:
        self.failures.setdefault(scenario_name, {})[seed] = record

    def failure_reason(self, scenario_name: str, seed: int) -> str:
        """Human-readable reason a (scenario, seed) score is missing."""
        record = self.failures.get(scenario_name, {}).get(seed)
        return record.describe() if record is not None else ""

    def failure_summary(self) -> List[str]:
        """One line per failed (scenario, seed) run, sorted."""
        lines = []
        for name in sorted(self.failures):
            for seed in sorted(self.failures[name]):
                record = self.failures[name][seed]
                lines.append(
                    f"{name} seed={seed}: [{record.category}] "
                    f"{record.describe()}"
                )
        return lines


@dataclass(frozen=True)
class _ScenarioShared:
    """Per-evaluation context shipped to every (scenario, seed) unit."""

    dataset: BenchmarkDataset
    variant_table: Table
    variant_name: str
    model_name: str
    kept_rows: Optional[Tuple[int, ...]]
    sample_rows: Optional[int]
    deadline_seconds: Optional[float]
    retry: Optional[RetryPolicy]
    clock: Optional[Callable[[], float]]
    sleep: Callable[[float], None]


def _execute_scenario_unit(
    shared: _ScenarioShared, spec: UnitSpec
) -> Dict[str, Any]:
    name = spec.params["scenario"]
    seed = spec.params["seed"]
    deadline = _unit_deadline(shared)
    guarded = guarded_call(
        lambda: run_scenario(
            name,
            shared.variant_table,
            shared.dataset,
            shared.model_name,
            seed=seed,
            kept_rows=shared.kept_rows,
            sample_rows=shared.sample_rows,
        ),
        method=f"{shared.variant_name}:{shared.model_name}",
        stage="model",
        deadline=deadline,
        retry=shared.retry,
        clock=shared.clock,
        sleep=shared.sleep,
        dataset=shared.dataset.name,
        scenario=name,
        seed=seed,
    )
    if guarded.ok:
        return {"value": guarded.value, "failure_record": None}
    return {"value": math.nan, "failure_record": guarded.failure}


def _scenario_quarantine_run(
    shared: _ScenarioShared, spec: UnitSpec, reason: str
) -> Dict[str, Any]:
    record = FailureRecord.quarantine_skip(
        spec.method,
        "model",
        reason,
        dataset=shared.dataset.name,
        scenario=spec.params["scenario"],
        seed=spec.params["seed"],
    )
    return {"value": math.nan, "failure_record": record}


def _scenario_run_to_payload(run: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "value": run["value"],
        "failure_record": (
            run["failure_record"].to_payload()
            if run["failure_record"] is not None
            else None
        ),
    }


def _scenario_run_from_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    record = (
        FailureRecord.from_payload(payload["failure_record"])
        if payload["failure_record"] is not None
        else None
    )
    return {"value": nan_guard(payload["value"]), "failure_record": record}


def _scenario_failure_record(run: Dict[str, Any]) -> Optional[FailureRecord]:
    return run["failure_record"]


_SCENARIO_ADAPTER = StageAdapter(
    stage="model",
    execute=_execute_scenario_unit,
    to_payload=_scenario_run_to_payload,
    from_payload=_scenario_run_from_payload,
    quarantine_skip=_scenario_quarantine_run,
    failure_of=_scenario_failure_record,
)


def evaluate_scenarios(
    dataset: BenchmarkDataset,
    variant_table: Table,
    variant_name: str,
    model_name: str,
    scenario_names: Sequence[str] = ("S1", "S4"),
    n_seeds: int = 5,
    kept_rows: Optional[Sequence[int]] = None,
    sample_rows: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Optional[SuiteCheckpoint] = None,
    clock: Optional[Callable[[], float]] = None,
    sleep: Callable[[float], None] = time.sleep,
    executor=None,
    telemetry=None,
) -> ScenarioEvaluation:
    """Repeat scenario runs over seeds (the paper repeats 10x).

    A crashed (scenario, seed) run still contributes NaN to the score
    list -- but the reason is recorded as a categorized
    :class:`FailureRecord` in ``evaluation.failures`` instead of being
    silently swallowed.  With a ``checkpoint``, completed (scenario,
    seed) units are loaded from the store instead of re-executed.
    ``executor`` selects the execution engine (None = serial reference);
    ``telemetry`` observes the stage without perturbing results.
    """
    shared = _ScenarioShared(
        dataset,
        variant_table,
        variant_name,
        model_name,
        tuple(int(i) for i in kept_rows) if kept_rows is not None else None,
        sample_rows,
        deadline_seconds,
        retry,
        clock,
        sleep,
    )
    units = []
    for name in scenario_names:
        for seed in range(n_seeds):
            units.append(
                UnitSpec(
                    len(units),
                    unit_key(
                        "model",
                        dataset.name,
                        repair=variant_name,
                        model=model_name,
                        scenario=name,
                        seed=seed,
                    ),
                    f"{variant_name}:{model_name}",
                    {"scenario": name, "seed": seed},
                )
            )
    plan = ExecutionPlan(_SCENARIO_ADAPTER, shared, units)
    runs = _run_staged_plan(
        plan,
        telemetry,
        executor,
        checkpoint,
        None,
        dataset=dataset.name,
        variant=variant_name,
        model=model_name,
    )
    evaluation = ScenarioEvaluation(dataset.name, variant_name, model_name)
    for name in scenario_names:
        evaluation.scores[name] = []
    for spec, run in zip(units, runs):
        name = spec.params["scenario"]
        evaluation.scores[name].append(run["value"])
        if run["failure_record"] is not None:
            evaluation.record_failure(
                name, spec.params["seed"], run["failure_record"]
            )
    return evaluation
