"""Evaluation scenarios S1-S5 (Table 3).

A scenario names which data version feeds training and which feeds testing:

========  ==================  ==================
scenario  train version       test version
========  ==================  ==================
S1        dirty / repaired    the same version
S2        dirty / repaired    ground truth
S3        ground truth        dirty / repaired
S4        ground truth        ground truth
S5        (ML-oriented fit)   dirty
========  ==================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

DIRTY_OR_REPAIRED = "dirty_or_repaired"
GROUND_TRUTH = "ground_truth"
MODEL_OUTPUT = "model_output"


@dataclass(frozen=True)
class Scenario:
    """One Table 3 row: the (train, test) version pairing."""

    name: str
    train: str
    test: str

    def versions(self, variant_table, ground_truth_table):
        """Resolve (train_table, test_table) for a dirty/repaired variant."""
        train = (
            ground_truth_table if self.train == GROUND_TRUTH else variant_table
        )
        test = (
            ground_truth_table if self.test == GROUND_TRUTH else variant_table
        )
        return train, test


S1 = Scenario("S1", DIRTY_OR_REPAIRED, DIRTY_OR_REPAIRED)
S2 = Scenario("S2", DIRTY_OR_REPAIRED, GROUND_TRUTH)
S3 = Scenario("S3", GROUND_TRUTH, DIRTY_OR_REPAIRED)
S4 = Scenario("S4", GROUND_TRUTH, GROUND_TRUTH)
S5 = Scenario("S5", MODEL_OUTPUT, DIRTY_OR_REPAIRED)

ALL_SCENARIOS: Tuple[Scenario, ...] = (S1, S2, S3, S4, S5)


def scenario(name: str) -> Scenario:
    """Look a scenario up by name ('S1'..'S5')."""
    for candidate in ALL_SCENARIOS:
        if candidate.name == name:
            return candidate
    raise KeyError(f"unknown scenario {name!r}")
