"""Automatic cleaning-signal generation (actionable suggestion #4).

Section 6.5 recommends pairing rule-based cleaners (NADEEF, HoloClean) with
automated profilers (FDX, Metanome) so they work with minimal user
involvement.  :func:`auto_signals` implements that recommendation: given any
table it discovers FD rules, derives per-column syntactic patterns from the
dominant character shapes, and identifies candidate key columns -- the full
signal set a rule-based tool needs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

from repro.constraints.discovery import discover_fds
from repro.constraints.fd import FunctionalDependency
from repro.constraints.patterns import ColumnPattern
from repro.dataset.table import Table, is_missing


@dataclass
class AutoSignals:
    """Signals inferred from a (preferably clean-ish) sample table."""

    fds: List[FunctionalDependency] = field(default_factory=list)
    patterns: List[ColumnPattern] = field(default_factory=list)
    key_columns: List[str] = field(default_factory=list)


def _shape_regex(text: str) -> str:
    """Translate a value into a character-class regex of its shape."""
    out = []
    previous = None
    for ch in text:
        if ch.isdigit():
            token = r"\d"
        elif ch.isalpha():
            token = "[A-Za-z]" if ch.isupper() else "[a-z]"
        elif ch in ".+-":
            token = "[.+-]"
        else:
            token = r"\s" if ch.isspace() else "\\" + ch
        if token == previous:
            if not out[-1].endswith("+"):
                out[-1] += "+"
        else:
            out.append(token)
            previous = token
    return "".join(out)


def infer_column_pattern(
    table: Table, column: str, min_coverage: float = 0.9
) -> Optional[ColumnPattern]:
    """A shape regex covering at least *min_coverage* of non-missing cells.

    Returns None for columns without a dominant shape family (free text).
    """
    values = [
        str(v).strip() for v in table.column(column) if not is_missing(v)
    ]
    if len(values) < 5:
        return None
    shapes = Counter(_shape_regex(v) for v in values)
    # Greedily add shapes until coverage is reached; a pattern union of
    # more than 4 shapes means the column is effectively free-form.
    chosen: List[str] = []
    covered = 0
    for shape, count in shapes.most_common():
        chosen.append(shape)
        covered += count
        if covered / len(values) >= min_coverage:
            break
        if len(chosen) >= 4:
            return None
    regex = "|".join(f"(?:{s})" for s in chosen)
    return ColumnPattern(column, regex, name=f"shape({column})")


def infer_key_columns(table: Table, max_keys: int = 2) -> List[str]:
    """Columns whose non-missing values are (almost) all distinct."""
    keys = []
    for column in table.column_names:
        values = [
            str(v).strip()
            for v in table.column(column)
            if not is_missing(v)
        ]
        if len(values) >= 5 and len(set(values)) >= 0.99 * len(values):
            keys.append(column)
        if len(keys) >= max_keys:
            break
    return keys


def auto_signals(
    table: Table,
    max_lhs: int = 1,
    noise_tolerance: float = 0.02,
    min_pattern_coverage: float = 0.9,
) -> AutoSignals:
    """Discover FDs, patterns, and key columns from a table sample.

    Run this on a trusted sample (or accept some noise tolerance on dirty
    data) and hand the result to a :class:`~repro.context.CleaningContext`
    to drive NADEEF / HoloClean without hand-written rules.
    """
    fds = discover_fds(
        table,
        max_lhs=max_lhs,
        noise_tolerance=noise_tolerance,
        columns=table.schema.categorical_names,
    )
    patterns = []
    for column in table.schema.categorical_names:
        pattern = infer_column_pattern(table, column, min_pattern_coverage)
        if pattern is not None:
            patterns.append(pattern)
    return AutoSignals(
        fds=fds,
        patterns=patterns,
        key_columns=infer_key_columns(table),
    )
