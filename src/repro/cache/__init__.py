"""Content-addressed artifact cache for the benchmark's hot artifacts.

See :mod:`repro.cache.keys` for the key scheme and
:mod:`repro.cache.store` for the disk format, atomicity guarantees, and
the process-wide ``current_cache`` hook.
"""

from repro.cache.keys import (
    CACHE_SCHEMA_VERSION,
    artifact_key,
    canonical_cell,
    config_fingerprint,
    table_block_fingerprint,
    table_fingerprint,
)
from repro.cache.store import (
    ArtifactCache,
    CacheEntry,
    cache_scope,
    current_cache,
    install_cache,
)

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "CACHE_SCHEMA_VERSION",
    "artifact_key",
    "cache_scope",
    "canonical_cell",
    "config_fingerprint",
    "current_cache",
    "install_cache",
    "table_block_fingerprint",
    "table_fingerprint",
]
