"""Content-addressed cache keys: table and configuration fingerprints.

The benchmark grid re-encodes the same table versions dozens of times
per suite (every scenario x seed x model unit re-featurizes its train
and test splits from scratch).  To memoize those artifacts safely, each
cache entry is keyed by *content*, never by identity: a SHA-256 over the
table's schema and canonicalized cell payloads, combined with a SHA-256
over the producing configuration (encoder settings, target column,
feature-family version).  Same content -> same key -> safe reuse; any
cell or config change -> a different key -> a clean miss.

Canonical cell encoding mirrors the checkpoint store's: every explicit
missing marker (``None``, NaN, ``"NA"`` ...) maps to ``null``.  That is
deliberate -- the encoding and featurization paths treat all missing
markers identically (``is_missing`` / ``coerce_float`` / one-hot key
``None``), so tables that differ only in *which* missing marker they
carry produce byte-identical artifacts and may share a cache entry.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Sequence

import numpy as np

from repro.dataset.table import Table, is_missing

#: Bump when the key layout or canonical encodings change incompatibly.
CACHE_SCHEMA_VERSION = 1


def canonical_cell(value: Any) -> Any:
    """Reduce one cell payload to a JSON-stable canonical form.

    Missing markers collapse to ``None`` (see module docstring); numpy
    scalars map to their builtin equivalents; anything else is
    stringified, matching how the encoders consume it.
    """
    if is_missing(value):
        return None
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (bool, int, float)):
        return value
    return str(value)


def table_fingerprint(table: Table) -> str:
    """SHA-256 hex digest of a table's schema and cell contents.

    Column-by-column streaming keeps peak memory at one column's JSON;
    the digest covers column names, declared kinds, row count, and every
    canonicalized cell in order.

    The digest is memoized on the table against its mutation counter
    (every ``set_cell`` bumps it), so re-fingerprinting an unchanged
    table between artifact lookups is O(1).
    """
    token = getattr(table, "_mutation_count", None)
    memo = table.__dict__.get("_fingerprint_memo")
    if memo is not None and token is not None and memo[0] == token:
        return memo[1]
    digest = hashlib.sha256()
    header = {
        "schema": [[c.name, c.kind] for c in table.schema.columns],
        "n_rows": table.n_rows,
    }
    digest.update(
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    )
    for name in table.schema.names:
        cells = [canonical_cell(v) for v in table.column(name)]
        digest.update(
            json.dumps(cells, separators=(",", ":"), allow_nan=False).encode()
        )
    result = digest.hexdigest()
    if token is not None:
        table.__dict__["_fingerprint_memo"] = (token, result)
    return result


def table_block_fingerprint(table: Table, start: int, stop: int) -> str:
    """Content fingerprint of the row block ``[start, stop)`` of a table.

    The digest equals :func:`table_fingerprint` of the corresponding
    :meth:`~repro.dataset.table.Table.block_view`, so two blocks with
    identical schema and cell payloads share a fingerprint regardless of
    their row offsets or parent tables -- the property block-granular
    cache entries need.

    Memoization reuses the parent table's mutation counter: all block
    digests computed since the last ``set_cell`` are kept in a per-table
    memo dict keyed by ``(start, stop)`` and dropped wholesale when the
    counter moves, mirroring the whole-table ``_fingerprint_memo``.
    """
    token = getattr(table, "_mutation_count", None)
    memo = table.__dict__.get("_block_fingerprint_memo")
    if token is not None and memo is not None and memo[0] == token:
        cached = memo[1].get((start, stop))
        if cached is not None:
            return cached
    block = table.block_view(start, stop)
    result = table_fingerprint(block)
    if token is not None:
        if memo is None or memo[0] != token:
            memo = (token, {})
            table.__dict__["_block_fingerprint_memo"] = memo
        memo[1][(start, stop)] = result
    return result


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a JSON-serializable configuration mapping."""
    text = json.dumps(
        {str(k): config[k] for k in config},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(text.encode()).hexdigest()


def artifact_key(
    kind: str,
    tables: Sequence[str],
    config: Mapping[str, Any],
) -> str:
    """Canonical cache key for one artifact.

    ``kind`` names the artifact family (and should embed a version so
    kernel changes invalidate cleanly); ``tables`` are the input tables'
    :func:`table_fingerprint` digests in positional order; ``config`` is
    the producing configuration.
    """
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "tables": list(tables),
            "config": config_fingerprint(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()
