"""Disk-backed, content-addressed artifact cache with atomic writes.

One :class:`ArtifactCache` memoizes the benchmark's expensive derived
artifacts -- encoded feature matrices, fitted encoder state, detector
feature blocks -- under content-addressed keys (:mod:`repro.cache.keys`).
Entries are single ``.npz`` files holding named numpy arrays plus one
JSON metadata blob, written atomically: a writer streams into a
process-unique temporary file and ``os.replace``s it into place, so a
reader can never observe a torn entry and a crash mid-write leaves only
ignorable ``*.tmp`` debris.

That write discipline is what makes the cache safe under the process
pool without any locking: concurrent writers of the same key are, by
construction, writing byte-identical content (the key *is* the content
hash of the inputs and configuration), so whichever ``os.replace`` lands
last wins and nothing is lost.  Reads open only finalized files.

Counters (hits / misses / puts / bytes) are tracked on the cache object
and mirrored into the installed telemetry's metrics registry, so cache
behaviour shows up in ``--verbose`` summaries and, via the CLI's
``cache_summary`` event, in the run ledger.

The process-wide *current cache* hook mirrors the telemetry facade:
instrumented code asks :func:`current_cache` and computes from scratch
when the answer is ``None`` -- the zero-cost default.  Worker processes
get the driver's cache re-installed from its picklable :meth:`spec`.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import zipfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.observability.telemetry import current_telemetry


@dataclass
class CacheEntry:
    """One loaded artifact: named arrays plus a JSON metadata mapping."""

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any] = field(default_factory=dict)


class ArtifactCache:
    """Content-addressed single-directory artifact store.

    Layout: ``<root>/<key[:2]>/<key>.npz`` -- the two-hex-digit shard
    keeps directory listings short on large caches.  Keys are opaque hex
    strings produced by :func:`repro.cache.keys.artifact_key`.
    """

    _tmp_counter = itertools.count()

    def __init__(self, root: str) -> None:
        self.root = str(root)
        Path(self.root).mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Worker transport
    # ------------------------------------------------------------------
    def spec(self) -> Dict[str, Any]:
        """Picklable recipe to rebuild an equivalent cache in a worker."""
        return {"root": self.root}

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "ArtifactCache":
        return cls(spec["root"])

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return Path(self.root) / key[:2] / f"{key}.npz"

    def _tmp_path(self, key: str) -> Path:
        token = next(self._tmp_counter)
        return Path(self.root) / key[:2] / (
            f"{key}.{os.getpid()}.{token}.tmp"
        )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        """Load one entry, or None on miss (corrupt entries count as
        misses -- a torn or truncated file must never poison a run)."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
            with np.load(io.BytesIO(raw), allow_pickle=False) as bundle:
                arrays = {
                    name: bundle[name]
                    for name in bundle.files
                    if name != "__meta__"
                }
                meta_blob = bundle["__meta__"] if "__meta__" in bundle.files else None
            meta = (
                json.loads(bytes(meta_blob.tobytes()).decode("utf-8"))
                if meta_blob is not None
                else {}
            )
        except FileNotFoundError:
            self._book_miss()
            return None
        except (OSError, ValueError, KeyError, zipfile.BadZipFile,
                json.JSONDecodeError):
            self.corrupt += 1
            self._count("cache.corrupt")
            self._book_miss()
            return None
        self.hits += 1
        self.bytes_read += len(raw)
        self._count("cache.hits")
        self._count("cache.bytes_read", len(raw))
        return CacheEntry(arrays=arrays, meta=meta)

    def _book_miss(self) -> None:
        self.misses += 1
        self._count("cache.misses")

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Atomically store one entry; returns the bytes written.

        Arrays must have non-object dtypes (``np.load`` runs with
        ``allow_pickle=False`` so a cache file can never execute code).
        """
        payload: Dict[str, np.ndarray] = {}
        for name, array in (arrays or {}).items():
            array = np.asarray(array)
            if array.dtype == object:
                raise ValueError(
                    f"cache array {name!r} has object dtype; encode it "
                    "into the JSON meta instead"
                )
            payload[name] = array
        meta_text = json.dumps(
            dict(meta or {}), sort_keys=True, allow_nan=False
        )
        payload["__meta__"] = np.frombuffer(
            meta_text.encode("utf-8"), dtype=np.uint8
        )
        final = self._path(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(key)
        buffer = io.BytesIO()
        np.savez(buffer, **payload)
        blob = buffer.getvalue()
        with open(tmp, "wb") as fh:
            fh.write(blob)
        self._finalize(tmp, final)
        self.puts += 1
        self.bytes_written += len(blob)
        self._count("cache.puts")
        self._count("cache.bytes_written", len(blob))
        return len(blob)

    def _finalize(self, tmp: Path, final: Path) -> None:
        """Atomically publish a finished temporary file.

        A separate method so the chaos suite can inject a kill between
        the temporary write and the publish -- the window in which a real
        worker death would leave debris.
        """
        os.replace(tmp, final)

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "corrupt": self.corrupt,
        }

    def entries(self) -> List[str]:
        """Keys of every finalized entry on disk (sorted)."""
        keys = []
        for path in Path(self.root).glob("*/*.npz"):
            keys.append(path.stem)
        return sorted(keys)

    def debris(self) -> List[str]:
        """Leftover ``*.tmp`` files from writers that died mid-write."""
        return sorted(
            str(p) for p in Path(self.root).glob("*/*.tmp")
        )

    def sweep(self) -> int:
        """Delete write debris; returns the number of files removed.

        Safe to run concurrently with writers only in the trivial sense
        that finalized entries are never touched; callers should sweep
        between runs, not during them.
        """
        removed = 0
        for path in list(Path(self.root).glob("*/*.tmp")):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
        return removed

    def _count(self, name: str, amount: int = 1) -> None:
        telemetry = current_telemetry()
        if telemetry is not None and amount:
            telemetry.count(name, amount)

    def __repr__(self) -> str:
        return f"ArtifactCache(root={self.root!r})"


# ----------------------------------------------------------------------
# The process-wide current-cache hook (mirrors current_telemetry)
# ----------------------------------------------------------------------
_ACTIVE: List[ArtifactCache] = []


def current_cache() -> Optional[ArtifactCache]:
    """The innermost installed cache, or None (compute from scratch)."""
    return _ACTIVE[-1] if _ACTIVE else None


def install_cache(cache: ArtifactCache) -> None:
    """Install permanently (pool workers; the process owns its stack)."""
    _ACTIVE.append(cache)


@contextmanager
def cache_scope(cache: Optional[ArtifactCache]) -> Iterator[Optional[ArtifactCache]]:
    """Install ``cache`` for the duration of a block; None is a no-op."""
    if cache is None:
        yield None
        return
    _ACTIVE.append(cache)
    try:
        yield cache
    finally:
        _ACTIVE.pop()
