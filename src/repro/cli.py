"""Command-line entry point: run the benchmark stages on one dataset.

Usage::

    python -m repro detect  <dataset> [--rows N] [--seed S]
    python -m repro repair  <dataset> [--rows N] [--seed S]
    python -m repro model   <dataset> [--rows N] [--seed S] [--model NAME]
    python -m repro list

``detect`` prints the Figure 2-style accuracy/IoU/runtime panels, ``repair``
the Figure 4/5-style detector x repair grid, and ``model`` the Figure
7-style S1-vs-S4 comparison with the Wilcoxon decision.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional, Sequence

from repro.benchmark import (
    BenchmarkController,
    detection_iou,
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
)
from repro.datagen import DATASET_NAMES, dataset_spec, generate
from repro.reporting import render_matrix, render_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REIN reproduction: data cleaning benchmark stages",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in ("detect", "repair", "model"):
        stage = sub.add_parser(command)
        stage.add_argument("dataset", choices=sorted(DATASET_NAMES))
        stage.add_argument("--rows", type=int, default=400)
        stage.add_argument("--seed", type=int, default=0)
        if command == "model":
            stage.add_argument("--model", default="DT")
            stage.add_argument("--seeds", type=int, default=4)
    sub.add_parser("list")
    return parser


def _cmd_list() -> int:
    rows = []
    for name in DATASET_NAMES:
        spec = dataset_spec(name)
        rows.append(
            [name, spec.table4_rows, spec.error_rate, spec.errors,
             spec.domain, spec.task or "-"]
        )
    print(render_table(
        ["dataset", "paper_rows", "error_rate", "errors", "domain", "task"],
        rows, title="Available dataset analogues (Table 4)"))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    dataset = generate(args.dataset, n_rows=args.rows, seed=args.seed)
    controller = BenchmarkController()
    applicable = controller.applicable_detectors(dataset)
    runs = run_detection_suite(dataset, applicable, seed=args.seed)
    active = [r for r in runs if not r.failed and r.result.n_detected > 0]
    rows = [
        [r.detector, r.result.n_detected, r.scores.precision,
         r.scores.recall, r.scores.f1, r.result.runtime_seconds]
        for r in sorted(active, key=lambda r: -r.scores.f1)
    ]
    print(render_table(
        ["detector", "detected", "precision", "recall", "f1", "runtime_s"],
        rows,
        title=f"{dataset.name}: detection "
              f"({len(dataset.error_cells)} erroneous cells)"))
    names, matrix = detection_iou(active, dataset)
    print()
    print(render_matrix(names, matrix, title="IoU over true positives"))
    failed = [r for r in runs if r.failed]
    if failed:
        print("\nfailed: " + ", ".join(f"{r.detector} ({r.failure})" for r in failed))
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.detectors import MaxEntropyDetector, MVDetector
    from repro.repair import (
        GroundTruthRepair,
        MeanModeImputeRepair,
        MissForestMixRepair,
    )

    dataset = generate(args.dataset, n_rows=args.rows, seed=args.seed)
    detection_runs = run_detection_suite(
        dataset, [MVDetector(), MaxEntropyDetector()], seed=args.seed
    )
    detections = {
        r.detector: set(r.result.cells)
        for r in detection_runs
        if not r.failed and r.result.n_detected
    }
    repair_runs = run_repair_suite(
        dataset,
        detections,
        [GroundTruthRepair(), MeanModeImputeRepair(), MissForestMixRepair()],
        seed=args.seed,
    )
    rows = []
    for run in repair_runs:
        if run.failed:
            rows.append([run.strategy, None, None, "FAILED"])
        else:
            rows.append(
                [run.strategy, run.categorical_f1, run.numerical_rmse, ""]
            )
    print(render_table(
        ["strategy", "categorical_f1", "numerical_rmse", "note"], rows,
        title=f"{dataset.name}: repair grid"))
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    dataset = generate(args.dataset, n_rows=args.rows, seed=args.seed)
    if dataset.task is None:
        print(f"{dataset.name} has no associated ML task", file=sys.stderr)
        return 2
    evaluation = evaluate_scenarios(
        dataset, dataset.dirty, "dirty", args.model,
        scenario_names=("S1", "S4"), n_seeds=args.seeds,
    )
    ab = evaluation.ab_test("S1", "S4")
    print(render_table(
        ["scenario", "mean", "std"],
        [
            ["S1 (dirty)", evaluation.mean("S1"), evaluation.std("S1")],
            ["S4 (ground truth)", evaluation.mean("S4"), evaluation.std("S4")],
        ],
        title=f"{dataset.name}: {args.model} under S1 vs S4 "
              f"({dataset.task})"))
    verdict = "DIFFERENT" if ab.reject_null() else "equivalent"
    print(f"\nWilcoxon signed-rank p={ab.p_value:.4f} -> scenarios {verdict}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "repair":
        return _cmd_repair(args)
    return _cmd_model(args)


if __name__ == "__main__":
    raise SystemExit(main())
