"""Command-line entry point: run the benchmark stages on one dataset.

Usage::

    python -m repro detect  <dataset> [--rows N] [--seed S] [resilience]
    python -m repro repair  <dataset> [--rows N] [--seed S] [resilience]
    python -m repro model   <dataset> [--rows N] [--seed S] [--model NAME]
    python -m repro list
    python -m repro trace   <ledger.jsonl> [--out trace.json]
    python -m repro serve   --queue q.sqlite [--workers N] [--port P]
    python -m repro submit  <dataset> [--kind K] (--inline | --url URL)
    python -m repro jobs    --url URL [--stats]

``detect`` prints the Figure 2-style accuracy/IoU/runtime panels, ``repair``
the Figure 4/5-style detector x repair grid, and ``model`` the Figure
7-style S1-vs-S4 comparison with the Wilcoxon decision.

Resilience flags (available on every stage command):

- ``--budget SECONDS``: per-method wall-clock deadline, cooperatively
  enforced; a tool that exceeds it is booked as a capability failure.
- ``--store PATH``: SQLite checkpoint database; every completed
  (dataset, method, scenario, seed) unit is persisted there.
- ``--resume``: skip units already completed in ``--store`` (an
  interrupted run continues where it stopped); without it the run's
  prior checkpoints are cleared first.
- ``--retries N``: attempts for transient failures (default 1 = none).
- ``--workers N``: shard the stage's unit grid across N worker
  processes; output is byte-identical to the serial run for any N.
- ``--start-method {fork,spawn,forkserver}``: multiprocessing start
  method for the worker pool.  The shared-memory data plane ships the
  stage context as named segments plus a small pickled shell, so even
  ``spawn`` (which cannot inherit memory) dispatches without copying
  tables per worker; results are byte-identical for every method.
- ``--chunk-size N``: units handed to a worker per dispatch (default:
  adaptive, scaled from grid size and worker count).
- ``--block-rows N`` (``detect`` only): stream block-capable detectors
  over N-row zero-copy blocks instead of materializing whole-table
  intermediates; cells and scores are byte-identical to the unblocked
  run for any N, and peak memory stays bounded by the block size.
- ``--cache-dir PATH``: content-addressed artifact cache; encoded
  feature matrices and detector features are memoized on disk, keyed by
  table content + configuration, so re-runs (and repeated table
  versions inside one run) skip re-featurization.  Results are
  byte-identical with or without the cache, at any worker count.
- ``--no-cache``: force the cache off even when ``--cache-dir`` is set.

Observability flags (global, on every command):

- ``--events PATH``: append the run's observability ledger (JSONL
  events: spans, metrics, failures, breaker trips) to PATH; replay it
  with ``repro trace PATH`` to get a Chrome trace-event JSON timeline.
- ``--verbose``/``-v``: print the telemetry counters and histograms
  after the stage report.
- ``--quiet``/``-q``: suppress the stdout report (exit codes and
  ``--events`` output are unaffected).

Exit codes are stable and distinct so scripts can branch on failure
class: 0 success, 1 runtime failure, 2 usage error (argparse), 3
malformed benchmark config, 4 missing/unopenable path (checkpoint
store, events ledger, cache directory, queue database), 5 benchmark
service unreachable.
"""

from __future__ import annotations

import argparse
import json
import sqlite3
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.benchmark import (
    BenchmarkController,
    detection_iou,
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
)
from repro.cache import ArtifactCache, cache_scope
from repro.datagen import DATASET_NAMES, dataset_spec, generate
from repro.observability import (
    RunLedger,
    Telemetry,
    chrome_trace_from_ledger,
    render_metrics_summary,
    telemetry_scope,
)
from repro.observability.ledger import RUN_FINISHED, RUN_STARTED
from repro.observability.trace import SUITE
from repro.parallel import make_executor
from repro.reporting import render_matrix, render_runtime_panel, render_table
from repro.resilience import (
    CircuitBreaker,
    RetryPolicy,
    SuiteCheckpoint,
    run_id_for,
)

# Stable, distinct exit codes (documented in the module docstring).
EXIT_USAGE = 2
EXIT_BAD_CONFIG = 3
EXIT_MISSING_PATH = 4
EXIT_SERVICE_UNREACHABLE = 5


class CliError(Exception):
    """A user-facing CLI failure with its one-line message and exit code."""

    def __init__(self, message: str, code: int) -> None:
        super().__init__(message)
        self.code = code


def _positive_seconds(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"budget must be a positive number of seconds, got {text!r}"
        )
    return value


_positive_seconds.__name__ = "seconds"  # argparse uses this in error text


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )
    return value


_positive_int.__name__ = "int"  # argparse uses this in error text


def _build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--events", default=None, metavar="PATH",
        help="append the observability ledger (JSONL events) to PATH",
    )
    volume = common.add_mutually_exclusive_group()
    volume.add_argument(
        "-v", "--verbose", action="store_true",
        help="print telemetry counters/histograms after the report",
    )
    volume.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the stdout report (exit codes are unchanged)",
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REIN reproduction: data cleaning benchmark stages",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in ("detect", "repair", "model"):
        stage = sub.add_parser(command, parents=[common])
        stage.add_argument("dataset", choices=sorted(DATASET_NAMES))
        stage.add_argument("--rows", type=int, default=400)
        stage.add_argument("--seed", type=int, default=0)
        stage.add_argument(
            "--budget", type=_positive_seconds, default=None,
            metavar="SECONDS",
            help="per-method wall-clock deadline (capability failure "
                 "when exceeded)",
        )
        stage.add_argument(
            "--store", default=None, metavar="PATH",
            help="SQLite checkpoint database for resumable runs",
        )
        stage.add_argument(
            "--resume", action="store_true",
            help="skip units already completed in --store",
        )
        stage.add_argument(
            "--retries", type=int, default=1, metavar="N",
            help="attempts for transient failures (default 1 = no retry)",
        )
        stage.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="worker processes for the unit grid (default 1 = serial; "
                 "results are identical for any N)",
        )
        stage.add_argument(
            "--start-method", default=None,
            choices=("fork", "spawn", "forkserver"),
            help="multiprocessing start method for --workers > 1 "
                 "(default: platform default; results are byte-identical "
                 "either way)",
        )
        stage.add_argument(
            "--chunk-size", type=_positive_int, default=None, metavar="N",
            help="units dispatched to a worker at a time (default: "
                 "adaptive, derived from grid size and worker count)",
        )
        stage.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="content-addressed artifact cache directory; encoded "
                 "matrices and detector features are memoized there "
                 "(results are identical with or without it)",
        )
        stage.add_argument(
            "--no-cache", action="store_true",
            help="disable the artifact cache even when --cache-dir is set",
        )
        if command == "detect":
            stage.add_argument(
                "--block-rows", type=_positive_int, default=None, metavar="N",
                help="row-block size for out-of-core detection; "
                     "block-capable detectors stream over N-row blocks "
                     "with byte-identical results",
            )
        if command == "model":
            stage.add_argument("--model", default="DT")
            stage.add_argument("--seeds", type=int, default=4)
    sub.add_parser("list", parents=[common])
    trace = sub.add_parser("trace", parents=[common])
    trace.add_argument("ledger", metavar="LEDGER",
                       help="observability ledger written with --events")
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the Chrome trace JSON here instead of stdout",
    )

    serve = sub.add_parser(
        "serve", parents=[common],
        help="run the benchmark service (queue + worker pool + HTTP API)",
    )
    serve.add_argument(
        "--queue", required=True, metavar="PATH",
        help="SQLite job-queue database (created if absent)",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=2, metavar="N",
        help="worker processes executing leased jobs (default 2)",
    )
    serve.add_argument(
        "--job-workers", type=_positive_int, default=1, metavar="N",
        help="nested process pool size each job executes with "
             "(default 1 = serial; N > 1 shards a job's unit grid over "
             "the shared-memory data plane, results unchanged)",
    )
    serve.add_argument(
        "--store", default=None, metavar="PATH",
        help="checkpoint store jobs resume from after a worker kill",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="API port (0 picks an ephemeral port; default 8321)",
    )
    serve.add_argument(
        "--lease-seconds", type=_positive_seconds, default=30.0,
        metavar="SECONDS",
        help="worker lease duration; a silent worker forfeits its job "
             "after this long (default 30)",
    )
    serve.add_argument(
        "--max-depth", type=_positive_int, default=256, metavar="N",
        help="queued-job admission bound before HTTP 429 backpressure",
    )
    serve.add_argument(
        "--max-attempts", type=_positive_int, default=3, metavar="N",
        help="executions per job before it fails terminally (default 3)",
    )

    submit = sub.add_parser(
        "submit", parents=[common],
        help="submit one benchmark job (to a service, or run inline)",
    )
    submit.add_argument("dataset", choices=sorted(DATASET_NAMES))
    submit.add_argument(
        "--kind", choices=("detect", "repair", "model"), default="detect",
    )
    submit.add_argument("--rows", type=_positive_int, default=400)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--options", default=None, metavar="JSON",
        help="job options as a JSON object (detectors, repairs, model, "
             "scenarios, n_seeds, sample_rows, block_rows)",
    )
    submit.add_argument(
        "--url", default=None, metavar="URL",
        help="service base URL (e.g. http://127.0.0.1:8321)",
    )
    submit.add_argument(
        "--inline", action="store_true",
        help="execute the job locally and print its canonical result "
             "(byte-identical to the service's result endpoint)",
    )
    submit.add_argument(
        "--store", default=None, metavar="PATH",
        help="checkpoint store for --inline execution",
    )
    submit.add_argument("--priority", default=None, metavar="CLASS",
                        help="priority class (interactive/batch/bulk)")
    submit.add_argument("--submitter", default=None, metavar="NAME")
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the submitted job finishes, then print its "
             "canonical result",
    )
    submit.add_argument(
        "--timeout", type=_positive_seconds, default=300.0,
        metavar="SECONDS", help="--wait deadline (default 300)",
    )

    jobs = sub.add_parser(
        "jobs", parents=[common],
        help="list a service's jobs or queue statistics",
    )
    jobs.add_argument("--url", required=True, metavar="URL")
    jobs.add_argument(
        "--stats", action="store_true",
        help="print queue statistics JSON instead of the job table",
    )
    return parser


def _open_checkpoint(args: argparse.Namespace) -> Optional[SuiteCheckpoint]:
    """Build the checkpoint view the resilience flags describe."""
    if args.store is None:
        return None
    run_id = run_id_for(args.command, args.dataset, args.rows, args.seed)
    try:
        return SuiteCheckpoint.open(args.store, run_id, resume=args.resume)
    except sqlite3.OperationalError as exc:
        raise CliError(
            f"cannot open checkpoint store {args.store!r}: {exc}",
            EXIT_MISSING_PATH,
        ) from exc


def _guard_kwargs(args: argparse.Namespace) -> dict:
    retry = (
        RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
    )
    return {
        "deadline_seconds": args.budget,
        "retry": retry,
        "breaker": CircuitBreaker(threshold=3),
        "checkpoint": _open_checkpoint(args),
        "executor": make_executor(
            args.workers,
            start_method=args.start_method,
            chunk_size=args.chunk_size,
        ),
    }


def _make_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """Telemetry for this invocation, or None (the zero-cost default)."""
    if args.events is None and not args.verbose:
        return None
    try:
        ledger = RunLedger(args.events) if args.events is not None else None
    except OSError as exc:
        raise CliError(
            f"cannot open events ledger {args.events!r}: {exc}",
            EXIT_MISSING_PATH,
        ) from exc
    return Telemetry(ledger=ledger)


@contextmanager
def _telemetry_session(
    args: argparse.Namespace,
) -> Iterator[Optional[Telemetry]]:
    """Install telemetry for one CLI run and bracket it in the ledger."""
    telemetry = _make_telemetry(args)
    if telemetry is None:
        yield None
        return
    with telemetry_scope(telemetry):
        telemetry.event(
            RUN_STARTED,
            command=args.command,
            dataset=args.dataset,
            rows=args.rows,
            seed=args.seed,
            workers=getattr(args, "workers", 1),
        )
        status = "error"
        try:
            with telemetry.span(
                f"{args.command}:{args.dataset}", SUITE, command=args.command
            ):
                yield telemetry
            status = "ok"
        finally:
            telemetry.event(RUN_FINISHED, status=status)
            telemetry.flush_to_ledger()
            if telemetry.ledger is not None:
                telemetry.ledger.close()


@contextmanager
def _cache_session(
    args: argparse.Namespace, telemetry: Optional[Telemetry]
) -> Iterator[Optional[ArtifactCache]]:
    """Install the artifact cache for one CLI run (when requested).

    On exit the cache's hit/miss/bytes counters are emitted as a
    ``cache_summary`` ledger event, so a run's cache behaviour is
    auditable next to its spans and failures.
    """
    if args.no_cache or args.cache_dir is None:
        yield None
        return
    try:
        cache = ArtifactCache(args.cache_dir)
    except OSError as exc:
        raise CliError(
            f"cannot open cache directory {args.cache_dir!r}: {exc}",
            EXIT_MISSING_PATH,
        ) from exc
    with cache_scope(cache):
        try:
            yield cache
        finally:
            if telemetry is not None:
                telemetry.event(
                    "cache_summary", root=cache.root, **cache.stats()
                )


def _print_telemetry(args: argparse.Namespace, telemetry) -> None:
    if telemetry is not None and args.verbose:
        print()
        print(render_metrics_summary(telemetry.metrics))


def _print_failures(runs) -> None:
    failed = [r for r in runs if r.failed]
    if failed:
        lines = []
        for run in failed:
            record = run.failure_record
            label = run.detector if not hasattr(run, "repair") else run.strategy
            category = record.category if record is not None else "?"
            lines.append(f"  {label} [{category}] {run.failure}")
        print("\nfailures:\n" + "\n".join(lines))


def _cmd_list(args: argparse.Namespace) -> int:
    if args.quiet:
        return 0
    rows = []
    for name in DATASET_NAMES:
        spec = dataset_spec(name)
        rows.append(
            [name, spec.table4_rows, spec.error_rate, spec.errors,
             spec.domain, spec.task or "-"]
        )
    print(render_table(
        ["dataset", "paper_rows", "error_rate", "errors", "domain", "task"],
        rows, title="Available dataset analogues (Table 4)"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        trace = chrome_trace_from_ledger(args.ledger)
    except (OSError, ValueError) as exc:
        raise CliError(
            f"cannot read ledger {args.ledger!r}: {exc}", EXIT_MISSING_PATH
        ) from exc
    text = json.dumps(trace, sort_keys=True, indent=2, allow_nan=False)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        if not args.quiet:
            print(f"wrote Chrome trace to {args.out}")
    else:
        # The trace JSON is the deliverable, not a report: --quiet does
        # not suppress it (use --out to keep stdout clean instead).
        print(text)
    return 0


def _detection_runtimes(runs):
    """Per-detector honest seconds + failure categories for the panel."""
    runtimes, failures = {}, {}
    for run in runs:
        if run.failed:
            record = run.failure_record
            failures[run.detector] = (
                record.category if record is not None else "?"
            )
            runtimes[run.detector] = (
                record.elapsed_seconds if record is not None else 0.0
            )
        else:
            runtimes[run.detector] = run.result.runtime_seconds
    return runtimes, failures


def _cmd_detect(args: argparse.Namespace) -> int:
    dataset = generate(args.dataset, n_rows=args.rows, seed=args.seed)
    guards = _guard_kwargs(args)
    checkpoint = guards["checkpoint"]
    controller = BenchmarkController(breaker=guards["breaker"])
    applicable = controller.applicable_detectors(dataset)
    with _telemetry_session(args) as telemetry, \
            _cache_session(args, telemetry):
        try:
            runs = run_detection_suite(
                dataset, applicable, seed=args.seed,
                block_rows=args.block_rows, **guards
            )
        finally:
            if checkpoint is not None:
                checkpoint.close()
    if args.quiet:
        return 0
    active = [r for r in runs if not r.failed and r.result.n_detected > 0]
    rows = [
        [r.detector, r.result.n_detected, r.scores.precision,
         r.scores.recall, r.scores.f1]
        for r in sorted(active, key=lambda r: -r.scores.f1)
    ]
    print(render_table(
        ["detector", "detected", "precision", "recall", "f1"],
        rows,
        title=f"{dataset.name}: detection "
              f"({len(dataset.error_cells)} erroneous cells)"))
    names, matrix = detection_iou(active, dataset)
    print()
    print(render_matrix(names, matrix, title="IoU over true positives"))
    runtimes, failures = _detection_runtimes(runs)
    print()
    print(render_runtime_panel(
        runtimes, failures=failures, title="runtime seconds per detector"))
    _print_failures(runs)
    _print_telemetry(args, telemetry)
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.detectors import MaxEntropyDetector, MVDetector
    from repro.repair import (
        GroundTruthRepair,
        MeanModeImputeRepair,
        MissForestMixRepair,
    )

    dataset = generate(args.dataset, n_rows=args.rows, seed=args.seed)
    guards = _guard_kwargs(args)
    checkpoint = guards["checkpoint"]
    with _telemetry_session(args) as telemetry, \
            _cache_session(args, telemetry):
        try:
            detection_runs = run_detection_suite(
                dataset, [MVDetector(), MaxEntropyDetector()], seed=args.seed,
                **guards,
            )
            detections = {
                r.detector: set(r.result.cells)
                for r in detection_runs
                if not r.failed and r.result.n_detected
            }
            repair_runs = run_repair_suite(
                dataset,
                detections,
                [GroundTruthRepair(), MeanModeImputeRepair(),
                 MissForestMixRepair()],
                seed=args.seed,
                **guards,
            )
        finally:
            if checkpoint is not None:
                checkpoint.close()
    if args.quiet:
        return 0
    rows = []
    for run in repair_runs:
        if run.failed:
            category = (
                run.failure_record.category
                if run.failure_record is not None
                else "?"
            )
            rows.append([run.strategy, None, None, f"FAILED ({category})"])
        else:
            rows.append(
                [run.strategy, run.categorical_f1, run.numerical_rmse, ""]
            )
    print(render_table(
        ["strategy", "categorical_f1", "numerical_rmse", "note"], rows,
        title=f"{dataset.name}: repair grid"))
    _print_failures(repair_runs)
    _print_telemetry(args, telemetry)
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    dataset = generate(args.dataset, n_rows=args.rows, seed=args.seed)
    if dataset.task is None:
        print(f"{dataset.name} has no associated ML task", file=sys.stderr)
        return 2
    guards = _guard_kwargs(args)
    checkpoint = guards["checkpoint"]
    with _telemetry_session(args) as telemetry, \
            _cache_session(args, telemetry):
        try:
            evaluation = evaluate_scenarios(
                dataset, dataset.dirty, "dirty", args.model,
                scenario_names=("S1", "S4"), n_seeds=args.seeds,
                deadline_seconds=guards["deadline_seconds"],
                retry=guards["retry"], checkpoint=checkpoint,
                executor=guards["executor"],
            )
        finally:
            if checkpoint is not None:
                checkpoint.close()
    if args.quiet:
        return 0
    ab = evaluation.ab_test("S1", "S4")
    print(render_table(
        ["scenario", "mean", "std"],
        [
            ["S1 (dirty)", evaluation.mean("S1"), evaluation.std("S1")],
            ["S4 (ground truth)", evaluation.mean("S4"), evaluation.std("S4")],
        ],
        title=f"{dataset.name}: {args.model} under S1 vs S4 "
              f"({dataset.task})"))
    verdict = "DIFFERENT" if ab.reject_null() else "equivalent"
    print(f"\nWilcoxon signed-rank p={ab.p_value:.4f} -> scenarios {verdict}")
    failure_lines = evaluation.failure_summary()
    if failure_lines:
        print("\nmissing scores explained:")
        for line in failure_lines:
            print(f"  {line}")
    _print_telemetry(args, telemetry)
    return 0


# ----------------------------------------------------------------------
# Service commands
# ----------------------------------------------------------------------
def _parse_job_spec(args: argparse.Namespace):
    """Build the JobSpec the submit flags describe (exit 3 when bad)."""
    from repro.service import JobSpec

    options = {}
    if args.options is not None:
        try:
            options = json.loads(args.options)
        except json.JSONDecodeError as exc:
            raise CliError(
                f"--options is not valid JSON: {exc}", EXIT_BAD_CONFIG
            ) from exc
        if not isinstance(options, dict):
            raise CliError(
                "--options must be a JSON object", EXIT_BAD_CONFIG
            )
    try:
        return JobSpec(
            kind=args.kind, dataset=args.dataset, rows=args.rows,
            seed=args.seed, options=options,
        )
    except ValueError as exc:
        raise CliError(
            f"malformed job config: {exc}", EXIT_BAD_CONFIG
        ) from exc


def _service_client(url: str, timeout: float = 30.0):
    from repro.service import ServiceClient

    return ServiceClient(url, timeout=timeout)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import BenchService, SchedulerPolicy
    from repro.service.workers import DEFAULT_EXECUTE_REF

    policy = SchedulerPolicy(
        max_depth=args.max_depth,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
    )
    service = BenchService(
        args.queue,
        n_workers=args.workers,
        policy=policy,
        execute_ref=DEFAULT_EXECUTE_REF,
        store_path=args.store,
        events_path=args.events,
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
    )
    try:
        service.start()
    except (sqlite3.OperationalError, OSError) as exc:
        raise CliError(
            f"cannot start service (queue {args.queue!r}, "
            f"http {args.host}:{args.port}): {exc}",
            EXIT_MISSING_PATH,
        ) from exc
    try:
        if not args.quiet:
            print(
                f"serving {args.workers} worker(s) on {service.address} "
                f"(queue {args.queue}); SIGTERM/SIGINT drains",
                flush=True,
            )
        clean = service.serve_until_signalled()
    finally:
        service.drain()
    return 0 if clean else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import (
        RetryLater,
        ServiceError,
        ServiceUnavailable,
        canonical_result_text,
        execute_job,
    )

    spec = _parse_job_spec(args)
    if args.inline:
        checkpoint_args = argparse.Namespace(
            store=args.store, command=args.kind, dataset=args.dataset,
            rows=args.rows, seed=args.seed, resume=True,
        )
        if args.store is not None:
            # Probe the store path now for the distinct exit code; the
            # job itself opens its own per-job-id checkpoint view.
            _open_checkpoint(checkpoint_args).close()
        with _telemetry_session(args) as telemetry:
            result = execute_job(
                spec, store_path=args.store, telemetry=telemetry
            )
        # The canonical text is the deliverable (the bytes the service's
        # result endpoint serves for this config); --quiet never hides it.
        print(canonical_result_text(result))
        return 0
    if args.url is None:
        raise CliError(
            "submit needs --inline or --url URL", EXIT_USAGE
        )
    client = _service_client(args.url, timeout=min(args.timeout, 30.0))
    try:
        receipt = client.submit_with_backoff(
            spec.to_payload(), priority=args.priority,
            submitter=args.submitter, deadline_seconds=args.timeout,
        )
        if not args.quiet:
            dedup = " (deduplicated)" if receipt.get("deduplicated") else ""
            print(f"job {receipt['job_id']} {receipt['state']}{dedup}")
        if args.wait:
            client.wait(
                receipt["job_id"], deadline_seconds=args.timeout
            )
            print(client.result_text(receipt["job_id"]))
    except ServiceUnavailable as exc:
        raise CliError(str(exc), EXIT_SERVICE_UNREACHABLE) from exc
    except TimeoutError as exc:
        raise CliError(str(exc), 1) from exc
    except RetryLater as exc:
        raise CliError(
            f"service is saturated: {exc} "
            f"(retry after {exc.retry_after_seconds:g}s)", 1
        ) from exc
    except ServiceError as exc:
        raise CliError(f"submission rejected: {exc}", 1) from exc
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceUnavailable

    client = _service_client(args.url)
    try:
        if args.stats:
            stats = client.stats()
            if not args.quiet:
                print(json.dumps(stats, sort_keys=True, indent=2))
            return 0
        records = client.jobs()
    except ServiceUnavailable as exc:
        raise CliError(str(exc), EXIT_SERVICE_UNREACHABLE) from exc
    if args.quiet:
        return 0
    rows = [
        [
            record["job_id"],
            record["spec"].get("kind", "?"),
            record["spec"].get("dataset", "?"),
            record["state"],
            record["priority"],
            record["attempts"],
            record["requeues"],
            record["submitter"],
        ]
        for record in records
    ]
    print(render_table(
        ["job", "kind", "dataset", "state", "priority", "attempts",
         "requeues", "submitter"],
        rows, title=f"jobs at {args.url}"))
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "trace": _cmd_trace,
    "detect": _cmd_detect,
    "repair": _cmd_repair,
    "model": _cmd_model,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except CliError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return exc.code


if __name__ == "__main__":
    raise SystemExit(main())
