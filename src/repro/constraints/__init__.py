"""Integrity constraints: predicates, denial constraints, functional
dependencies, syntactic patterns, and automatic FD discovery.

These are the "cleaning signals" of Figure 1: NADEEF and HoloClean consume
denial constraints, BART injects rule violations against them, and the FDX
analogue in :mod:`repro.constraints.discovery` generates FDs automatically
(Section 5).
"""

from repro.constraints.dc import DenialConstraint, Predicate
from repro.constraints.discovery import discover_fds
from repro.constraints.fd import FunctionalDependency
from repro.constraints.patterns import ColumnPattern, common_patterns

__all__ = [
    "ColumnPattern",
    "DenialConstraint",
    "FunctionalDependency",
    "Predicate",
    "common_patterns",
    "discover_fds",
]
