"""Frozen pre-vectorization constraint kernels (equivalence oracles).

This module preserves the *original* scalar implementations of the
constraint hot paths exactly as they were before the cleaning-stage
vectorization pass (mirroring :mod:`repro.ml._reference`):

- FD group construction by a per-row Python loop over determinant
  attributes, and minority/majority voting by per-group dict scans;
- unary denial-constraint evaluation by calling ``Predicate.holds`` on a
  per-row dict for every row;
- binary denial-constraint evaluation by nested per-pair Python loops
  inside each equality-join block (or over the full cross product when
  the constraint has no equality predicates).

They exist for two reasons and must not be "improved":

1. the property suite (``tests/test_cleaning_kernels.py``) proves the
   vectorized kernels in :mod:`repro.constraints.fd` and
   :mod:`repro.constraints.dc` produce *exactly* the same violation
   sets, repair mappings, and row pairs as these;
2. the cleaning-kernel benchmarks (``benchmarks/test_cleaning_speed.py``)
   measure speedups against them, so the committed
   ``BENCH_cleaning.json`` numbers stay comparable PR over PR.

``tools/check_hot_loops.py`` forbids these patterns elsewhere under
``src/repro/constraints/``; this file is the documented allowlist entry.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.dataset.table import Cell, Table, is_missing

# ----------------------------------------------------------------------
# Functional dependencies
# ----------------------------------------------------------------------


def reference_fd_groups(fd, table: Table) -> Dict[Tuple, List[int]]:
    """Rows grouped by their (non-missing) lhs values (original loop)."""
    groups: Dict[Tuple, List[int]] = {}
    for i in range(table.n_rows):
        key_parts = []
        valid = True
        for attr in fd.lhs:
            value = table.get_cell(i, attr)
            if is_missing(value):
                valid = False
                break
            key_parts.append(str(value).strip())
        if valid:
            groups.setdefault(tuple(key_parts), []).append(i)
    return groups


def reference_fd_violations(fd, table: Table) -> Set[Cell]:
    """Original scalar FD violation scan (minority-vote flagging)."""
    cells: Set[Cell] = set()
    for rows in reference_fd_groups(fd, table).values():
        if len(rows) < 2:
            continue
        value_rows: Dict[str, List[int]] = {}
        for i in rows:
            value = table.get_cell(i, fd.rhs)
            key = "␀" if is_missing(value) else str(value).strip()
            value_rows.setdefault(key, []).append(i)
        if len(value_rows) < 2:
            continue
        counts = {v: len(r) for v, r in value_rows.items()}
        top = max(counts.values())
        majority = [v for v, c in counts.items() if c == top]
        if len(majority) == 1:
            for value, members in value_rows.items():
                if value != majority[0]:
                    cells.update((i, fd.rhs) for i in members)
        else:
            for members in value_rows.values():
                cells.update((i, fd.rhs) for i in members)
    return cells


def reference_fd_majority_repairs(fd, table: Table) -> Dict[Cell, object]:
    """Original scalar FD repair proposal scan (group-majority value)."""
    repairs: Dict[Cell, object] = {}
    for rows in reference_fd_groups(fd, table).values():
        if len(rows) < 2:
            continue
        value_rows: Dict[str, List[int]] = {}
        originals: Dict[str, object] = {}
        for i in rows:
            value = table.get_cell(i, fd.rhs)
            key = "␀" if is_missing(value) else str(value).strip()
            value_rows.setdefault(key, []).append(i)
            originals.setdefault(key, value)
        if len(value_rows) < 2:
            continue
        counts = {v: len(r) for v, r in value_rows.items()}
        top = max(counts.values())
        majority = [v for v, c in counts.items() if c == top]
        if len(majority) != 1 or majority[0] == "␀":
            continue
        majority_value = originals[majority[0]]
        for value, members in value_rows.items():
            if value != majority[0]:
                for i in members:
                    repairs[(i, fd.rhs)] = majority_value
    return repairs


# ----------------------------------------------------------------------
# Denial constraints
# ----------------------------------------------------------------------


def _row_dict(dc, table: Table, index: int) -> Dict[str, object]:
    return {attr: table.get_cell(index, attr) for attr in dc.attributes}


def reference_unary_violations(dc, table: Table) -> Set[Cell]:
    """Original per-row ``Predicate.holds`` evaluation loop."""
    cells: Set[Cell] = set()
    rows = [_row_dict(dc, table, i) for i in range(table.n_rows)]
    for i, row in enumerate(rows):
        if all(p.holds(row) for p in dc.predicates):
            for attr in dc.attributes:
                cells.add((i, attr))
    return cells


def reference_binary_violations(dc, table: Table, max_pairs: int) -> Set[Cell]:
    """Original nested per-pair loop inside each equality-join block."""
    equality_attrs = [
        p.left_attr
        for p in dc.predicates
        if p.op == "==" and p.right_attr == p.left_attr and p.constant is None
    ]
    rows = [_row_dict(dc, table, i) for i in range(table.n_rows)]
    if equality_attrs:
        blocks: Dict[Tuple, List[int]] = {}
        for i, row in enumerate(rows):
            key = tuple(
                str(row.get(a)).strip() if not is_missing(row.get(a)) else None
                for a in equality_attrs
            )
            if None in key:
                continue  # missing join keys cannot witness a violation
            blocks.setdefault(key, []).append(i)
        candidate_blocks = [b for b in blocks.values() if len(b) > 1]
    else:
        candidate_blocks = [list(range(table.n_rows))]
    cells: Set[Cell] = set()
    checked = 0
    for block in candidate_blocks:
        for ia in range(len(block)):
            for ib in range(len(block)):
                if ia == ib:
                    continue
                checked += 1
                if checked > max_pairs:
                    return cells
                row_a, row_b = rows[block[ia]], rows[block[ib]]
                if all(p.holds(row_a, row_b) for p in dc.predicates):
                    for attr in dc.attributes:
                        cells.add((block[ia], attr))
                        cells.add((block[ib], attr))
    return cells


def reference_violating_row_pairs(
    dc, table: Table, max_pairs: int
) -> List[Tuple[int, int]]:
    """Original full-quadratic ordered scan over ``i < j`` row pairs."""
    rows = [_row_dict(dc, table, i) for i in range(table.n_rows)]
    pairs: List[Tuple[int, int]] = []
    checked = 0
    for i in range(table.n_rows):
        for j in range(i + 1, table.n_rows):
            checked += 1
            if checked > max_pairs:
                return pairs
            if all(p.holds(rows[i], rows[j]) for p in dc.predicates) or all(
                p.holds(rows[j], rows[i]) for p in dc.predicates
            ):
                pairs.append((i, j))
    return pairs
