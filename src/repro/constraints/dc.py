"""Denial constraints over one or two tuples.

A denial constraint (DC) forbids any (pair of) tuple(s) for which *all*
predicates hold simultaneously: ``not (p1 and p2 and ...)``.  Unary DCs
constrain single rows (e.g. ``not (age < 0)``); binary DCs constrain row
pairs (e.g. the FD ``zip -> city`` becomes
``not (t1.zip == t2.zip and t1.city != t2.city)``).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.dataset.table import Cell, Table, coerce_float, is_missing

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NUMERIC_OPS = {"<", "<=", ">", ">="}


def _comparable(op: str, left: Any, right: Any) -> Optional[Tuple[Any, Any]]:
    """Coerce operands for comparison; None when incomparable/missing."""
    if is_missing(left) or is_missing(right):
        return None
    left_f, right_f = coerce_float(left), coerce_float(right)
    left_numeric = left_f == left_f  # not NaN
    right_numeric = right_f == right_f
    if op in _NUMERIC_OPS:
        if not (left_numeric and right_numeric):
            return None
        return left_f, right_f
    if left_numeric and right_numeric:
        return left_f, right_f
    return str(left).strip(), str(right).strip()


@dataclass(frozen=True)
class Predicate:
    """One atomic comparison inside a denial constraint.

    Attributes:
        left_attr: attribute of the first tuple (``t1``).
        op: one of ``== != < <= > >=``.
        right_attr: attribute of the second tuple (``t2``) -- or of ``t1``
            when the constraint is unary.
        constant: literal to compare against instead of ``right_attr``.
        right_tuple: ``"t1"`` or ``"t2"``; which tuple ``right_attr``
            refers to (ignored when a constant is given).
    """

    left_attr: str
    op: str
    right_attr: Optional[str] = None
    constant: Any = None
    right_tuple: str = "t2"

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if (self.right_attr is None) == (self.constant is None):
            raise ValueError("exactly one of right_attr/constant is required")
        if self.right_tuple not in ("t1", "t2"):
            raise ValueError("right_tuple must be 't1' or 't2'")

    def holds(self, row_a: Dict[str, Any], row_b: Optional[Dict[str, Any]] = None) -> bool:
        """Evaluate the predicate on one or two rows (dicts by attribute)."""
        left = row_a.get(self.left_attr)
        if self.constant is not None:
            right = self.constant
        else:
            source = row_a if self.right_tuple == "t1" or row_b is None else row_b
            right = source.get(self.right_attr)
        pair = _comparable(self.op, left, right)
        if pair is None:
            return False
        return _OPERATORS[self.op](*pair)

    @property
    def attributes(self) -> Set[str]:
        attrs = {self.left_attr}
        if self.right_attr is not None:
            attrs.add(self.right_attr)
        return attrs

    def __str__(self) -> str:
        if self.constant is not None:
            return f"t1.{self.left_attr} {self.op} {self.constant!r}"
        other = self.right_tuple
        return f"t1.{self.left_attr} {self.op} {other}.{self.right_attr}"


class DenialConstraint:
    """A conjunction of predicates that must never all hold.

    Args:
        predicates: the conjuncts.
        binary: True when the constraint quantifies over tuple *pairs*.
            Unary constraints are evaluated per row.
        name: optional label used in reports.
    """

    def __init__(
        self,
        predicates: List[Predicate],
        binary: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if not predicates:
            raise ValueError("a denial constraint needs at least one predicate")
        self.predicates = list(predicates)
        self.binary = binary
        self.name = name or self._default_name()

    def _default_name(self) -> str:
        kind = "binary" if self.binary else "unary"
        return f"dc_{kind}(" + " & ".join(str(p) for p in self.predicates) + ")"

    @property
    def attributes(self) -> Set[str]:
        attrs: Set[str] = set()
        for predicate in self.predicates:
            attrs |= predicate.attributes
        return attrs

    def _row_dict(self, table: Table, index: int) -> Dict[str, Any]:
        return {attr: table.get_cell(index, attr) for attr in self.attributes}

    def violations(self, table: Table, max_pairs: int = 2_000_000) -> Set[Cell]:
        """Cells participating in at least one violation.

        Unary constraints flag the involved attributes of each violating
        row.  Binary constraints group rows by their equality-join keys
        (the ``t1.A == t2.A`` predicates) to avoid the full quadratic scan,
        then flag the attributes of both rows in each violating pair.
        ``max_pairs`` caps the pairwise work for pathological blocks.
        """
        if not self.binary:
            return self._unary_violations(table)
        return self._binary_violations(table, max_pairs)

    def _unary_violations(self, table: Table) -> Set[Cell]:
        cells: Set[Cell] = set()
        rows = [self._row_dict(table, i) for i in range(table.n_rows)]
        for i, row in enumerate(rows):
            if all(p.holds(row) for p in self.predicates):
                for attr in self.attributes:
                    cells.add((i, attr))
        return cells

    def _binary_violations(self, table: Table, max_pairs: int) -> Set[Cell]:
        equality_attrs = [
            p.left_attr
            for p in self.predicates
            if p.op == "==" and p.right_attr == p.left_attr and p.constant is None
        ]
        rows = [self._row_dict(table, i) for i in range(table.n_rows)]
        if equality_attrs:
            blocks: Dict[Tuple, List[int]] = {}
            for i, row in enumerate(rows):
                key = tuple(
                    str(row.get(a)).strip() if not is_missing(row.get(a)) else None
                    for a in equality_attrs
                )
                if None in key:
                    continue  # missing join keys cannot witness a violation
                blocks.setdefault(key, []).append(i)
            candidate_blocks = [b for b in blocks.values() if len(b) > 1]
        else:
            candidate_blocks = [list(range(table.n_rows))]
        cells: Set[Cell] = set()
        checked = 0
        for block in candidate_blocks:
            for ia in range(len(block)):
                for ib in range(len(block)):
                    if ia == ib:
                        continue
                    checked += 1
                    if checked > max_pairs:
                        return cells
                    row_a, row_b = rows[block[ia]], rows[block[ib]]
                    if all(p.holds(row_a, row_b) for p in self.predicates):
                        for attr in self.attributes:
                            cells.add((block[ia], attr))
                            cells.add((block[ib], attr))
        return cells

    def violating_row_pairs(
        self, table: Table, max_pairs: int = 200_000
    ) -> List[Tuple[int, int]]:
        """Row-index pairs (i < j) that jointly violate a binary constraint."""
        if not self.binary:
            raise ValueError("row pairs only defined for binary constraints")
        rows = [self._row_dict(table, i) for i in range(table.n_rows)]
        pairs: List[Tuple[int, int]] = []
        checked = 0
        for i in range(table.n_rows):
            for j in range(i + 1, table.n_rows):
                checked += 1
                if checked > max_pairs:
                    return pairs
                if all(p.holds(rows[i], rows[j]) for p in self.predicates) or all(
                    p.holds(rows[j], rows[i]) for p in self.predicates
                ):
                    pairs.append((i, j))
        return pairs

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"DenialConstraint({self.name})"
