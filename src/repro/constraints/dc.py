"""Denial constraints over one or two tuples.

A denial constraint (DC) forbids any (pair of) tuple(s) for which *all*
predicates hold simultaneously: ``not (p1 and p2 and ...)``.  Unary DCs
constrain single rows (e.g. ``not (age < 0)``); binary DCs constrain row
pairs (e.g. the FD ``zip -> city`` becomes
``not (t1.zip == t2.zip and t1.city != t2.city)``).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cache.keys import artifact_key, table_fingerprint
from repro.cache.store import current_cache
from repro.dataset.columnar import (
    combine_codes,
    normalized_column,
)
from repro.dataset.table import Cell, Table, coerce_float, is_missing
from repro.kernels import kernel_stage, use_reference_kernels

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NUMERIC_OPS = {"<", "<=", ">", ">="}


def _comparable(op: str, left: Any, right: Any) -> Optional[Tuple[Any, Any]]:
    """Coerce operands for comparison; None when incomparable/missing."""
    if is_missing(left) or is_missing(right):
        return None
    left_f, right_f = coerce_float(left), coerce_float(right)
    left_numeric = left_f == left_f  # not NaN
    right_numeric = right_f == right_f
    if op in _NUMERIC_OPS:
        if not (left_numeric and right_numeric):
            return None
        return left_f, right_f
    if left_numeric and right_numeric:
        return left_f, right_f
    return str(left).strip(), str(right).strip()


@dataclass(frozen=True)
class Predicate:
    """One atomic comparison inside a denial constraint.

    Attributes:
        left_attr: attribute of the first tuple (``t1``).
        op: one of ``== != < <= > >=``.
        right_attr: attribute of the second tuple (``t2``) -- or of ``t1``
            when the constraint is unary.
        constant: literal to compare against instead of ``right_attr``.
        right_tuple: ``"t1"`` or ``"t2"``; which tuple ``right_attr``
            refers to (ignored when a constant is given).
    """

    left_attr: str
    op: str
    right_attr: Optional[str] = None
    constant: Any = None
    right_tuple: str = "t2"

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if (self.right_attr is None) == (self.constant is None):
            raise ValueError("exactly one of right_attr/constant is required")
        if self.right_tuple not in ("t1", "t2"):
            raise ValueError("right_tuple must be 't1' or 't2'")

    def holds(self, row_a: Dict[str, Any], row_b: Optional[Dict[str, Any]] = None) -> bool:
        """Evaluate the predicate on one or two rows (dicts by attribute)."""
        left = row_a.get(self.left_attr)
        if self.constant is not None:
            right = self.constant
        else:
            source = row_a if self.right_tuple == "t1" or row_b is None else row_b
            right = source.get(self.right_attr)
        pair = _comparable(self.op, left, right)
        if pair is None:
            return False
        return _OPERATORS[self.op](*pair)

    @property
    def attributes(self) -> Set[str]:
        attrs = {self.left_attr}
        if self.right_attr is not None:
            attrs.add(self.right_attr)
        return attrs

    def __str__(self) -> str:
        if self.constant is not None:
            return f"t1.{self.left_attr} {self.op} {self.constant!r}"
        other = self.right_tuple
        return f"t1.{self.left_attr} {self.op} {other}.{self.right_attr}"


def _strip_text(value: Any) -> str:
    return str(value).strip()


_PAIR_CHUNK = 1 << 18


class _ConstraintArrays:
    """Columnar predicate evaluation state for one constraint + table.

    Each referenced attribute is normalized once per distinct payload
    into a missing mask, a float view, and string ids drawn from one
    interner shared across attributes (so id equality is exactly
    stripped-string equality, the comparison ``_comparable`` performs).
    Predicates then evaluate as boolean masks over arbitrary row-index
    arrays, reproducing ``Predicate.holds`` elementwise.
    """

    def __init__(self, dc: "DenialConstraint", table: Table) -> None:
        self.dc = dc
        self.n_rows = table.n_rows
        shared: Dict[str, int] = {}
        self.miss: Dict[str, np.ndarray] = {}
        self.floats: Dict[str, np.ndarray] = {}
        self.numeric: Dict[str, np.ndarray] = {}
        self.suid: Dict[str, np.ndarray] = {}
        for attr in sorted(dc.attributes):
            cells = table.column(attr)
            self.miss[attr] = np.array(
                normalized_column(cells, is_missing), dtype=bool
            )
            floats = np.array(
                normalized_column(cells, coerce_float), dtype=float
            )
            self.floats[attr] = floats
            self.numeric[attr] = floats == floats  # not NaN
            strs = normalized_column(cells, _strip_text)
            self.suid[attr] = np.fromiter(
                (shared.setdefault(s, len(shared)) for s in strs),
                dtype=np.int64,
                count=len(strs),
            )
        self.shared = shared
        self._constant_masks = [
            self._constant_mask(p) if p.constant is not None else None
            for p in dc.predicates
        ]

    def _constant_mask(self, pred: Predicate) -> np.ndarray:
        """Per-row truth of an attr-vs-constant predicate."""
        left = pred.left_attr
        nothing = np.zeros(self.n_rows, dtype=bool)
        if is_missing(pred.constant):
            return nothing
        op = _OPERATORS[pred.op]
        constant_f = coerce_float(pred.constant)
        constant_numeric = constant_f == constant_f
        valid = ~self.miss[left]
        if pred.op in _NUMERIC_OPS:
            if not constant_numeric:
                return nothing
            return valid & self.numeric[left] & op(self.floats[left], constant_f)
        numeric_branch = (
            self.numeric[left] if constant_numeric else nothing
        )
        numeric_result = (
            op(self.floats[left], constant_f) if constant_numeric else nothing
        )
        constant_id = self.shared.get(str(pred.constant).strip(), -1)
        string_eq = self.suid[left] == constant_id
        string_result = string_eq if pred.op == "==" else ~string_eq
        return valid & np.where(numeric_branch, numeric_result, string_result)

    def _predicate_mask(
        self,
        position: int,
        pred: Predicate,
        ia: np.ndarray,
        ib: Optional[np.ndarray],
    ) -> np.ndarray:
        if pred.constant is not None:
            return self._constant_masks[position][ia]
        left, right = pred.left_attr, pred.right_attr
        rsel = ia if (pred.right_tuple == "t1" or ib is None) else ib
        valid = ~self.miss[left][ia] & ~self.miss[right][rsel]
        op = _OPERATORS[pred.op]
        both_numeric = self.numeric[left][ia] & self.numeric[right][rsel]
        if pred.op in _NUMERIC_OPS:
            return valid & both_numeric & op(
                self.floats[left][ia], self.floats[right][rsel]
            )
        numeric_result = op(self.floats[left][ia], self.floats[right][rsel])
        string_eq = self.suid[left][ia] == self.suid[right][rsel]
        string_result = string_eq if pred.op == "==" else ~string_eq
        return valid & np.where(both_numeric, numeric_result, string_result)

    def conjunction(
        self, ia: np.ndarray, ib: Optional[np.ndarray]
    ) -> np.ndarray:
        """``all(p.holds(...))`` for every (ia[k], ib[k]) row selection."""
        mask: Optional[np.ndarray] = None
        for position, pred in enumerate(self.dc.predicates):
            step = self._predicate_mask(position, pred, ia, ib)
            mask = step if mask is None else mask & step
            if not mask.any():
                break
        return mask

    def equality_blocks(self, equality_attrs: List[str]) -> List[np.ndarray]:
        """Join blocks in first-key-occurrence order, rows ascending."""
        codes = combine_codes(
            [
                np.where(self.miss[attr], -1, self.suid[attr])
                for attr in equality_attrs
            ]
        )
        valid = codes >= 0
        rows = np.flatnonzero(valid)
        if not len(rows):
            return []
        members = codes[valid]
        order = np.argsort(members, kind="stable")
        sorted_rows = rows[order]
        boundaries = np.cumsum(np.bincount(members))
        starts = np.append(0, boundaries[:-1])
        return [
            sorted_rows[s:e]
            for s, e in zip(starts.tolist(), boundaries.tolist())
            if e - s > 1
        ]


class DenialConstraint:
    """A conjunction of predicates that must never all hold.

    Args:
        predicates: the conjuncts.
        binary: True when the constraint quantifies over tuple *pairs*.
            Unary constraints are evaluated per row.
        name: optional label used in reports.
    """

    def __init__(
        self,
        predicates: List[Predicate],
        binary: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if not predicates:
            raise ValueError("a denial constraint needs at least one predicate")
        self.predicates = list(predicates)
        self.binary = binary
        self.name = name or self._default_name()

    def _default_name(self) -> str:
        kind = "binary" if self.binary else "unary"
        return f"dc_{kind}(" + " & ".join(str(p) for p in self.predicates) + ")"

    @property
    def attributes(self) -> Set[str]:
        attrs: Set[str] = set()
        for predicate in self.predicates:
            attrs |= predicate.attributes
        return attrs

    def _row_dict(self, table: Table, index: int) -> Dict[str, Any]:
        return {attr: table.get_cell(index, attr) for attr in self.attributes}

    def violations(self, table: Table, max_pairs: int = 2_000_000) -> Set[Cell]:
        """Cells participating in at least one violation.

        Unary constraints flag the involved attributes of each violating
        row.  Binary constraints group rows by their equality-join keys
        (the ``t1.A == t2.A`` predicates) to avoid the full quadratic scan,
        then flag the attributes of both rows in each violating pair.
        ``max_pairs`` caps the pairwise work for pathological blocks.
        """
        if use_reference_kernels():
            if not self.binary:
                return self._unary_violations(table)
            return self._binary_violations(table, max_pairs)
        cache = current_cache()
        key = None
        if cache is not None:
            key = artifact_key(
                "dc_violations@v1",
                [table_fingerprint(table)],
                {
                    "predicates": self._predicate_fingerprint(),
                    "binary": self.binary,
                    "max_pairs": max_pairs,
                },
            )
            entry = cache.get(key)
            if entry is not None:
                attrs = sorted(self.attributes)
                return {
                    (i, attr)
                    for i in entry.arrays["rows"].tolist()
                    for attr in attrs
                }
        if not self.binary:
            cells = self._unary_violations(table)
        else:
            cells = self._binary_violations(table, max_pairs)
        if cache is not None and key is not None:
            rows = np.asarray(
                sorted({i for i, _ in cells}), dtype=np.int64
            )
            cache.put(key, arrays={"rows": rows}, meta={"n_rows": len(rows)})
        return cells

    def _predicate_fingerprint(self) -> List[List[Any]]:
        """JSON-stable constraint identity for cache keys."""
        return [
            [p.left_attr, p.op, p.right_attr, repr(p.constant), p.right_tuple]
            for p in self.predicates
        ]

    def _unary_violations(self, table: Table) -> Set[Cell]:
        if use_reference_kernels():
            from repro.constraints._reference import reference_unary_violations

            return reference_unary_violations(self, table)
        with kernel_stage("dc.unary"):
            arrays = _ConstraintArrays(self, table)
            flagged = arrays.conjunction(np.arange(table.n_rows), None)
            return {
                (i, attr)
                for i in np.flatnonzero(flagged).tolist()
                for attr in self.attributes
            }

    def _binary_violations(self, table: Table, max_pairs: int) -> Set[Cell]:
        if use_reference_kernels():
            from repro.constraints._reference import (
                reference_binary_violations,
            )

            return reference_binary_violations(self, table, max_pairs)
        with kernel_stage("dc.binary"):
            return self._binary_violations_vectorized(table, max_pairs)

    def _binary_violations_vectorized(
        self, table: Table, max_pairs: int
    ) -> Set[Cell]:
        equality_attrs = [
            p.left_attr
            for p in self.predicates
            if p.op == "==" and p.right_attr == p.left_attr and p.constant is None
        ]
        arrays = _ConstraintArrays(self, table)
        if equality_attrs:
            candidate_blocks = arrays.equality_blocks(equality_attrs)
        else:
            candidate_blocks = [np.arange(table.n_rows, dtype=np.int64)]
        flagged = np.zeros(table.n_rows, dtype=bool)
        # The scalar scan evaluated ordered pairs block by block (rows
        # ascending, ``ia`` outer / ``ib`` inner, diagonal skipped) and
        # stopped after exactly ``max_pairs`` evaluations; generating the
        # same enumeration prefix keeps capped results identical.
        remaining = max_pairs
        for block in candidate_blocks:
            span = len(block) - 1
            take = min(len(block) * span, remaining)
            for start in range(0, take, _PAIR_CHUNK):
                ticket = np.arange(start, min(start + _PAIR_CHUNK, take))
                ia_local = ticket // span
                offset = ticket % span
                ib_local = offset + (offset >= ia_local)
                left_rows = block[ia_local]
                right_rows = block[ib_local]
                hit = arrays.conjunction(left_rows, right_rows)
                flagged[left_rows[hit]] = True
                flagged[right_rows[hit]] = True
            remaining -= take
            if remaining <= 0:
                break
        return {
            (i, attr)
            for i in np.flatnonzero(flagged).tolist()
            for attr in self.attributes
        }

    def violating_row_pairs(
        self, table: Table, max_pairs: int = 200_000
    ) -> List[Tuple[int, int]]:
        """Row-index pairs (i < j) that jointly violate a binary constraint."""
        if not self.binary:
            raise ValueError("row pairs only defined for binary constraints")
        if use_reference_kernels():
            from repro.constraints._reference import (
                reference_violating_row_pairs,
            )

            return reference_violating_row_pairs(self, table, max_pairs)
        with kernel_stage("dc.pairs"):
            arrays = _ConstraintArrays(self, table)
            n = table.n_rows
            take = min(n * (n - 1) // 2, max_pairs)
            indices = np.arange(n, dtype=np.int64)
            starts = indices * (n - 1) - indices * (indices - 1) // 2
            pairs: List[Tuple[int, int]] = []
            for chunk in range(0, take, _PAIR_CHUNK):
                ticket = np.arange(chunk, min(chunk + _PAIR_CHUNK, take))
                i = np.searchsorted(starts, ticket, side="right") - 1
                j = ticket - starts[i] + i + 1
                hit = arrays.conjunction(i, j) | arrays.conjunction(j, i)
                pairs.extend(zip(i[hit].tolist(), j[hit].tolist()))
            return pairs

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"DenialConstraint({self.name})"
