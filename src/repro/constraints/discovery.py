"""Automatic FD discovery (the FDX-profiler analogue of Section 5).

FDX frames FD discovery as sparse structure learning over attribute
pair statistics.  We reproduce the behaviour with an information-theoretic
scorer: an FD candidate ``lhs -> rhs`` is accepted when the determinant
explains (almost) all of the dependent's entropy -- equivalently, when the
g3 error (minimum fraction of rows to remove for the FD to hold exactly)
falls below a noise tolerance.  Candidates are searched lattice-style with
minimality pruning, smallest determinant sets first.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constraints.fd import FunctionalDependency
from repro.dataset.table import Table, is_missing


def _column_keys(table: Table, attr: str) -> List[Optional[str]]:
    return [
        None if is_missing(v) else str(v).strip() for v in table.column(attr)
    ]


def g3_error(table: Table, lhs: Sequence[str], rhs: str) -> float:
    """Fraction of rows that must be removed for lhs -> rhs to hold.

    This is Kivinen & Mannila's g3 measure; 0 means the FD holds exactly.
    Rows with missing determinant values are skipped.
    """
    lhs_keys = [_column_keys(table, a) for a in lhs]
    rhs_keys = _column_keys(table, rhs)
    groups: Dict[Tuple[str, ...], Dict[Optional[str], int]] = {}
    considered = 0
    for i in range(table.n_rows):
        key_parts = tuple(keys[i] for keys in lhs_keys)
        if any(part is None for part in key_parts):
            continue
        considered += 1
        groups.setdefault(key_parts, {})
        value = rhs_keys[i]
        groups[key_parts][value] = groups[key_parts].get(value, 0) + 1
    if considered == 0:
        return 1.0
    keep = sum(max(counts.values()) for counts in groups.values())
    return 1.0 - keep / considered


def _distinct_count(table: Table, attr: str) -> int:
    return len({k for k in _column_keys(table, attr) if k is not None})


def discover_fds(
    table: Table,
    max_lhs: int = 2,
    noise_tolerance: float = 0.01,
    max_distinct_fraction: float = 0.9,
    columns: Optional[Sequence[str]] = None,
) -> List[FunctionalDependency]:
    """Discover approximate FDs in a table.

    Args:
        max_lhs: maximum determinant size (lattice level).
        noise_tolerance: accept a candidate when its g3 error is at most
            this (FDX's noisy-data tolerance).
        max_distinct_fraction: skip determinant attributes that are almost
            keys (they trivially determine everything and yield useless
            constraints) -- the same key-filtering FDX applies.
        columns: restrict the search to these attributes.

    Returns:
        Minimal FDs (no discovered FD's determinant is a superset of
        another discovered FD with the same dependent), ordered by
        determinant size then name.
    """
    if max_lhs < 1:
        raise ValueError("max_lhs must be >= 1")
    if not 0.0 <= noise_tolerance < 1.0:
        raise ValueError("noise_tolerance must be in [0, 1)")
    names = list(columns) if columns is not None else table.column_names
    n_rows = max(table.n_rows, 1)
    usable = [
        name
        for name in names
        if 1 < _distinct_count(table, name) <= max_distinct_fraction * n_rows
    ]
    constant = [name for name in names if _distinct_count(table, name) <= 1]
    found: List[FunctionalDependency] = []
    for rhs in names:
        if rhs in constant:
            continue  # constant columns are determined by anything
        accepted_lhs: List[Tuple[str, ...]] = []
        for size in range(1, max_lhs + 1):
            for lhs in itertools.combinations(
                [a for a in usable if a != rhs], size
            ):
                # Minimality: skip supersets of an accepted determinant.
                if any(set(prev) <= set(lhs) for prev in accepted_lhs):
                    continue
                if g3_error(table, lhs, rhs) <= noise_tolerance:
                    accepted_lhs.append(lhs)
                    found.append(FunctionalDependency(lhs, rhs))
    found.sort(key=lambda fd: (len(fd.lhs), str(fd)))
    return found
