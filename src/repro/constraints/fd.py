"""Functional dependencies and their conversion to denial constraints.

REIN auto-generates FDs with the FDX analogue and then "manually converts
them into denial constraints" (Section 5); :meth:`FunctionalDependency.
to_denial_constraint` performs that conversion programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.constraints.dc import DenialConstraint, Predicate
from repro.dataset.table import Cell, Table, is_missing


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``lhs -> rhs``: rows agreeing on lhs must agree on rhs."""

    lhs: Tuple[str, ...]
    rhs: str

    def __init__(self, lhs, rhs: str) -> None:
        lhs_tuple = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        if not lhs_tuple:
            raise ValueError("FD needs at least one determinant attribute")
        if rhs in lhs_tuple:
            raise ValueError("rhs must not appear in lhs")
        object.__setattr__(self, "lhs", lhs_tuple)
        object.__setattr__(self, "rhs", rhs)

    def __str__(self) -> str:
        return f"{','.join(self.lhs)} -> {self.rhs}"

    def _groups(self, table: Table) -> Dict[Tuple, List[int]]:
        """Rows grouped by their (non-missing) lhs values."""
        groups: Dict[Tuple, List[int]] = {}
        for i in range(table.n_rows):
            key_parts = []
            valid = True
            for attr in self.lhs:
                value = table.get_cell(i, attr)
                if is_missing(value):
                    valid = False
                    break
                key_parts.append(str(value).strip())
            if valid:
                groups.setdefault(tuple(key_parts), []).append(i)
        return groups

    def violations(self, table: Table) -> Set[Cell]:
        """Cells involved in FD violations.

        Within each lhs group holding more than one distinct rhs value, the
        *minority* rhs cells are flagged (majority voting identifies the
        likely-correct value, standard practice in rule-based cleaning).
        When there is no majority, every rhs cell in the group is flagged.
        """
        cells: Set[Cell] = set()
        for rows in self._groups(table).values():
            if len(rows) < 2:
                continue
            value_rows: Dict[str, List[int]] = {}
            for i in rows:
                value = table.get_cell(i, self.rhs)
                key = "␀" if is_missing(value) else str(value).strip()
                value_rows.setdefault(key, []).append(i)
            if len(value_rows) < 2:
                continue
            counts = {v: len(r) for v, r in value_rows.items()}
            top = max(counts.values())
            majority = [v for v, c in counts.items() if c == top]
            if len(majority) == 1:
                for value, members in value_rows.items():
                    if value != majority[0]:
                        cells.update((i, self.rhs) for i in members)
            else:
                for members in value_rows.values():
                    cells.update((i, self.rhs) for i in members)
        return cells

    def majority_repairs(self, table: Table) -> Dict[Cell, object]:
        """Proposed repairs: violating rhs cells -> group-majority value."""
        repairs: Dict[Cell, object] = {}
        for rows in self._groups(table).values():
            if len(rows) < 2:
                continue
            value_rows: Dict[str, List[int]] = {}
            originals: Dict[str, object] = {}
            for i in rows:
                value = table.get_cell(i, self.rhs)
                key = "␀" if is_missing(value) else str(value).strip()
                value_rows.setdefault(key, []).append(i)
                originals.setdefault(key, value)
            if len(value_rows) < 2:
                continue
            counts = {v: len(r) for v, r in value_rows.items()}
            top = max(counts.values())
            majority = [v for v, c in counts.items() if c == top]
            if len(majority) != 1 or majority[0] == "␀":
                continue
            majority_value = originals[majority[0]]
            for value, members in value_rows.items():
                if value != majority[0]:
                    for i in members:
                        repairs[(i, self.rhs)] = majority_value
        return repairs

    def holds_on(self, table: Table) -> bool:
        """True when the table has no FD violations."""
        return not self.violations(table)

    def to_denial_constraint(self) -> DenialConstraint:
        """The standard DC encoding: not (t1.lhs==t2.lhs & t1.rhs!=t2.rhs)."""
        predicates = [
            Predicate(attr, "==", attr) for attr in self.lhs
        ] + [Predicate(self.rhs, "!=", self.rhs)]
        return DenialConstraint(predicates, binary=True, name=f"fd({self})")
