"""Functional dependencies and their conversion to denial constraints.

REIN auto-generates FDs with the FDX analogue and then "manually converts
them into denial constraints" (Section 5); :meth:`FunctionalDependency.
to_denial_constraint` performs that conversion programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cache.keys import artifact_key, table_fingerprint
from repro.cache.store import current_cache
from repro.constraints._reference import (
    reference_fd_majority_repairs,
    reference_fd_violations,
)
from repro.constraints.dc import DenialConstraint, Predicate
from repro.dataset.columnar import (
    combine_codes,
    intern_values,
    normalized_column,
)
from repro.dataset.table import Cell, Table, is_missing
from repro.kernels import kernel_stage, use_reference_kernels


def _strip_or_none(value: object) -> Optional[str]:
    return None if is_missing(value) else str(value).strip()


def _rhs_key(value: object) -> str:
    return "␀" if is_missing(value) else str(value).strip()


class _GroupStats:
    """Hash-group join of lhs groups against rhs values, as arrays.

    ``rows`` are the (ascending) row indices with complete lhs keys;
    ``g``/``r`` their group and rhs-value ids; the ``pair_*`` arrays
    describe the distinct (group, rhs value) combinations.  Both FD
    kernels read group verdicts off these arrays instead of re-scanning
    rows per group.
    """

    def __init__(self, fd: "FunctionalDependency", table: Table) -> None:
        group_codes = combine_codes(
            [
                intern_values(
                    normalized_column(table.column(attr), _strip_or_none)
                )[0]
                for attr in fd.lhs
            ]
        )
        rhs_uids, self.rhs_values = intern_values(
            normalized_column(table.column(fd.rhs), _rhs_key)
        )
        valid = group_codes >= 0
        self.rows = np.flatnonzero(valid)
        self.g = group_codes[valid]
        self.r = rhs_uids[valid]
        self.n_groups = int(self.g.max()) + 1 if len(self.g) else 0
        width = max(len(self.rhs_values), 1)
        self.pairs, self.pair_inverse, self.pair_counts = np.unique(
            self.g * width + self.r, return_inverse=True, return_counts=True
        )
        self.pair_inverse = self.pair_inverse.ravel()
        self.pair_group = self.pairs // width
        self.pair_rhs = self.pairs % width
        self.group_sizes = np.bincount(self.g, minlength=self.n_groups)
        self.n_keys = np.bincount(self.pair_group, minlength=self.n_groups)
        self.top = np.zeros(self.n_groups, dtype=np.int64)
        np.maximum.at(self.top, self.pair_group, self.pair_counts)
        self.is_top = self.pair_counts == self.top[self.pair_group]
        self.n_top = np.bincount(
            self.pair_group[self.is_top], minlength=self.n_groups
        )
        # Groups of size >= 2 holding >= 2 distinct rhs keys violate.
        self.violating_group = (self.group_sizes >= 2) & (self.n_keys >= 2)

    def violating_rows(self) -> np.ndarray:
        """Rows the minority-vote scan flags (tie: whole group)."""
        if not self.n_groups:
            return np.zeros(0, dtype=np.int64)
        tie = self.n_top[self.g] > 1
        minority = self.pair_counts[self.pair_inverse] != self.top[self.g]
        return self.rows[self.violating_group[self.g] & (tie | minority)]


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``lhs -> rhs``: rows agreeing on lhs must agree on rhs."""

    lhs: Tuple[str, ...]
    rhs: str

    def __init__(self, lhs, rhs: str) -> None:
        lhs_tuple = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        if not lhs_tuple:
            raise ValueError("FD needs at least one determinant attribute")
        if rhs in lhs_tuple:
            raise ValueError("rhs must not appear in lhs")
        object.__setattr__(self, "lhs", lhs_tuple)
        object.__setattr__(self, "rhs", rhs)

    def __str__(self) -> str:
        return f"{','.join(self.lhs)} -> {self.rhs}"

    def _groups(self, table: Table) -> Dict[Tuple, List[int]]:
        """Rows grouped by their (non-missing) lhs values."""
        groups: Dict[Tuple, List[int]] = {}
        for i in range(table.n_rows):
            key_parts = []
            valid = True
            for attr in self.lhs:
                value = table.get_cell(i, attr)
                if is_missing(value):
                    valid = False
                    break
                key_parts.append(str(value).strip())
            if valid:
                groups.setdefault(tuple(key_parts), []).append(i)
        return groups

    def violations(self, table: Table) -> Set[Cell]:
        """Cells involved in FD violations.

        Within each lhs group holding more than one distinct rhs value, the
        *minority* rhs cells are flagged (majority voting identifies the
        likely-correct value, standard practice in rule-based cleaning).
        When there is no majority, every rhs cell in the group is flagged.
        """
        if use_reference_kernels():
            return reference_fd_violations(self, table)
        cache = current_cache()
        key = None
        if cache is not None:
            key = artifact_key(
                "fd_violations@v1",
                [table_fingerprint(table)],
                {"lhs": list(self.lhs), "rhs": self.rhs},
            )
            entry = cache.get(key)
            if entry is not None:
                return {
                    (i, self.rhs) for i in entry.arrays["rows"].tolist()
                }
        with kernel_stage("fd.violations"):
            flagged = _GroupStats(self, table).violating_rows()
        if cache is not None and key is not None:
            cache.put(
                key,
                arrays={"rows": np.sort(flagged)},
                meta={"n_rows": int(len(flagged))},
            )
        return {(i, self.rhs) for i in flagged.tolist()}

    def majority_repairs(self, table: Table) -> Dict[Cell, object]:
        """Proposed repairs: violating rhs cells -> group-majority value."""
        if use_reference_kernels():
            return reference_fd_majority_repairs(self, table)
        with kernel_stage("fd.repairs"):
            stats = _GroupStats(self, table)
            if not stats.n_groups:
                return {}
            # Unique-majority groups whose majority value is not missing.
            majority_pair = np.full(stats.n_groups, -1, dtype=np.int64)
            top_indices = np.flatnonzero(stats.is_top)
            majority_pair[stats.pair_group[top_indices]] = top_indices
            eligible = stats.violating_group & (stats.n_top == 1)
            safe_pair = np.maximum(majority_pair, 0)
            majority_missing = np.fromiter(
                (
                    stats.rhs_values[uid] == "␀"
                    for uid in stats.pair_rhs[safe_pair].tolist()
                ),
                bool,
                count=stats.n_groups,
            )
            eligible &= (majority_pair >= 0) & ~majority_missing
            # The repair value is the raw cell at the group's first row
            # holding the majority key (``originals.setdefault`` order).
            first_row = np.full(len(stats.pairs), table.n_rows, dtype=np.int64)
            np.minimum.at(first_row, stats.pair_inverse, stats.rows)
            minority = (
                stats.pair_counts[stats.pair_inverse]
                != stats.top[stats.g]
            )
            flagged = eligible[stats.g] & minority
            column = table.column(self.rhs)
            sources = first_row[safe_pair[stats.g[flagged]]]
            return {
                (i, self.rhs): column[source]
                for i, source in zip(
                    stats.rows[flagged].tolist(), sources.tolist()
                )
            }

    def holds_on(self, table: Table) -> bool:
        """True when the table has no FD violations."""
        return not self.violations(table)

    def to_denial_constraint(self) -> DenialConstraint:
        """The standard DC encoding: not (t1.lhs==t2.lhs & t1.rhs!=t2.rhs)."""
        predicates = [
            Predicate(attr, "==", attr) for attr in self.lhs
        ] + [Predicate(self.rhs, "!=", self.rhs)]
        return DenialConstraint(predicates, binary=True, name=f"fd({self})")
