"""Syntactic column patterns (regular expressions).

Pattern signals feed NADEEF-style pattern-violation detection and the error
injection pipeline (e.g. what a "valid" value looks like before a typo).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Set

from repro.dataset.table import Cell, Table, is_missing


@dataclass(frozen=True)
class ColumnPattern:
    """A regex a column's non-missing values must fully match."""

    column: str
    regex: str
    name: str = ""

    def __post_init__(self) -> None:
        re.compile(self.regex)  # fail fast on bad patterns

    def violations(self, table: Table) -> Set[Cell]:
        """Cells whose value does not fully match the pattern."""
        compiled = re.compile(self.regex)
        cells: Set[Cell] = set()
        for i, value in enumerate(table.column(self.column)):
            if is_missing(value):
                continue
            if not compiled.fullmatch(str(value).strip()):
                cells.add((i, self.column))
        return cells

    def matches(self, value: object) -> bool:
        if is_missing(value):
            return True
        return re.fullmatch(self.regex, str(value).strip()) is not None


#: Reusable building blocks for dataset generators and signal files.
_COMMON: Dict[str, str] = {
    "integer": r"[+-]?\d+",
    "decimal": r"[+-]?\d+(\.\d+)?([eE][+-]?\d+)?",
    "word": r"[A-Za-z][A-Za-z \-'&\.]*",
    "alphanumeric": r"[A-Za-z0-9][A-Za-z0-9 \-_\.]*",
    "zip_code": r"\d{5}",
    "percentage": r"\d{1,3}(\.\d+)?%?",
    "year": r"(19|20)\d{2}",
    "state_code": r"[A-Z]{2}",
    "ounce": r"\d+(\.\d+)?\s*(oz\.?|ounce)",
}


def common_patterns() -> Dict[str, str]:
    """Named regex building blocks for generator/signal definitions."""
    return dict(_COMMON)
