"""The cleaning context: everything a detector or repair method may consume.

REIN's benchmark controller hands each tool the dirty dataset plus the
"cleaning signals" it requires (Table 1): denial constraints, FD rules,
patterns, knowledge bases, key columns, and -- for ML-supported methods --
an oracle that simulates a human annotator using the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.patterns import ColumnPattern
from repro.dataset.table import Cell, Table, values_equal

if TYPE_CHECKING:  # avoid a context <-> resilience import cycle
    from repro.resilience.deadline import Deadline


@dataclass
class CleaningContext:
    """Inputs shared by detectors and repair methods.

    Attributes:
        dirty: the dataset version to clean.
        clean: optional ground truth.  ML-supported methods use it only
            through :meth:`oracle_is_dirty` / :meth:`oracle_value`, which
            simulate the human annotator of the original papers.
        constraints: denial constraints (HoloClean/NADEEF signals).
        fds: functional dependency rules (NADEEF signal).
        patterns: per-column syntactic patterns (NADEEF signal).
        knowledge_base: KATARA's crowdsourced KB analogue.
        key_columns: unique-key attributes for key-collision dedup.
        label_column: the class attribute for mislabel detection.
        task: associated ML task (classification/regression/clustering).
        seed: RNG seed for stochastic tools.
        deadline: optional wall-clock budget for the current stage; long
            loops should call :meth:`check_deadline` so runaway passes
            surface as ``DeadlineExceeded`` instead of wedging the suite.
        clock: optional timing source used by the detector/repair base
            classes (chaos tests inject a fake clock for determinism).
    """

    dirty: Table
    clean: Optional[Table] = None
    constraints: List[DenialConstraint] = field(default_factory=list)
    fds: List[FunctionalDependency] = field(default_factory=list)
    patterns: List[ColumnPattern] = field(default_factory=list)
    knowledge_base: Optional[Any] = None
    key_columns: List[str] = field(default_factory=list)
    label_column: Optional[str] = None
    task: Optional[str] = None
    seed: int = 0
    deadline: Optional["Deadline"] = None
    clock: Optional[Callable[[], float]] = None

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + salt)

    def check_deadline(self, label: str = "") -> None:
        """Cooperative deadline check; no-op without a deadline."""
        if self.deadline is not None:
            self.deadline.check(label)

    @property
    def has_ground_truth(self) -> bool:
        return self.clean is not None

    def oracle_is_dirty(self, cell: Cell) -> bool:
        """Annotator simulation: is this cell erroneous?

        Raises RuntimeError when no ground truth is available, matching the
        paper's observation that RAHA/ED2/Meta need the ground truth (or a
        human) to label their training samples.
        """
        if self.clean is None:
            raise RuntimeError("no ground truth available for oracle labels")
        row, column = cell
        return not values_equal(
            self.dirty.get_cell(row, column), self.clean.get_cell(row, column)
        )

    def oracle_value(self, cell: Cell) -> Any:
        """Annotator simulation: the correct value of a cell."""
        if self.clean is None:
            raise RuntimeError("no ground truth available for oracle values")
        row, column = cell
        return self.clean.get_cell(row, column)

    def all_constraints(self) -> List[DenialConstraint]:
        """Denial constraints plus DC-encodings of the FD rules."""
        return list(self.constraints) + [
            fd.to_denial_constraint() for fd in self.fds
        ]
