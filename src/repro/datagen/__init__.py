"""Synthetic analogues of the 14 benchmark datasets (Table 4).

The public datasets REIN uses are unavailable offline, so each generator
reproduces its dataset's *shape*: row/column counts, numeric/categorical
mix, domain structure (FDs, key columns, semantic relations), associated ML
task, and the error profile and rate of Table 4.  Ground truth is available
by construction, which is exactly the property REIN engineered via error
injection.
"""

from repro.datagen.benchmark_dataset import BenchmarkDataset
from repro.datagen.generators import (
    DATASET_NAMES,
    dataset_spec,
    generate,
    table4_rows,
)
from repro.datagen.io import load_dataset, save_dataset

__all__ = [
    "BenchmarkDataset",
    "DATASET_NAMES",
    "dataset_spec",
    "generate",
    "load_dataset",
    "save_dataset",
    "table4_rows",
]
