"""Container tying a dataset's versions and cleaning signals together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.patterns import ColumnPattern
from repro.context import CleaningContext
from repro.dataset.table import Cell, Table

if TYPE_CHECKING:  # avoid a datagen <-> resilience import cycle
    from repro.resilience.deadline import Deadline


@dataclass
class BenchmarkDataset:
    """A generated benchmark dataset: clean + dirty versions + signals.

    Attributes mirror Table 4 (task, error profile) and the cleaning
    signals of Table 1 that the dataset supports (FDs, patterns, KB, keys).
    """

    name: str
    clean: Table
    dirty: Table
    cells_by_type: Dict[str, Set[Cell]]
    task: Optional[str]
    target: Optional[str]
    domain: str = ""
    key_columns: List[str] = field(default_factory=list)
    fds: List[FunctionalDependency] = field(default_factory=list)
    constraints: List[DenialConstraint] = field(default_factory=list)
    patterns: List[ColumnPattern] = field(default_factory=list)
    knowledge_base: Optional[object] = None

    @property
    def error_cells(self) -> Set[Cell]:
        cells: Set[Cell] = set()
        for group in self.cells_by_type.values():
            cells |= group
        return cells

    @property
    def error_types(self) -> Set[str]:
        return {t for t, cells in self.cells_by_type.items() if cells}

    def error_rate(self) -> float:
        total = self.dirty.n_rows * self.dirty.n_columns
        return len(self.error_cells) / total if total else 0.0

    def context(
        self,
        seed: int = 0,
        with_ground_truth: bool = True,
        deadline: Optional["Deadline"] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> CleaningContext:
        """Build the cleaning context detectors/repairs consume.

        ``deadline``/``clock`` thread the resilience layer's wall-clock
        budget and (test-injectable) timing source into the tools.
        """
        return CleaningContext(
            dirty=self.dirty,
            clean=self.clean if with_ground_truth else None,
            constraints=list(self.constraints),
            fds=list(self.fds),
            patterns=list(self.patterns),
            knowledge_base=self.knowledge_base,
            key_columns=list(self.key_columns),
            label_column=self.target if self.task == "classification" else None,
            task=self.task,
            seed=seed,
            deadline=deadline,
            clock=clock,
        )

    def summary_row(self) -> Dict[str, object]:
        """One Table 4 row for this dataset."""
        schema = self.clean.schema
        return {
            "dataset": self.name,
            "rows": self.clean.n_rows,
            "columns": len(schema),
            "numerical": len(schema.numerical_names),
            "categorical": len(schema.categorical_names),
            "error_rate": round(self.error_rate(), 3),
            "errors": ", ".join(sorted(self.error_types)),
            "domain": self.domain,
            "task": self.task or "-",
        }
