"""Generators for the 14 dataset analogues of Table 4.

Each generator builds a *clean* table with learnable latent structure
(cluster/class/regression signal, functional dependencies, key columns,
semantic relations for the knowledge base), then injects the dataset's
error profile at its Table 4 error rate, returning a
:class:`~repro.datagen.benchmark_dataset.BenchmarkDataset`.

Row counts default to Table 4's but can be overridden (the scalability and
unit-test workloads need smaller/larger instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constraints.dc import DenialConstraint, Predicate
from repro.constraints.fd import FunctionalDependency
from repro.constraints.patterns import ColumnPattern
from repro.dataset.schema import CATEGORICAL, NUMERICAL, Schema
from repro.dataset.table import Table
from repro.datagen.benchmark_dataset import BenchmarkDataset
from repro.detectors.katara import KnowledgeBase
from repro.errors.injectors import (
    CompositeInjector,
    DuplicateInjector,
    ErrorInjector,
    ImplicitMissingInjector,
    InconsistencyInjector,
    MislabelInjector,
    MissingValueInjector,
    OutlierInjector,
    SwapInjector,
    TypoInjector,
)
from repro.errors.bart import BartEngine

CLASSIFICATION = "classification"
REGRESSION = "regression"
CLUSTERING = "clustering"


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: Table 4 row metadata plus the generator callable."""

    name: str
    table4_rows: int
    error_rate: float
    errors: str
    domain: str
    task: Optional[str]
    build: Callable[[int, int], BenchmarkDataset]


def _latent_clusters(
    rng: np.random.Generator,
    n_rows: int,
    n_clusters: int,
    n_features: int,
    spread: float = 1.0,
    separation: float = 6.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster assignments and numeric features with real cluster structure."""
    centers = rng.normal(0.0, separation, size=(n_clusters, n_features))
    assignment = rng.integers(0, n_clusters, size=n_rows)
    features = centers[assignment] + rng.normal(
        0.0, spread, size=(n_rows, n_features)
    )
    return assignment, features


def _numeric_columns(prefix: str, count: int) -> List[Tuple[str, str]]:
    return [(f"{prefix}{i}", NUMERICAL) for i in range(count)]


# ----------------------------------------------------------------------
# Classification datasets
# ----------------------------------------------------------------------
def _build_beers(n_rows: int, seed: int) -> BenchmarkDataset:
    """Beers (business, C): breweries, styles, cities; MVs+rules+typos."""
    rng = np.random.default_rng(seed)
    styles = ["ipa", "lager", "stout", "pilsner", "porter", "wheat ale"]
    cities = ["portland", "denver", "chicago", "austin", "boston", "seattle"]
    state_of = {
        "portland": "OR", "denver": "CO", "chicago": "IL",
        "austin": "TX", "boston": "MA", "seattle": "WA",
    }
    n_breweries = max(6, n_rows // 12)
    brewery_city = {
        f"brewery_{b:03d}": cities[int(rng.integers(len(cities)))]
        for b in range(n_breweries)
    }
    style_abv = {s: 4.0 + i * 0.8 for i, s in enumerate(styles)}
    style_ibu = {s: 20.0 + i * 12.0 for i, s in enumerate(styles)}
    breweries = [
        f"brewery_{int(rng.integers(n_breweries)):03d}" for _ in range(n_rows)
    ]
    chosen_styles = [styles[int(rng.integers(len(styles)))] for _ in range(n_rows)]
    city_values = [brewery_city[b] for b in breweries]
    schema = Schema.from_pairs(
        [
            ("id", NUMERICAL),
            ("abv", NUMERICAL),
            ("ibu", NUMERICAL),
            ("ounces", NUMERICAL),
            ("srm", NUMERICAL),
            ("rating", NUMERICAL),
            ("name", CATEGORICAL),
            ("style", CATEGORICAL),
            ("brewery", CATEGORICAL),
            ("city", CATEGORICAL),
            ("state", CATEGORICAL),
        ]
    )
    clean = Table(
        schema,
        {
            "id": [float(i) for i in range(n_rows)],
            "abv": [
                style_abv[s] + rng.normal(0, 0.3) for s in chosen_styles
            ],
            "ibu": [
                style_ibu[s] + rng.normal(0, 4.0) for s in chosen_styles
            ],
            "ounces": [
                float(rng.choice([12.0, 16.0, 24.0])) for _ in range(n_rows)
            ],
            "srm": [
                10.0 + style_ibu[s] / 10.0 + rng.normal(0, 1.0)
                for s in chosen_styles
            ],
            "rating": [
                3.0 + rng.normal(0, 0.5) for _ in range(n_rows)
            ],
            "name": [f"beer {i:04d}" for i in range(n_rows)],
            "style": chosen_styles,
            "brewery": breweries,
            "city": city_values,
            "state": [state_of[c] for c in city_values],
        },
    )
    fds = [
        FunctionalDependency(("brewery",), "city"),
        FunctionalDependency(("city",), "state"),
    ]
    kb = KnowledgeBase()
    kb.add_domain("city", cities)
    kb.add_domain("state", sorted(set(state_of.values())))
    kb.add_domain("style", styles)
    kb.add_relation("city", "state", list(state_of.items()))
    patterns = [
        ColumnPattern("state", r"[A-Z]{2}", "state_code"),
        ColumnPattern("city", r"[a-z ]+", "city_word"),
    ]
    feature_cols = ["abv", "ibu", "srm", "rating", "city", "state", "brewery"]
    injector = CompositeInjector(
        [
            MissingValueInjector(columns=["abv", "ibu", "rating", "name"]),
            TypoInjector(columns=["city", "state", "ibu"]),
            # FD-style rule violations via BART come separately below.
        ]
    )
    result = injector.inject(clean, 0.16 * 0.7, np.random.default_rng(seed + 1))
    bart = BartEngine([fd.to_denial_constraint() for fd in fds])
    result = result.merge(
        bart.inject(result.dirty, 0.16 * 0.3, np.random.default_rng(seed + 2))
    )
    return BenchmarkDataset(
        name="Beers",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=CLASSIFICATION,
        target="style",
        domain="Business",
        fds=fds,
        patterns=patterns,
        knowledge_base=kb,
        key_columns=["id"],
    )


def _build_citation(n_rows: int, seed: int) -> BenchmarkDataset:
    """Citation (research, C): titles + binary label; duplicates+mislabels."""
    rng = np.random.default_rng(seed)
    topics = ["database", "network", "vision", "systems", "theory"]
    titles = []
    labels = []
    years = []
    for i in range(n_rows):
        topic = topics[int(rng.integers(len(topics)))]
        titles.append(f"{topic} paper {i:05d} on {topic} methods")
        relevant = topic in ("database", "systems")
        labels.append("relevant" if relevant else "other")
        # Publication year carries the class signal (relevant papers skew
        # recent), so the classification task is learnable from the
        # non-title feature -- unique titles one-hot encode to nothing.
        center = 2012.0 if relevant else 1998.0
        years.append(float(np.clip(rng.normal(center, 4.0), 1980, 2023)))
    schema = Schema.from_pairs(
        [("year", NUMERICAL), ("title", CATEGORICAL), ("label", CATEGORICAL)]
    )
    clean = Table(schema, {"year": years, "title": titles, "label": labels})
    injector = CompositeInjector(
        [
            DuplicateInjector(fuzziness=0.2, fuzz_columns=["title", "year"]),
            MislabelInjector("label"),
        ]
    )
    result = injector.inject(clean, 0.2, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name="Citation",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=CLASSIFICATION,
        target="label",
        domain="Research",
        key_columns=["title"],
    )


def _build_adult(n_rows: int, seed: int) -> BenchmarkDataset:
    """Adult (social, C): census-style; rule violations + outliers, high rate."""
    rng = np.random.default_rng(seed)
    educations = [
        "hs-grad", "some-college", "bachelors", "masters", "doctorate",
        "11th", "assoc",
    ]
    edu_num = {e: float(i + 1) for i, e in enumerate(educations)}
    occupations = ["tech", "sales", "clerical", "craft", "exec", "service"]
    marital = ["married", "never-married", "divorced"]
    relationship_of = {
        "married": "husband", "never-married": "own-child",
        "divorced": "not-in-family",
    }
    sexes = ["male", "female"]
    countries = ["united-states", "mexico", "germany", "india"]
    workclasses = ["private", "self-emp", "gov"]
    rows = []
    for i in range(n_rows):
        education = educations[int(rng.integers(len(educations)))]
        status = marital[int(rng.integers(len(marital)))]
        age = float(np.clip(rng.normal(40, 12), 17, 90))
        hours = float(np.clip(rng.normal(40, 10), 1, 99))
        gain_propensity = edu_num[education] + hours / 20.0 + (age - 40) / 20.0
        capital_gain = max(0.0, rng.normal(gain_propensity * 300, 500))
        income = (
            ">50k"
            if gain_propensity + rng.normal(0, 1.0) > 6.0
            else "<=50k"
        )
        rows.append(
            (
                age,
                float(rng.integers(10_000, 999_999)),  # fnlwgt
                edu_num[education],
                capital_gain,
                max(0.0, rng.normal(100, 150)),        # capital_loss
                hours,
                float(rng.integers(0, 2)),              # over_44 flag-ish
                workclasses[int(rng.integers(3))],
                education,
                status,
                occupations[int(rng.integers(len(occupations)))],
                relationship_of[status],
                "white" if rng.uniform() < 0.8 else "other",
                sexes[int(rng.integers(2))],
                income,
            )
        )
    schema = Schema.from_pairs(
        [
            ("age", NUMERICAL),
            ("fnlwgt", NUMERICAL),
            ("education_num", NUMERICAL),
            ("capital_gain", NUMERICAL),
            ("capital_loss", NUMERICAL),
            ("hours_per_week", NUMERICAL),
            ("senior", NUMERICAL),
            ("workclass", CATEGORICAL),
            ("education", CATEGORICAL),
            ("marital_status", CATEGORICAL),
            ("occupation", CATEGORICAL),
            ("relationship", CATEGORICAL),
            ("race", CATEGORICAL),
            ("sex", CATEGORICAL),
            ("income", CATEGORICAL),
        ]
    )
    clean = Table.from_rows(schema, rows)
    fds = [
        FunctionalDependency(("education",), "education_num"),
        FunctionalDependency(("marital_status",), "relationship"),
    ]
    constraints = [
        DenialConstraint([Predicate("age", ">", constant=90.0)], name="age_max"),
        DenialConstraint([Predicate("hours_per_week", ">", constant=99.0)],
                         name="hours_max"),
    ]
    numeric_features = [
        "age", "capital_gain", "capital_loss", "hours_per_week", "fnlwgt",
    ]
    bart = BartEngine(
        [fd.to_denial_constraint() for fd in fds] + constraints, hardness=0.8
    )
    result = bart.inject(clean, 0.58 * 0.5, np.random.default_rng(seed + 1))
    outliers = OutlierInjector(columns=numeric_features, degree=4.0)
    result = result.merge(
        outliers.inject(result.dirty, 0.58 * 0.5, np.random.default_rng(seed + 2))
    )
    return BenchmarkDataset(
        name="Adult",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=CLASSIFICATION,
        target="income",
        domain="Social",
        fds=fds,
        constraints=constraints,
    )


def _build_breast_cancer(n_rows: int, seed: int) -> BenchmarkDataset:
    """Breast Cancer (healthcare, C): 12 numeric features; MVs+typos+outliers."""
    rng = np.random.default_rng(seed)
    labels, features = _latent_clusters(rng, n_rows, 2, 11, spread=1.2,
                                        separation=3.0)
    features = np.abs(features + 8.0)
    columns = {
        f"feat{i}": features[:, i].tolist() for i in range(11)
    }
    columns["diagnosis"] = [float(v) for v in labels]
    schema = Schema.from_pairs(
        _numeric_columns("feat", 11) + [("diagnosis", NUMERICAL)]
    )
    clean = Table(schema, columns)
    feature_cols = [f"feat{i}" for i in range(11)]
    injector = CompositeInjector(
        [
            MissingValueInjector(columns=feature_cols),
            TypoInjector(columns=feature_cols[:4]),
            OutlierInjector(columns=feature_cols, degree=4.0),
        ]
    )
    result = injector.inject(clean, 0.08, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name="BreastCancer",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=CLASSIFICATION,
        target="diagnosis",
        domain="Healthcare",
    )


def _build_smart_factory(n_rows: int, seed: int) -> BenchmarkDataset:
    """Smart Factory (manufacturing, C): 19 sensors; MVs + outliers."""
    rng = np.random.default_rng(seed)
    labels, features = _latent_clusters(rng, n_rows, 3, 18, spread=1.0,
                                        separation=4.0)
    columns = {f"sensor{i}": features[:, i].tolist() for i in range(18)}
    columns["state"] = [float(v) for v in labels]
    schema = Schema.from_pairs(
        _numeric_columns("sensor", 18) + [("state", NUMERICAL)]
    )
    clean = Table(schema, columns)
    sensor_cols = [f"sensor{i}" for i in range(18)]
    injector = CompositeInjector(
        [
            MissingValueInjector(columns=sensor_cols),
            OutlierInjector(columns=sensor_cols, degree=4.0),
        ]
    )
    result = injector.inject(clean, 0.153, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name="SmartFactory",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=CLASSIFICATION,
        target="state",
        domain="Manufacturing",
    )


# ----------------------------------------------------------------------
# Regression datasets
# ----------------------------------------------------------------------
def _regression_dataset(
    name: str,
    domain: str,
    n_rows: int,
    n_features: int,
    error_rate: float,
    injectors: Callable[[List[str]], List[ErrorInjector]],
    seed: int,
    noise: float = 0.5,
) -> BenchmarkDataset:
    """Shared scaffold: linear-plus-interaction signal over n_features."""
    rng = np.random.default_rng(seed)
    features = rng.normal(0.0, 1.0, size=(n_rows, n_features))
    coefficients = rng.normal(0.0, 2.0, size=n_features)
    target = features @ coefficients
    if n_features >= 2:
        target = target + 0.5 * features[:, 0] * features[:, 1]
    target = target + rng.normal(0.0, noise, size=n_rows)
    columns = {f"x{i}": features[:, i].tolist() for i in range(n_features)}
    columns["y"] = target.tolist()
    schema = Schema.from_pairs(
        _numeric_columns("x", n_features) + [("y", NUMERICAL)]
    )
    clean = Table(schema, columns)
    feature_cols = [f"x{i}" for i in range(n_features)]
    injector = CompositeInjector(injectors(feature_cols))
    result = injector.inject(clean, error_rate, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name=name,
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=REGRESSION,
        target="y",
        domain=domain,
    )


def _build_nasa(n_rows: int, seed: int) -> BenchmarkDataset:
    return _regression_dataset(
        "Nasa", "Manufacturing", n_rows, 5, 0.08,
        lambda cols: [
            MissingValueInjector(columns=cols),
            OutlierInjector(columns=cols, degree=4.0),
        ],
        seed,
    )


def _build_bikes(n_rows: int, seed: int) -> BenchmarkDataset:
    """Bikes (business, R): bounded features + rule violations + outliers."""
    rng = np.random.default_rng(seed)
    n_features = 15
    features = rng.uniform(0.0, 1.0, size=(n_rows, n_features))
    coefficients = rng.normal(0.0, 3.0, size=n_features)
    target = features @ coefficients + rng.normal(0, 0.3, size=n_rows)
    columns = {f"x{i}": features[:, i].tolist() for i in range(n_features)}
    columns["count"] = (np.abs(target) * 100).tolist()
    schema = Schema.from_pairs(
        _numeric_columns("x", n_features) + [("count", NUMERICAL)]
    )
    clean = Table(schema, columns)
    constraints = [
        DenialConstraint([Predicate("x0", ">", constant=1.0)], name="x0_range"),
        DenialConstraint([Predicate("x1", "<", constant=0.0)], name="x1_range"),
    ]
    feature_cols = [f"x{i}" for i in range(n_features)]
    bart = BartEngine(constraints, hardness=0.7)
    result = bart.inject(clean, 0.05, np.random.default_rng(seed + 1))
    outliers = OutlierInjector(columns=feature_cols, degree=4.0)
    result = result.merge(
        outliers.inject(result.dirty, 0.05, np.random.default_rng(seed + 2))
    )
    return BenchmarkDataset(
        name="Bikes",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=REGRESSION,
        target="count",
        domain="Business",
        constraints=constraints,
    )


def _build_soil_moisture(n_rows: int, seed: int) -> BenchmarkDataset:
    """Soil Moisture (agriculture, R): wide hyperspectral table, tiny rate."""
    return _regression_dataset(
        "SoilMoisture", "Agriculture", n_rows, 128, 0.01,
        lambda cols: [
            MissingValueInjector(columns=cols),
            OutlierInjector(columns=cols, degree=4.0),
        ],
        seed,
        noise=0.2,
    )


def _build_printer(n_rows: int, seed: int) -> BenchmarkDataset:
    """3D Printer (manufacturing, R): tiny mixed table; dups + MVs."""
    rng = np.random.default_rng(seed)
    materials = ["abs", "pla"]
    infills = ["grid", "honeycomb"]
    rows = []
    for i in range(n_rows):
        material = materials[int(rng.integers(2))]
        infill = infills[int(rng.integers(2))]
        layer = float(rng.choice([0.02, 0.06, 0.1, 0.15, 0.2]))
        temperature = 200.0 + (40.0 if material == "abs" else 0.0) + rng.normal(0, 3)
        speed = float(rng.choice([40.0, 60.0, 120.0]))
        rows.append(
            (
                float(i),
                layer,
                temperature,
                speed,
                float(rng.integers(10, 91)),     # infill density
                60.0 + rng.normal(0, 5),          # bed temp
                rng.uniform(0.0, 0.4),            # elongation
                20.0 + 100 * layer + rng.normal(0, 2.0),  # roughness
                8.0 + (2.0 if material == "abs" else 0.0) + rng.normal(0, 0.5),
                temperature / 10.0 + rng.normal(0, 1.0),  # strength
                material,
                infill,
            )
        )
    schema = Schema.from_pairs(
        [
            ("id", NUMERICAL),
            ("layer_height", NUMERICAL),
            ("nozzle_temp", NUMERICAL),
            ("print_speed", NUMERICAL),
            ("infill_density", NUMERICAL),
            ("bed_temp", NUMERICAL),
            ("elongation", NUMERICAL),
            ("roughness", NUMERICAL),
            ("adhesion", NUMERICAL),
            ("strength", NUMERICAL),
            ("material", CATEGORICAL),
            ("infill_pattern", CATEGORICAL),
        ]
    )
    clean = Table.from_rows(schema, rows)
    injector = CompositeInjector(
        [
            DuplicateInjector(fuzziness=0.1),
            MissingValueInjector(columns=["nozzle_temp", "roughness"]),
            ImplicitMissingInjector(columns=["bed_temp", "print_speed"]),
        ]
    )
    result = injector.inject(clean, 0.05, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name="Printer3D",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=REGRESSION,
        target="strength",
        domain="Manufacturing",
        key_columns=["id"],
    )


def _build_mercedes(n_rows: int, seed: int) -> BenchmarkDataset:
    """Mercedes (manufacturing, R): very wide mixed table."""
    rng = np.random.default_rng(seed)
    n_numeric = 80  # scaled from 370 binary test-stand columns
    features = (rng.uniform(size=(n_rows, n_numeric)) < 0.3).astype(float)
    coefficients = rng.normal(0.0, 1.0, size=n_numeric)
    target = 100.0 + features @ coefficients * 5.0 + rng.normal(0, 2, n_rows)
    columns = {f"x{i}": features[:, i].tolist() for i in range(n_numeric)}
    codes = ["az", "bc", "fd", "j", "w", "t", "ak", "v"]
    for c in range(8):
        columns[f"cat{c}"] = [
            codes[int(rng.integers(len(codes)))] for _ in range(n_rows)
        ]
    columns["duration"] = target.tolist()
    schema = Schema.from_pairs(
        _numeric_columns("x", n_numeric)
        + [(f"cat{c}", CATEGORICAL) for c in range(8)]
        + [("duration", NUMERICAL)]
    )
    clean = Table(schema, columns)
    numeric_cols = [f"x{i}" for i in range(n_numeric)]
    injector = CompositeInjector(
        [
            OutlierInjector(columns=["duration"], degree=4.0),
            MissingValueInjector(columns=numeric_cols[:20]),
            ImplicitMissingInjector(columns=numeric_cols[20:40]),
        ]
    )
    result = injector.inject(clean, 0.05, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name="Mercedes",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=REGRESSION,
        target="duration",
        domain="Manufacturing",
    )


# ----------------------------------------------------------------------
# Clustering datasets
# ----------------------------------------------------------------------
def _clustering_dataset(
    name: str,
    domain: str,
    n_rows: int,
    n_features: int,
    n_clusters: int,
    error_rate: float,
    injectors: Callable[[List[str]], List[ErrorInjector]],
    seed: int,
) -> BenchmarkDataset:
    rng = np.random.default_rng(seed)
    _, features = _latent_clusters(
        rng, n_rows, n_clusters, n_features, spread=0.8, separation=5.0
    )
    columns = {f"x{i}": features[:, i].tolist() for i in range(n_features)}
    schema = Schema.from_pairs(_numeric_columns("x", n_features))
    clean = Table(schema, columns)
    feature_cols = [f"x{i}" for i in range(n_features)]
    injector = CompositeInjector(injectors(feature_cols))
    result = injector.inject(clean, error_rate, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name=name,
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=CLUSTERING,
        target=None,
        domain=domain,
    )


def _build_water(n_rows: int, seed: int) -> BenchmarkDataset:
    return _clustering_dataset(
        "Water", "Manufacturing", n_rows, 38, 4, 0.14,
        lambda cols: [
            OutlierInjector(columns=cols, degree=4.0),
            ImplicitMissingInjector(columns=cols),
        ],
        seed,
    )


def _build_har(n_rows: int, seed: int) -> BenchmarkDataset:
    """HAR (wearables, UC): 3 numeric sensors + activity tag."""
    rng = np.random.default_rng(seed)
    assignment, features = _latent_clusters(rng, n_rows, 4, 3, spread=0.7,
                                            separation=5.0)
    activities = ["walking", "sitting", "standing", "laying"]
    schema = Schema.from_pairs(
        _numeric_columns("acc", 3) + [("activity", CATEGORICAL)]
    )
    clean = Table(
        schema,
        {
            "acc0": features[:, 0].tolist(),
            "acc1": features[:, 1].tolist(),
            "acc2": features[:, 2].tolist(),
            "activity": [activities[int(a)] for a in assignment],
        },
    )
    injector = CompositeInjector(
        [
            OutlierInjector(columns=["acc0", "acc1", "acc2"], degree=4.0),
            MissingValueInjector(columns=["acc0", "acc1", "acc2"]),
        ]
    )
    result = injector.inject(clean, 0.13, np.random.default_rng(seed + 1))
    return BenchmarkDataset(
        name="HAR",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=CLUSTERING,
        target=None,
        domain="Wearables",
    )


def _build_power(n_rows: int, seed: int) -> BenchmarkDataset:
    return _clustering_dataset(
        "Power", "Energy", n_rows, 24, 3, 0.037,
        lambda cols: [
            TypoInjector(columns=cols[:8]),
            MissingValueInjector(columns=cols[8:16]),
            ImplicitMissingInjector(columns=cols[16:]),
        ],
        seed,
    )


def _build_soccer(n_rows: int, seed: int) -> BenchmarkDataset:
    """Soccer (business, scalability): wide mixed table, all error types."""
    rng = np.random.default_rng(seed)
    n_numeric = 40
    features = rng.normal(50.0, 15.0, size=(n_rows, n_numeric))
    columns = {f"stat{i}": features[:, i].tolist() for i in range(n_numeric)}
    positions = ["gk", "def", "mid", "fwd"]
    leagues = ["premier", "bundesliga", "laliga", "seriea"]
    league_country = {
        "premier": "england", "bundesliga": "germany",
        "laliga": "spain", "seriea": "italy",
    }
    chosen = [leagues[int(rng.integers(4))] for _ in range(n_rows)]
    columns["position"] = [positions[int(rng.integers(4))] for _ in range(n_rows)]
    columns["league"] = chosen
    columns["country"] = [league_country[l] for l in chosen]
    columns["foot"] = [
        "left" if rng.uniform() < 0.25 else "right" for _ in range(n_rows)
    ]
    schema = Schema.from_pairs(
        _numeric_columns("stat", n_numeric)
        + [
            ("position", CATEGORICAL),
            ("league", CATEGORICAL),
            ("country", CATEGORICAL),
            ("foot", CATEGORICAL),
        ]
    )
    clean = Table(schema, columns)
    fds = [FunctionalDependency(("league",), "country")]
    stat_cols = [f"stat{i}" for i in range(n_numeric)]
    injector = CompositeInjector(
        [
            OutlierInjector(columns=stat_cols, degree=4.0),
            MissingValueInjector(columns=stat_cols),
            ImplicitMissingInjector(columns=stat_cols),
        ]
    )
    result = injector.inject(clean, 0.27 * 0.8, np.random.default_rng(seed + 1))
    bart = BartEngine([fd.to_denial_constraint() for fd in fds])
    result = result.merge(
        bart.inject(result.dirty, 0.27 * 0.2, np.random.default_rng(seed + 2))
    )
    return BenchmarkDataset(
        name="Soccer",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task=None,
        target=None,
        domain="Business",
        fds=fds,
    )


_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("Beers", 2410, 0.16, "MVs, rule violations, typos",
                    "Business", CLASSIFICATION, _build_beers),
        DatasetSpec("Citation", 5005, 0.2, "duplicates, mislabels",
                    "Research", CLASSIFICATION, _build_citation),
        DatasetSpec("Adult", 45223, 0.58, "rule violations, outliers",
                    "Social", CLASSIFICATION, _build_adult),
        DatasetSpec("BreastCancer", 700, 0.08, "MVs, typos, outliers",
                    "Healthcare", CLASSIFICATION, _build_breast_cancer),
        DatasetSpec("SmartFactory", 23645, 0.153, "MVs, outliers",
                    "Manufacturing", CLASSIFICATION, _build_smart_factory),
        DatasetSpec("Nasa", 1504, 0.08, "MVs, outliers",
                    "Manufacturing", REGRESSION, _build_nasa),
        DatasetSpec("Bikes", 17378, 0.1, "rule violations, outliers",
                    "Business", REGRESSION, _build_bikes),
        DatasetSpec("SoilMoisture", 679, 0.01, "MVs, outliers",
                    "Agriculture", REGRESSION, _build_soil_moisture),
        DatasetSpec("Printer3D", 50, 0.05, "duplicates, MVs, implicit MVs",
                    "Manufacturing", REGRESSION, _build_printer),
        DatasetSpec("Mercedes", 4210, 0.05, "outliers, MVs, implicit MVs",
                    "Manufacturing", REGRESSION, _build_mercedes),
        DatasetSpec("Water", 527, 0.14, "outliers, implicit MVs",
                    "Manufacturing", CLUSTERING, _build_water),
        DatasetSpec("HAR", 70000, 0.13, "outliers, MVs",
                    "Wearables", CLUSTERING, _build_har),
        DatasetSpec("Power", 1456, 0.037, "typos, MVs, implicit MVs",
                    "Energy", CLUSTERING, _build_power),
        DatasetSpec("Soccer", 180228, 0.27,
                    "rule violations, outliers, MVs, implicit MVs",
                    "Business", None, _build_soccer),
    ]
}

DATASET_NAMES: Tuple[str, ...] = tuple(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset's Table 4 registry entry."""
    if name not in _SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_SPECS)}"
        )
    return _SPECS[name]


def table4_rows(name: str) -> int:
    """The dataset's row count as reported in Table 4."""
    return dataset_spec(name).table4_rows


def generate(
    name: str, n_rows: Optional[int] = None, seed: int = 0
) -> BenchmarkDataset:
    """Generate one benchmark dataset analogue.

    Args:
        name: a Table 4 dataset name (see :data:`DATASET_NAMES`).
        n_rows: rows to generate; defaults to the Table 4 size.  The
            scalability experiments pass larger values, tests smaller.
        seed: RNG seed controlling both the clean data and the injected
            errors.
    """
    spec = dataset_spec(name)
    rows = n_rows if n_rows is not None else spec.table4_rows
    if rows < 20:
        raise ValueError("n_rows must be >= 20 for a meaningful dataset")
    dataset = spec.build(rows, seed)
    # Invariant: the recorded error mask equals the actual clean-vs-dirty
    # diff, even when multiple injection stages touched the same cells.
    actual = dataset.clean.diff_cells(dataset.dirty)
    dataset.cells_by_type = {
        error_type: cells & actual
        for error_type, cells in dataset.cells_by_type.items()
    }
    return dataset
