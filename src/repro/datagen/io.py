"""Persist benchmark datasets to disk and reload them.

A :class:`~repro.datagen.benchmark_dataset.BenchmarkDataset` is written as a
directory: ``clean.csv`` + ``dirty.csv`` (the two table versions),
``mask.json`` (the per-error-type cell mask), and ``meta.json`` (task,
target, signals: FDs, denial constraints, patterns, key columns, knowledge
base).  This is the on-disk exchange format for sharing generated dirty
datasets between machines or runs, mirroring how REIN's offline error
injection phase hands datasets to the benchmark proper.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.constraints.dc import DenialConstraint, Predicate
from repro.constraints.fd import FunctionalDependency
from repro.constraints.patterns import ColumnPattern
from repro.datagen.benchmark_dataset import BenchmarkDataset
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.detectors.katara import KnowledgeBase

_CLEAN = "clean.csv"
_DIRTY = "dirty.csv"
_MASK = "mask.json"
_META = "meta.json"


def _predicate_to_dict(predicate: Predicate) -> Dict[str, Any]:
    return {
        "left_attr": predicate.left_attr,
        "op": predicate.op,
        "right_attr": predicate.right_attr,
        "constant": predicate.constant,
        "right_tuple": predicate.right_tuple,
    }


def _predicate_from_dict(payload: Dict[str, Any]) -> Predicate:
    return Predicate(**payload)


def _kb_to_dict(kb: KnowledgeBase) -> Dict[str, Any]:
    return {
        "domains": {k: sorted(v) for k, v in kb.domains.items()},
        # Relations are explicit [concept_a, concept_b, pairs] triples.
        # The previous format mangled concept pairs into "a|b" keys and
        # re-split on the first "|", so any concept name containing a
        # pipe (think "city|district") came back silently corrupted.
        "relations": [
            [a, b, sorted(map(list, pairs))]
            for (a, b), pairs in sorted(kb.relations.items())
        ],
    }


def _kb_from_dict(payload: Dict[str, Any]) -> KnowledgeBase:
    kb = KnowledgeBase()
    for concept, values in payload.get("domains", {}).items():
        kb.add_domain(concept, values)
    relations = payload.get("relations", [])
    if isinstance(relations, dict):
        # Legacy "a|b"-keyed format: still loadable (correctly only for
        # pipe-free concept names, which is all it could express).
        relations = [
            [*key.split("|", 1), pairs] for key, pairs in relations.items()
        ]
    for concept_a, concept_b, pairs in relations:
        kb.add_relation(concept_a, concept_b, [tuple(p) for p in pairs])
    return kb


def save_dataset(dataset: BenchmarkDataset, directory: str) -> None:
    """Write a benchmark dataset to *directory* (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    dataset.clean.to_csv(os.path.join(directory, _CLEAN))
    dataset.dirty.to_csv(os.path.join(directory, _DIRTY))
    mask = {
        error_type: sorted([row, column] for row, column in cells)
        for error_type, cells in dataset.cells_by_type.items()
    }
    with open(os.path.join(directory, _MASK), "w") as fh:
        json.dump(mask, fh)
    meta: Dict[str, Any] = {
        "name": dataset.name,
        "task": dataset.task,
        "target": dataset.target,
        "domain": dataset.domain,
        "key_columns": dataset.key_columns,
        "schema": [(c.name, c.kind) for c in dataset.clean.schema.columns],
        "fds": [
            {"lhs": list(fd.lhs), "rhs": fd.rhs} for fd in dataset.fds
        ],
        "constraints": [
            {
                "name": dc.name,
                "binary": dc.binary,
                "predicates": [_predicate_to_dict(p) for p in dc.predicates],
            }
            for dc in dataset.constraints
        ],
        "patterns": [
            {"column": p.column, "regex": p.regex, "name": p.name}
            for p in dataset.patterns
        ],
        "knowledge_base": (
            _kb_to_dict(dataset.knowledge_base)
            if isinstance(dataset.knowledge_base, KnowledgeBase)
            else None
        ),
    }
    with open(os.path.join(directory, _META), "w") as fh:
        json.dump(meta, fh, indent=2)


def load_dataset(directory: str) -> BenchmarkDataset:
    """Reload a benchmark dataset written by :func:`save_dataset`."""
    meta_path = os.path.join(directory, _META)
    if not os.path.exists(meta_path):
        raise FileNotFoundError(f"no dataset at {directory!r}")
    with open(meta_path) as fh:
        meta = json.load(fh)
    schema = Schema.from_pairs([tuple(pair) for pair in meta["schema"]])
    clean = Table.from_csv(os.path.join(directory, _CLEAN), schema)
    dirty = Table.from_csv(os.path.join(directory, _DIRTY), schema)
    with open(os.path.join(directory, _MASK)) as fh:
        raw_mask = json.load(fh)
    cells_by_type = {
        error_type: {(int(row), column) for row, column in cells}
        for error_type, cells in raw_mask.items()
    }
    fds = [
        FunctionalDependency(tuple(fd["lhs"]), fd["rhs"])
        for fd in meta.get("fds", [])
    ]
    constraints = [
        DenialConstraint(
            [_predicate_from_dict(p) for p in dc["predicates"]],
            binary=dc["binary"],
            name=dc["name"],
        )
        for dc in meta.get("constraints", [])
    ]
    patterns = [
        ColumnPattern(p["column"], p["regex"], p.get("name", ""))
        for p in meta.get("patterns", [])
    ]
    kb_payload = meta.get("knowledge_base")
    return BenchmarkDataset(
        name=meta["name"],
        clean=clean,
        dirty=dirty,
        cells_by_type=cells_by_type,
        task=meta.get("task"),
        target=meta.get("target"),
        domain=meta.get("domain", ""),
        key_columns=list(meta.get("key_columns", [])),
        fds=fds,
        constraints=constraints,
        patterns=patterns,
        knowledge_base=(
            _kb_from_dict(kb_payload) if kb_payload is not None else None
        ),
    )
