"""Zero-copy shared-memory data plane for cross-process execution.

Tables cross process boundaries as named ``multiprocessing``
shared-memory segments instead of pickles: the columnar codec
(:mod:`repro.dataplane.codec`) packs each
:class:`~repro.dataset.table.Table` into flat typed buffers with exact
bit fidelity, the segment lifecycle (:mod:`repro.dataplane.segments`)
guarantees driver-owned create/unlink with cleanup on every exit path,
and the shipment layer (:mod:`repro.dataplane.ship`) swaps tables for
segment references inside the pickled stage context.  See DESIGN.md's
"Data plane" section for the layout and the determinism argument.
"""

from repro.dataplane.codec import EncodedTable, decode_table, encode_table
from repro.dataplane.segments import (
    SEGMENT_PREFIX,
    SegmentManager,
    attach_buffer,
    live_segments,
)
from repro.dataplane.ship import (
    SharedShipment,
    TableHandle,
    attach_shipment,
    attach_table,
    pack_shared,
)

__all__ = [
    "EncodedTable",
    "SEGMENT_PREFIX",
    "SegmentManager",
    "SharedShipment",
    "TableHandle",
    "attach_buffer",
    "attach_shipment",
    "attach_table",
    "decode_table",
    "encode_table",
    "live_segments",
    "pack_shared",
]
