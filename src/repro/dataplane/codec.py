"""Columnar buffer codec: pack a Table into flat, shareable buffers.

The :class:`~repro.dataset.table.Table` substrate stores every column
as a numpy ``object`` array so dirty cells can hold anything a CSV can.
Object arrays cannot live in shared memory (they are arrays of heap
pointers), so crossing a process boundary without pickling requires a
*columnar* re-encoding into flat typed buffers:

- a ``uint8`` **kind tag** per cell (None / float / int / bool / text /
  big-int / other);
- one 8-byte **bit lane** per cell of a numeric-bearing column: float
  cells store their raw IEEE-754 bits (NaN payloads, ``inf`` and
  ``-0.0`` survive exactly), int and bool cells store int64 bits in the
  same lane via a dtype view -- so a column costs at most 9 bytes/cell
  regardless of how its types are mixed;
- an **interned UTF-8 string pool** shared by every column of the
  table: each distinct text payload is stored once in a blob, addressed
  by ``(offsets, code)`` -- repeated categorical values (the common case
  in REIN datasets) cost 4 bytes per occurrence; ints outside the int64
  range ride the pool as decimal text;
- a per-column **pickle fallback blob** for exotic payloads (numpy
  scalars, nested containers) so the codec is total over anything a
  generator or repair can produce.

Encoding happens once, driver-side; decoding is vectorized (dtype
views, ``tolist`` on the lanes, object-array fancy indexing into the
decoded pool) so workers do no per-cell Python work on the hot path.
Decoded columns materialize lazily per column name, reading straight
out of the attached buffer -- the buffer views themselves are zero-copy
and ``writeable=False``, and the decoded table is read-only
(``set_cell`` raises), which is what makes sharing one segment between
many workers safe.

Round-trips are cell-for-cell *type- and bit-identical* (the property
suite in ``tests/test_dataplane.py`` proves it over adversarial
tables), so a suite run through the data plane sees exactly the cells a
serial run sees.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.dataset.schema import Schema
from repro.dataset.table import Table

#: Cell kind tags (the per-cell ``uint8``).
KIND_NONE = 0
KIND_FLOAT = 1
KIND_INT = 2
KIND_BOOL = 3
KIND_TEXT = 4
KIND_BIGINT = 5
KIND_OTHER = 6

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Exact-type dispatch: subclasses (IntEnum, numpy scalars, ...) fall
#: through to the pickle lane so their concrete type round-trips.
_TAG_BY_TYPE = {
    type(None): KIND_NONE,
    float: KIND_FLOAT,
    int: KIND_INT,
    bool: KIND_BOOL,
    str: KIND_TEXT,
}

_CODEC_VERSION = 1


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


@dataclass
class EncodedTable:
    """A packed table: a JSON-able layout plus the typed buffers.

    ``meta`` describes the layout (schema, per-column buffer indices,
    and each buffer's dtype/count/offset within one flat allocation);
    ``buffers`` are ordinary heap arrays positioned by
    :meth:`write_into` -- into a shared-memory segment, a ``bytearray``,
    an ``mmap``, anything exposing a writable buffer.
    """

    meta: Dict[str, Any]
    buffers: List[np.ndarray]

    @property
    def nbytes(self) -> int:
        return int(self.meta["nbytes"])

    def write_into(self, buf) -> None:
        """Copy every buffer to its packed offset inside ``buf``."""
        for arr, desc in zip(self.buffers, self.meta["buffers"]):
            if arr.nbytes == 0:
                continue
            flat = np.frombuffer(
                buf, dtype=np.uint8, count=arr.nbytes, offset=desc["offset"]
            )
            flat[:] = np.ascontiguousarray(arr).view(np.uint8)
            # Release the export before the caller closes the buffer.
            del flat


class _BufferRegistry:
    """Accumulates buffers and assigns 8-byte-aligned pack offsets."""

    def __init__(self) -> None:
        self.buffers: List[np.ndarray] = []
        self.descriptors: List[Dict[str, Any]] = []
        self._offset = 0

    def add(self, arr: np.ndarray) -> int:
        index = len(self.buffers)
        self._offset = _align8(self._offset)
        self.descriptors.append(
            {
                "dtype": arr.dtype.name,
                "count": int(arr.shape[0]),
                "offset": self._offset,
            }
        )
        self.buffers.append(arr)
        self._offset += arr.nbytes
        return index

    @property
    def nbytes(self) -> int:
        return self._offset


def encode_table(table: Table) -> EncodedTable:
    """Pack ``table`` into flat buffers (see the module docstring)."""
    registry = _BufferRegistry()
    intern: Dict[str, int] = {}
    uniques: List[str] = []
    columns_meta: List[Dict[str, Any]] = []
    n = table.n_rows
    for name in table.schema.names:
        col = table.column(name)
        kinds = np.empty(n, dtype=np.uint8)
        for i, value in enumerate(col):
            tag = _TAG_BY_TYPE.get(type(value), KIND_OTHER)
            if tag == KIND_INT and not _INT64_MIN <= value <= _INT64_MAX:
                tag = KIND_BIGINT
            kinds[i] = tag
        meta_col: Dict[str, Any] = {
            "name": name,
            "kinds": registry.add(kinds),
            "lane": None,
            "codes": None,
            "other": None,
        }
        m_float = kinds == KIND_FLOAT
        m_int = kinds == KIND_INT
        m_bool = kinds == KIND_BOOL
        if m_float.any() or m_int.any() or m_bool.any():
            lane = np.zeros(n, dtype=np.float64)
            if m_float.any():
                lane[m_float] = col[m_float].astype(np.float64)
            lane_bits = lane.view(np.int64)
            if m_int.any():
                lane_bits[m_int] = col[m_int].astype(np.int64)
            if m_bool.any():
                lane_bits[m_bool] = col[m_bool].astype(np.int64)
            meta_col["lane"] = registry.add(lane)
        m_text = (kinds == KIND_TEXT) | (kinds == KIND_BIGINT)
        if m_text.any():
            codes = np.empty(int(m_text.sum()), dtype=np.int64)
            position = 0
            for i in np.flatnonzero(m_text):
                text = col[i] if kinds[i] == KIND_TEXT else str(col[i])
                code = intern.get(text)
                if code is None:
                    code = len(uniques)
                    intern[text] = code
                    uniques.append(text)
                codes[position] = code
                position += 1
            meta_col["codes"] = registry.add(codes)
        m_other = kinds == KIND_OTHER
        if m_other.any():
            blob = pickle.dumps(
                [col[i] for i in np.flatnonzero(m_other)],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            meta_col["other"] = registry.add(
                np.frombuffer(blob, dtype=np.uint8)
            )
        columns_meta.append(meta_col)
    encoded_uniques = [text.encode("utf-8") for text in uniques]
    pool_offsets = np.zeros(len(uniques) + 1, dtype=np.int64)
    if uniques:
        np.cumsum(
            [len(piece) for piece in encoded_uniques], out=pool_offsets[1:]
        )
    pool_blob = np.frombuffer(b"".join(encoded_uniques), dtype=np.uint8)
    meta: Dict[str, Any] = {
        "version": _CODEC_VERSION,
        "schema": [[c.name, c.kind] for c in table.schema.columns],
        "n_rows": n,
        "columns": columns_meta,
        "pool": {
            "blob": registry.add(pool_blob),
            "offsets": registry.add(pool_offsets),
            "count": len(uniques),
        },
        "buffers": registry.descriptors,
        "nbytes": max(1, registry.nbytes),
    }
    return EncodedTable(meta=meta, buffers=registry.buffers)


class _LazyColumns(dict):
    """Column dict that decodes a column on first access.

    :class:`~repro.dataset.table.Table` reaches its columns by name
    (``self._data[name]``); unknown names raise ``KeyError`` exactly
    like a plain dict so ``Table.column`` keeps its error message.
    """

    def __init__(self, decode) -> None:
        super().__init__()
        self._decode = decode

    def __missing__(self, name: str) -> np.ndarray:
        arr = self._decode(name)
        self[name] = arr
        return arr


class _PoolDecoder:
    """Decodes the interned string pool once, on first text column."""

    def __init__(self, buffers: List[np.ndarray], pool_meta: Dict[str, Any]):
        self._buffers = buffers
        self._meta = pool_meta
        self._strings: Optional[np.ndarray] = None

    def strings(self) -> np.ndarray:
        if self._strings is None:
            blob = self._buffers[self._meta["blob"]]
            offsets = self._buffers[self._meta["offsets"]]
            data = blob.tobytes()
            decoded = np.empty(self._meta["count"], dtype=object)
            for k in range(self._meta["count"]):
                decoded[k] = data[offsets[k] : offsets[k + 1]].decode("utf-8")
            self._strings = decoded
        return self._strings


def decode_table(meta: Dict[str, Any], buf, keepalive: Any = None) -> Table:
    """Attach packed buffers as a read-only table.

    ``buf`` is any object exposing the buffer protocol over the bytes
    :meth:`EncodedTable.write_into` produced -- typically a
    shared-memory segment's ``.buf``.  The typed buffer views are
    zero-copy and ``writeable=False``; object columns materialize
    lazily, per column, straight out of those views.  ``keepalive`` is
    pinned on the returned table so a memory-mapped ``buf`` outlives
    every view (see :mod:`repro.dataplane.segments`).
    """
    if meta["version"] != _CODEC_VERSION:
        raise ValueError(
            f"unsupported dataplane codec version {meta['version']!r}"
        )
    buffers: List[np.ndarray] = []
    for desc in meta["buffers"]:
        view = np.frombuffer(
            buf,
            dtype=np.dtype(desc["dtype"]),
            count=desc["count"],
            offset=desc["offset"],
        )
        view.flags.writeable = False
        buffers.append(view)
    pool = _PoolDecoder(buffers, meta["pool"])
    n = int(meta["n_rows"])
    by_name = {col["name"]: col for col in meta["columns"]}

    def decode_column(name: str) -> np.ndarray:
        meta_col = by_name[name]  # KeyError for unknown names, as Table expects
        kinds = buffers[meta_col["kinds"]]
        out = np.empty(n, dtype=object)  # object cells default to None
        if meta_col["lane"] is not None:
            lane = buffers[meta_col["lane"]]
            lane_bits = lane.view(np.int64)
            mask = kinds == KIND_FLOAT
            if mask.any():
                out[mask] = lane[mask].tolist()
            mask = kinds == KIND_INT
            if mask.any():
                out[mask] = lane_bits[mask].tolist()
            mask = kinds == KIND_BOOL
            if mask.any():
                out[mask] = lane_bits[mask].astype(bool).tolist()
        mask = (kinds == KIND_TEXT) | (kinds == KIND_BIGINT)
        if mask.any():
            codes = buffers[meta_col["codes"]]
            out[mask] = pool.strings()[codes]
            big = np.flatnonzero(kinds == KIND_BIGINT)
            for i in big:
                out[i] = int(out[i])
        mask = kinds == KIND_OTHER
        if mask.any():
            values = pickle.loads(buffers[meta_col["other"]].tobytes())
            cells = np.empty(len(values), dtype=object)
            cells[:] = values
            out[mask] = cells
        out.flags.writeable = False
        return out

    schema = Schema.from_pairs(meta["schema"])
    table = Table._wrap_arrays(
        schema, _LazyColumns(decode_column), n, readonly=True
    )
    if keepalive is not None:
        table._dataplane_keepalive = keepalive
    return table
