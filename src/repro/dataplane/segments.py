"""Shared-memory segment lifecycle: create, attach, close, unlink.

Ownership is asymmetric by design.  The **driver** creates segments
through a :class:`SegmentManager` and is the only process that ever
``unlink``\\ s them -- ``destroy()`` runs in a ``finally`` around pool
dispatch, so normal teardown, interrupted runs (the chaos suite's
mid-run kills) and SIGTERM drains all release every name.  **Workers**
attach read-only by name and never unlink; a SIGKILLed worker therefore
takes nothing with it -- its mapping dies with the process and the
driver's ``finally`` still removes the name.

Two CPython specifics this module encodes so callers do not have to:

- Pool workers (fork *and* spawn -- the tracker fd rides the spawn
  preparation data) share the driver's ``resource_tracker``, and
  registration is set-idempotent, so a worker's attach needs no
  register/unregister dance; the driver's ``unlink()`` retires the name
  exactly once.
- ``SharedMemory.__del__`` calls ``close()``, which raises
  ``BufferError`` while numpy views of ``.buf`` are alive.  Attached
  segments hand their buffer over via :func:`attach_buffer`, which
  *defuses* the destructor: the mapping stays alive exactly as long as
  the views do (the memoryview pins the underlying mmap) and is
  reclaimed by the kernel when the worker exits.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from typing import List, Optional

#: Every segment this plane creates carries this prefix, so tests (and
#: operators) can audit ``/dev/shm`` for leaks without guessing.
SEGMENT_PREFIX = "repro-dp-"

_SHM_DIR = "/dev/shm"


class SegmentManager:
    """Owns the create -> unlink lifecycle of one dispatch round.

    Usable as a context manager; either way, callers must reach
    :meth:`destroy` on every exit path (the engine wraps dispatch in
    ``try/finally``).  ``destroy`` is idempotent and keeps going past
    individual close failures: unlinking the name is what prevents a
    leak, and it works even while mappings are still live elsewhere.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._counter = 0

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Create one uniquely named segment of at least 1 byte."""
        self._counter += 1
        for _ in range(16):
            name = (
                f"{SEGMENT_PREFIX}{os.getpid()}-{self._counter}-"
                f"{os.urandom(4).hex()}"
            )
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, int(nbytes))
                )
            except FileExistsError:
                continue
            self._segments.append(segment)
            return segment
        raise RuntimeError(
            "could not allocate a unique shared-memory segment name"
        )

    @property
    def names(self) -> List[str]:
        return [segment.name for segment in self._segments]

    @property
    def total_bytes(self) -> int:
        return sum(segment.size for segment in self._segments)

    def destroy(self) -> None:
        """Close and unlink every segment this manager created."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                # A view of .buf is still exported somewhere in this
                # process; the mapping lives until it dies, but the
                # unlink below still retires the name (no leak).
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SegmentManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()


def attach_buffer(name: str) -> memoryview:
    """Attach an existing segment and return its buffer (worker side).

    The returned memoryview owns the mapping: the ``SharedMemory``
    handle is stripped of its buffer so its destructor cannot raise
    ``BufferError`` under live numpy views, and the mapping is released
    when the memoryview (and every view built on it) is garbage
    collected or the process exits.  Attaching never unlinks -- the name
    belongs to the creating driver.
    """
    segment = shared_memory.SharedMemory(name=name)
    buf = segment._buf
    # Defuse SharedMemory.__del__ -> close(): the memoryview keeps the
    # mmap alive, and the driver owns the name.
    segment._buf = None
    segment._mmap = None
    return buf


def live_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of data-plane segments currently present on this host.

    Reads ``/dev/shm`` directly (POSIX shared memory appears there on
    Linux); returns an empty list where that directory does not exist,
    so leak assertions degrade to vacuous rather than erroring.
    """
    if not os.path.isdir(_SHM_DIR):
        return []
    return sorted(
        entry for entry in os.listdir(_SHM_DIR) if entry.startswith(prefix)
    )


def segment_dir() -> Optional[str]:
    """The directory segments appear in, or None on non-POSIX hosts."""
    return _SHM_DIR if os.path.isdir(_SHM_DIR) else None
