"""Shipping a stage's shared context across process boundaries.

A stage's ``plan.shared`` is an arbitrary picklable object (frozen
dataclasses like the runner's ``_DetectionShared``) whose bulk is the
:class:`~repro.dataset.table.Table` instances buried inside it.  The
data plane splits the two concerns:

- :func:`pack_shared` pickles the context into a small **shell**, but a
  custom ``persistent_id`` hook swaps every ``Table`` it meets for a
  reference -- the table itself is packed once (deduplicated by
  identity, so ``dataset.dirty`` reused as a scenario's
  ``variant_table`` ships a single segment) through the columnar codec
  into a shared-memory segment owned by the caller's
  :class:`~repro.dataplane.segments.SegmentManager`.
- :func:`attach_shipment` unpickles the shell in a worker, resolving
  each reference by attaching the named segment read-only and decoding
  it lazily (``persistent_load``).  Attaches are memoized per process,
  so every unit a worker runs -- and every *column* access inside a
  unit -- reads the same mapped bytes.

``pack_shared(..., share_tables=False)`` keeps tables inline in the
shell (the legacy whole-pickle behavior); the speed benchmark uses it
as its baseline, and it documents exactly what the data plane removes
from the dispatch path.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.dataplane.codec import decode_table, encode_table
from repro.dataplane.segments import SegmentManager, attach_buffer
from repro.dataset.table import Table

#: Tag inside pickle persistent ids, so a stray persistent id from
#: anything else fails loudly instead of resolving to a wrong table.
_PERSISTENT_TAG = "repro.dataplane:table"


@dataclass(frozen=True)
class TableHandle:
    """One packed table: the segment holding it plus its codec layout."""

    segment: str
    meta: Dict[str, Any]

    @property
    def nbytes(self) -> int:
        return int(self.meta["nbytes"])


@dataclass(frozen=True)
class SharedShipment:
    """What actually crosses the process boundary for ``plan.shared``.

    ``shell`` is the pickled context with tables swapped for handle
    references; ``handles`` are the packed tables in reference order.
    ``pickle.dumps(shipment)`` is the per-worker shipping cost, which is
    why the shipment carries bytes accounting for the telemetry
    counters.

    ``inline_object`` (with ``shell=None``) is the fallback for
    contexts that cannot pickle at all -- e.g. test harnesses whose
    clocks are lambdas: the object rides the shipment by reference,
    which only ever crosses a ``fork`` boundary (exactly the historical
    semantics; ``spawn`` has always required a picklable context).
    """

    shell: Optional[bytes]
    handles: Tuple[TableHandle, ...] = field(default_factory=tuple)
    inline_object: Any = None

    @property
    def shipped_bytes(self) -> int:
        """Bytes pickled per worker (the shell + tiny handle metas)."""
        if self.shell is None:
            return 0  # rides the fork by reference; nothing serialized
        return len(self.shell) + sum(
            len(pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL))
            for handle in self.handles
        )

    @property
    def shared_bytes(self) -> int:
        """Bytes placed in shared segments, paid once for all workers."""
        return sum(handle.nbytes for handle in self.handles)


class _TableSwappingPickler(pickle.Pickler):
    """Pickler that spills every Table into a segment, dedup by id."""

    def __init__(self, file, manager: SegmentManager) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._manager = manager
        self._index_by_id: Dict[int, int] = {}
        self.tables: list[Table] = []  # also keeps ids stable while packing
        self.handles: list[TableHandle] = []

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, int]]:
        if not isinstance(obj, Table):
            return None
        index = self._index_by_id.get(id(obj))
        if index is None:
            index = len(self.tables)
            self._index_by_id[id(obj)] = index
            self.tables.append(obj)
            encoded = encode_table(obj)
            segment = self._manager.create(encoded.nbytes)
            encoded.write_into(segment.buf)
            self.handles.append(
                TableHandle(segment=segment.name, meta=encoded.meta)
            )
        return (_PERSISTENT_TAG, index)


def pack_shared(
    shared: Any,
    manager: SegmentManager,
    share_tables: bool = True,
) -> SharedShipment:
    """Pack a stage context for dispatch; segments go on ``manager``.

    The caller owns ``manager`` cleanup (``destroy()`` in a
    ``finally``), including when packing itself raises partway through.
    """
    try:
        if not share_tables:
            return SharedShipment(
                shell=pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
            )
        buffer = io.BytesIO()
        pickler = _TableSwappingPickler(buffer, manager)
        pickler.dump(shared)
    except (pickle.PicklingError, TypeError, AttributeError):
        # The context itself refuses to pickle (e.g. a chaos harness
        # whose injected clock is a lambda).  Historically such contexts
        # still worked under ``fork`` because Pool initargs cross by
        # inheritance, not serialization -- preserve that: ship the
        # object by reference.  Segments spilled before the failure are
        # released now; the caller's ``finally`` destroy stays a no-op
        # for them (destroy is idempotent).
        manager.destroy()
        return SharedShipment(shell=None, inline_object=shared)
    return SharedShipment(
        shell=buffer.getvalue(), handles=tuple(pickler.handles)
    )


class _TableAttachingUnpickler(pickle.Unpickler):
    def __init__(self, file, tables: Tuple[Table, ...]) -> None:
        super().__init__(file)
        self._tables = tables

    def persistent_load(self, pid: Any) -> Table:
        if (
            not isinstance(pid, tuple)
            or len(pid) != 2
            or pid[0] != _PERSISTENT_TAG
        ):
            raise pickle.UnpicklingError(
                f"unknown persistent id in shipment shell: {pid!r}"
            )
        return self._tables[pid[1]]


#: Per-process attach memo: a worker serving many units (or a shipment
#: naming one segment twice) maps and decodes each segment exactly once.
_ATTACHED: Dict[str, Table] = {}


def attach_table(handle: TableHandle) -> Table:
    """Attach one packed table read-only (memoized per process)."""
    table = _ATTACHED.get(handle.segment)
    if table is None:
        buf = attach_buffer(handle.segment)
        table = decode_table(handle.meta, buf, keepalive=buf)
        _ATTACHED[handle.segment] = table
    return table


def attach_shipment(shipment: SharedShipment) -> Any:
    """Rebuild a stage context from its shipment (worker side)."""
    if shipment.shell is None:
        return shipment.inline_object  # crossed the fork by reference
    tables = tuple(attach_table(handle) for handle in shipment.handles)
    return _TableAttachingUnpickler(
        io.BytesIO(shipment.shell), tables
    ).load()
