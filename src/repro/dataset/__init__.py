"""Tabular data substrate: typed tables, encoding, and splits.

REIN treats every dataset as a cell-addressable table of mixed numerical and
categorical columns, with several stored *versions* (ground truth, dirty,
repaired).  :class:`~repro.dataset.table.Table` is that substrate; the rest of
the package provides the feature encoding and train/test machinery the ML
stage needs.
"""

from repro.dataset.encoding import LabelEncoder, TableEncoder, standardize
from repro.dataset.schema import CATEGORICAL, NUMERICAL, Column, Schema
from repro.dataset.splits import kfold_indices, train_test_split
from repro.dataset.table import Cell, Table, is_missing

__all__ = [
    "CATEGORICAL",
    "NUMERICAL",
    "Cell",
    "Column",
    "LabelEncoder",
    "Schema",
    "Table",
    "TableEncoder",
    "is_missing",
    "kfold_indices",
    "standardize",
    "train_test_split",
]
