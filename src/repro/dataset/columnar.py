"""Columnar normalization and interning shared by the cleaning kernels.

The vectorized detector/constraint/repair kernels all start the same
way: turn an ``object`` column into integer ids so the hot math runs on
numpy arrays instead of per-cell Python.  Three building blocks live
here:

- :func:`normalized_column` applies a normalization function once per
  *distinct* cell payload (typed-key memo), instead of once per row --
  the cheap O(distinct) pass that replaces the scalar kernels' O(rows)
  string work;
- :func:`intern_values` maps normalized payloads to dense integer ids
  (first-occurrence order, ``-1`` for ``None``), the substrate for
  hash-group joins and pairwise comparisons;
- :func:`group_sequence_ranks` numbers each element's position within
  its group in stream order, which the batched repair scorers use to
  replicate dict-insertion-order tie-breaking bit-for-bit.

Memoizing per distinct payload is safe because every normalizer used by
the kernels (``str(v).strip()``, KB normalization, ``coerce_float``) is
a pure function of the payload's type and value: the memo key is
``(type(v), v)`` so ``1`` and ``True`` (equal and hash-equal, but with
different ``str()``) never share an entry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

_MISS = object()


def normalized_column(
    column: np.ndarray, normalize: Callable[[Any], Any]
) -> List[Any]:
    """``[normalize(v) for v in column]`` computed once per distinct payload.

    Unhashable payloads (which cannot be memoized) fall back to a direct
    call, so the result always equals the plain per-row comprehension.
    """
    memo: Dict[Any, Any] = {}
    out: List[Any] = []
    for value in column:
        key = (type(value), value)
        try:
            cached = memo.get(key, _MISS)
        except TypeError:  # unhashable payload
            out.append(normalize(value))
            continue
        if cached is _MISS:
            cached = memo[key] = normalize(value)
        out.append(cached)
    return out


def intern_values(
    values: List[Any],
) -> Tuple[np.ndarray, List[Any]]:
    """Map values to dense ids in first-occurrence order.

    Returns ``(uids, distinct)`` where ``uids[i]`` is the id of
    ``values[i]`` (or ``-1`` when the value is ``None``) and
    ``distinct[uid]`` is the value itself.  Ids are assigned in order of
    first occurrence, so downstream consumers can rebuild
    insertion-ordered dicts and Counters exactly as the scalar kernels
    created them.
    """
    ids: Dict[Any, int] = {}
    distinct: List[Any] = []
    uids = np.empty(len(values), dtype=np.int64)
    for i, value in enumerate(values):
        if value is None:
            uids[i] = -1
            continue
        uid = ids.get(value)
        if uid is None:
            uid = ids[value] = len(distinct)
            distinct.append(value)
        uids[i] = uid
    return uids, distinct


def combine_codes(code_columns: List[np.ndarray]) -> np.ndarray:
    """Combine per-column id arrays into one id per row (row-wise tuple).

    Rows where any input id is negative (missing) get ``-1``.  Equal
    output ids correspond exactly to equal input tuples; output ids are
    assigned in first-occurrence row order.
    """
    if not code_columns:
        raise ValueError("need at least one code column")
    n = len(code_columns[0])
    valid = np.ones(n, dtype=bool)
    for codes in code_columns:
        valid &= codes >= 0
    stacked = np.stack(code_columns, axis=1)[valid]
    combined = np.full(n, -1, dtype=np.int64)
    if len(stacked) == 0:
        return combined
    _, first, inverse = np.unique(
        stacked, axis=0, return_index=True, return_inverse=True
    )
    # np.unique sorts groups lexicographically; renumber so ids follow
    # first occurrence in row order (dict-insertion semantics).
    order = np.argsort(np.argsort(first, kind="stable"), kind="stable")
    combined[valid] = order[inverse.ravel()]
    return combined


def group_sequence_ranks(group_ids: np.ndarray) -> np.ndarray:
    """Position of each element within its group, in array order.

    ``group_sequence_ranks([3, 5, 3, 3, 5]) == [0, 0, 1, 2, 1]``.  The
    batched repair scorers use this as the "stream position" that
    recreates dict-insertion first-touch order per scored cell.
    """
    n = len(group_ids)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_ids[1:] != sorted_ids[:-1]
    starts = np.flatnonzero(new_group)
    lengths = np.diff(np.append(starts, n))
    within = np.arange(n) - np.repeat(starts, lengths)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = within
    return ranks


def first_occurrence_order(
    codes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Distinct codes with their counts and first positions, in
    first-occurrence order.

    Returns ``(distinct, counts, first_index, inverse)`` such that
    ``distinct[inverse] == codes``, ``counts[k]`` is the multiplicity of
    ``distinct[k]``, and ``first_index[k]`` is the position of its first
    occurrence -- with ``k`` running in first-occurrence order, matching
    dict-insertion iteration of the scalar group-by loops.
    """
    if len(codes) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty, empty
    distinct_sorted, first_sorted, inverse_sorted, counts_sorted = np.unique(
        codes, return_index=True, return_inverse=True, return_counts=True
    )
    rank_of_sorted = np.argsort(np.argsort(first_sorted, kind="stable"))
    occurrence = np.argsort(first_sorted, kind="stable")
    distinct = distinct_sorted[occurrence]
    counts = counts_sorted[occurrence]
    first_index = first_sorted[occurrence]
    inverse = rank_of_sorted[inverse_sorted.ravel()]
    return distinct, counts, first_index, inverse


def csr_gather(
    flat: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    take: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather variable-length id lists for a batch of list indices.

    ``flat``/``offsets``/``lengths`` describe a CSR layout (list ``u``
    occupies ``flat[offsets[u] : offsets[u] + lengths[u]]``).  Returns
    ``(values, owners)`` where ``values`` concatenates the lists named
    by ``take`` in order and ``owners[i]`` is the position within
    ``take`` that produced ``values[i]``.
    """
    counts = lengths[take]
    total = int(counts.sum())
    if total == 0:
        return (
            np.zeros(0, dtype=flat.dtype),
            np.zeros(0, dtype=np.int64),
        )
    starts = np.repeat(offsets[take], counts)
    group_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(group_starts, counts)
    owners = np.repeat(np.arange(len(take), dtype=np.int64), counts)
    return flat[starts + within], owners
