"""Feature encoding for the ML stage.

REIN feeds dirty, repaired, and clean table versions to the same model pool,
so the encoder must tolerate anything a dirty table can contain: missing
values, categories unseen at fit time, and numeric cells corrupted into text.
The policy mirrors common practice (and REIN's own preprocessing): numerical
columns are mean-imputed and standardized; categorical columns are one-hot
encoded over the categories seen at fit time with unseen values mapped to an
all-zero block.

Transforms are single-pass and columnar: numeric imputation and scaling are
whole-matrix vectorized operations, and each categorical column makes one
pass over its cells to produce level indices that are scattered into the
one-hot block in a single assignment.

Both :meth:`TableEncoder.fit_transform` and :func:`encode_supervised`
consult the process-wide artifact cache (:func:`repro.cache.current_cache`)
when one is installed: the encoded matrices and the fitted encoder state are
memoized under content-addressed keys, so re-encoding an identical table
version under identical settings is a disk read.  With no cache installed
both behave exactly as before.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.keys import artifact_key, table_fingerprint
from repro.cache.store import current_cache
from repro.dataset.table import Table, coerce_float, is_missing


def standardize(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Z-score a matrix column-wise, returning ``(scaled, mean, std)``.

    Zero-variance columns are left centred (divided by 1) to avoid NaNs.
    """
    mean = np.nanmean(matrix, axis=0) if matrix.size else np.zeros(matrix.shape[1])
    mean = np.where(np.isnan(mean), 0.0, mean)
    std = np.nanstd(matrix, axis=0) if matrix.size else np.ones(matrix.shape[1])
    std = np.where((std == 0) | np.isnan(std), 1.0, std)
    return (matrix - mean) / std, mean, std


class LabelEncoder:
    """Map arbitrary label payloads to contiguous integer classes."""

    def __init__(self) -> None:
        self.classes_: List[Any] = []
        self._index: Dict[str, int] = {}

    @staticmethod
    def _key(value: Any) -> str:
        return "␀missing" if is_missing(value) else str(value).strip()

    def fit(self, values: Sequence[Any]) -> "LabelEncoder":
        seen: Dict[str, Any] = {}
        for v in values:
            key = self._key(v)
            if key not in seen:
                seen[key] = v
        self.classes_ = [seen[k] for k in sorted(seen)]
        self._index = {self._key(c): i for i, c in enumerate(self.classes_)}
        return self

    def transform(self, values: Sequence[Any]) -> np.ndarray:
        if not self._index:
            raise RuntimeError("LabelEncoder used before fit")
        index = self._index
        key = self._key
        # Unseen labels bucket into class 0 so the pipeline keeps running
        # on very dirty label columns.
        return np.fromiter(
            (index.get(key(v), 0) for v in values),
            dtype=np.int64,
            count=len(values),
        )

    def fit_transform(self, values: Sequence[Any]) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, codes: Sequence[int]) -> List[Any]:
        return [self.classes_[int(c)] for c in codes]

    @property
    def n_classes(self) -> int:
        return len(self.classes_)


class TableEncoder:
    """Encode a :class:`Table` into a dense float feature matrix.

    Args:
        max_categories: cap on one-hot width per categorical column; the most
            frequent categories are kept and the tail is bucketed together.
        scale: when True (default), numerical columns are standardized with
            statistics learned at fit time.
    """

    def __init__(self, max_categories: int = 20, scale: bool = True):
        if max_categories < 1:
            raise ValueError("max_categories must be >= 1")
        self.max_categories = max_categories
        self.scale = scale
        self._numerical: List[str] = []
        self._categorical: List[str] = []
        self._num_mean: Optional[np.ndarray] = None
        self._num_std: Optional[np.ndarray] = None
        self._cat_levels: Dict[str, List[str]] = {}
        self._cat_index: Dict[str, Dict[str, int]] = {}
        self._fitted = False

    @staticmethod
    def _cat_key(value: Any) -> Optional[str]:
        return None if is_missing(value) else str(value).strip()

    def fit(self, table: Table, exclude: Sequence[str] = ()) -> "TableEncoder":
        excluded = set(exclude)
        self._numerical = [
            n for n in table.schema.numerical_names if n not in excluded
        ]
        self._categorical = [
            n for n in table.schema.categorical_names if n not in excluded
        ]
        if self._numerical:
            matrix = table.numeric_matrix(self._numerical)
            mean = np.nanmean(matrix, axis=0)
            self._num_mean = np.where(np.isnan(mean), 0.0, mean)
            std = np.nanstd(matrix, axis=0)
            self._num_std = np.where((std == 0) | np.isnan(std), 1.0, std)
        else:
            self._num_mean = np.zeros(0)
            self._num_std = np.ones(0)
        self._cat_levels = {}
        for name in self._categorical:
            counts: Dict[str, int] = {}
            for v in table.column(name):
                key = self._cat_key(v)
                if key is not None:
                    counts[key] = counts.get(key, 0) + 1
            top = sorted(counts, key=lambda k: (-counts[k], k))
            self._cat_levels[name] = top[: self.max_categories]
        self._cat_index = {
            name: {lvl: j for j, lvl in enumerate(levels)}
            for name, levels in self._cat_levels.items()
        }
        self._fitted = True
        return self

    def _transform_block(self, block: Table) -> np.ndarray:
        """Encode one row block with the fitted statistics.

        Imputation, scaling, and one-hot scattering are all elementwise
        against fit-time state, so encoding block-by-block produces the
        same bytes as encoding the whole table at once.
        """
        parts: List[np.ndarray] = []
        if self._numerical:
            matrix = block.numeric_matrix(self._numerical)
            # Mean-impute anything missing or corrupted-to-text, one
            # whole-matrix pass instead of a per-column loop.
            matrix = np.where(np.isnan(matrix), self._num_mean, matrix)
            if self.scale:
                matrix = (matrix - self._num_mean) / self._num_std
            parts.append(matrix)
        for name in self._categorical:
            levels = self._cat_levels[name]
            onehot = np.zeros((block.n_rows, len(levels)), dtype=np.float64)
            index = self._cat_index[name]
            key = self._cat_key
            cells = block.column(name)
            # One pass: map each cell to its level index (-1 for missing
            # or unseen), then scatter the hits in a single assignment.
            hits = np.fromiter(
                (
                    index.get(k, -1) if (k := key(v)) is not None else -1
                    for v in cells
                ),
                dtype=np.int64,
                count=len(cells),
            )
            rows = np.flatnonzero(hits >= 0)
            onehot[rows, hits[rows]] = 1.0
            parts.append(onehot)
        if not parts:
            return np.zeros((block.n_rows, 0), dtype=np.float64)
        return np.hstack(parts)

    def transform(
        self, table: Table, block_rows: Optional[int] = None
    ) -> np.ndarray:
        """Encode a table into a dense float matrix.

        With ``block_rows`` set, encoding streams over zero-copy row
        blocks into a preallocated output: transient memory drops to one
        block's intermediates while the result stays byte-identical to
        the whole-table pass.
        """
        if not self._fitted:
            raise RuntimeError("TableEncoder used before fit")
        if block_rows is None:
            return self._transform_block(table)
        out = np.empty((table.n_rows, self.n_features), dtype=np.float64)
        for start, block in table.iter_blocks(block_rows):
            out[start:start + block.n_rows] = self._transform_block(block)
        return out

    def fit_transform(self, table: Table, exclude: Sequence[str] = ()) -> np.ndarray:
        cache = current_cache()
        if cache is None:
            return self.fit(table, exclude=exclude).transform(table)
        key = artifact_key(
            "encoder/fit_transform@v1",
            [table_fingerprint(table)],
            {
                "max_categories": self.max_categories,
                "scale": self.scale,
                "exclude": sorted(str(n) for n in exclude),
            },
        )
        entry = cache.get(key)
        if entry is not None:
            self.restore_state(entry.meta["encoder"])
            return entry.arrays["matrix"]
        matrix = self.fit(table, exclude=exclude).transform(table)
        cache.put(key, {"matrix": matrix}, {"encoder": self.state()})
        return matrix

    # ------------------------------------------------------------------
    # Fitted-state serialization (for cache entries)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-serializable fitted state (exact: floats round-trip via
        ``repr`` so a restored encoder transforms byte-identically)."""
        if not self._fitted:
            raise RuntimeError("TableEncoder used before fit")
        return {
            "max_categories": self.max_categories,
            "scale": self.scale,
            "numerical": list(self._numerical),
            "categorical": list(self._categorical),
            "num_mean": [float(x) for x in self._num_mean],
            "num_std": [float(x) for x in self._num_std],
            "cat_levels": {k: list(v) for k, v in self._cat_levels.items()},
        }

    def restore_state(self, state: Dict[str, Any]) -> "TableEncoder":
        self.max_categories = int(state["max_categories"])
        self.scale = bool(state["scale"])
        self._numerical = list(state["numerical"])
        self._categorical = list(state["categorical"])
        self._num_mean = np.asarray(state["num_mean"], dtype=np.float64)
        self._num_std = np.asarray(state["num_std"], dtype=np.float64)
        self._cat_levels = {k: list(v) for k, v in state["cat_levels"].items()}
        self._cat_index = {
            name: {lvl: j for j, lvl in enumerate(levels)}
            for name, levels in self._cat_levels.items()
        }
        self._fitted = True
        return self

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "TableEncoder":
        return cls(
            max_categories=int(state["max_categories"]),
            scale=bool(state["scale"]),
        ).restore_state(state)

    @property
    def n_features(self) -> int:
        if not self._fitted:
            raise RuntimeError("TableEncoder used before fit")
        return len(self._numerical) + sum(
            len(v) for v in self._cat_levels.values()
        )

    @property
    def feature_names(self) -> List[str]:
        if not self._fitted:
            raise RuntimeError("TableEncoder used before fit")
        names = list(self._numerical)
        for col in self._categorical:
            names.extend(f"{col}={lvl}" for lvl in self._cat_levels[col])
        return names


def _encode_supervised_fresh(
    train: Table,
    test: Table,
    target: str,
    task: str,
    max_categories: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, TableEncoder]:
    encoder = TableEncoder(max_categories=max_categories)
    x_train = encoder.fit(train, exclude=[target]).transform(train)
    x_test = encoder.transform(test)
    if task == "classification":
        label_encoder = LabelEncoder()
        label_encoder.fit(
            list(train.column(target)) + list(test.column(target))
        )
        y_train = label_encoder.transform(train.column(target))
        y_test = label_encoder.transform(test.column(target))
    elif task == "regression":
        y_train = train.as_float(target)
        y_test = test.as_float(target)
        fill = float(np.nanmean(y_train)) if len(y_train) else 0.0
        if math.isnan(fill):
            fill = 0.0
        y_train = np.where(np.isnan(y_train), fill, y_train)
        y_test = np.where(np.isnan(y_test), fill, y_test)
    else:
        raise ValueError(f"unsupported supervised task {task!r}")
    return x_train, y_train, x_test, y_test, encoder


def encode_supervised(
    train: Table,
    test: Table,
    target: str,
    task: str,
    max_categories: int = 20,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, TableEncoder]:
    """Encode a train/test table pair for a supervised task.

    Returns ``(X_train, y_train, X_test, y_test, encoder)``.  For
    classification, labels are label-encoded over the union of both splits so
    train and test codes agree.  For regression, labels are float-coerced with
    NaN targets replaced by the training-label mean (dirty labels must not
    crash the pipeline).

    When an artifact cache is installed, the full quadruple plus the fitted
    encoder state is memoized against the content of both splits and the
    encoding settings.
    """
    cache = current_cache()
    if cache is None:
        return _encode_supervised_fresh(train, test, target, task, max_categories)
    key = artifact_key(
        "encoder/supervised@v1",
        [table_fingerprint(train), table_fingerprint(test)],
        {"target": target, "task": task, "max_categories": max_categories},
    )
    entry = cache.get(key)
    if entry is not None:
        encoder = TableEncoder.from_state(entry.meta["encoder"])
        return (
            entry.arrays["x_train"],
            entry.arrays["y_train"],
            entry.arrays["x_test"],
            entry.arrays["y_test"],
            encoder,
        )
    x_train, y_train, x_test, y_test, encoder = _encode_supervised_fresh(
        train, test, target, task, max_categories
    )
    cache.put(
        key,
        {
            "x_train": x_train,
            "y_train": y_train,
            "x_test": x_test,
            "y_test": y_test,
        },
        {"encoder": encoder.state()},
    )
    return x_train, y_train, x_test, y_test, encoder
