"""Column typing for benchmark tables.

REIN distinguishes numerical from categorical attributes throughout: error
injection, detection, repair, and evaluation all branch on the column kind
(e.g. RMSE for numerical repairs, precision/recall for categorical ones).
A :class:`Schema` pins that choice down once per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

NUMERICAL = "numerical"
CATEGORICAL = "categorical"

_VALID_KINDS = (NUMERICAL, CATEGORICAL)


@dataclass(frozen=True)
class Column:
    """A named, typed table column.

    Attributes:
        name: column identifier, unique within a schema.
        kind: ``"numerical"`` or ``"categorical"``.
    """

    name: str
    kind: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"column kind must be one of {_VALID_KINDS}, got {self.kind!r}"
            )

    @property
    def is_numerical(self) -> bool:
        return self.kind == NUMERICAL

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL


class Schema:
    """An ordered collection of uniquely named columns."""

    def __init__(self, columns: Iterable[Column]):
        self._columns: Tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names in schema: {dupes}")
        self._by_name = {c.name: c for c in self._columns}

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, str]]) -> "Schema":
        """Build a schema from ``(name, kind)`` pairs."""
        return cls(Column(name, kind) for name, kind in pairs)

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> List[str]:
        return [c.name for c in self._columns]

    @property
    def numerical_names(self) -> List[str]:
        return [c.name for c in self._columns if c.is_numerical]

    @property
    def categorical_names(self) -> List[str]:
        return [c.name for c in self._columns if c.is_categorical]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no column named {name!r} in schema") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def kind_of(self, name: str) -> str:
        """Return the kind of column *name*."""
        return self[name].kind

    def drop(self, names: Iterable[str]) -> "Schema":
        """Return a new schema without the given columns."""
        dropped = set(names)
        missing = dropped - set(self.names)
        if missing:
            raise KeyError(f"cannot drop unknown columns: {sorted(missing)}")
        return Schema(c for c in self._columns if c.name not in dropped)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.kind[:3]}" for c in self._columns)
        return f"Schema({cols})"
