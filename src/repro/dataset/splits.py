"""Train/test splitting utilities.

REIN repeats every ML experiment ``s`` times with different random seeds that
control the train-test split; the split helpers here take explicit RNGs so
those repetitions are reproducible.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


def _as_rng(rng: Optional[np.random.Generator], seed: Optional[int]) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def train_test_split(
    n_rows: int,
    test_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    stratify: Optional[Sequence[object]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(train_indices, test_indices)`` for a table of *n_rows*.

    Args:
        test_fraction: fraction of rows held out (0 < f < 1).
        stratify: optional label sequence; when given, each label keeps
            roughly its proportion in both splits (and every class with at
            least two members lands in both splits when possible).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if n_rows < 2:
        raise ValueError("need at least two rows to split")
    if stratify is not None and len(stratify) != n_rows:
        raise ValueError("stratify length must equal n_rows")
    generator = _as_rng(rng, seed)

    if stratify is None:
        order = generator.permutation(n_rows)
        n_test = max(1, int(round(n_rows * test_fraction)))
        n_test = min(n_test, n_rows - 1)
        return np.sort(order[n_test:]), np.sort(order[:n_test])

    # Group keys carry the label's type alongside its repr: keying on
    # str(label) alone collapses distinct classes that merely print the
    # same -- the int 1 with the string "1", or None with the string
    # "None" -- silently merging their strata.
    groups: dict = {}
    for i, label in enumerate(stratify):
        groups.setdefault((type(label).__name__, str(label)), []).append(i)
    train: List[int] = []
    test: List[int] = []
    for label in sorted(groups):
        members = np.array(groups[label])
        generator.shuffle(members)
        n_test = int(round(len(members) * test_fraction))
        if len(members) >= 2:
            n_test = min(max(n_test, 1), len(members) - 1)
        test.extend(members[:n_test].tolist())
        train.extend(members[n_test:].tolist())
    if not test:  # All classes were singletons; fall back to random split.
        return train_test_split(n_rows, test_fraction, rng=generator)
    return np.sort(np.array(train)), np.sort(np.array(test))


def kfold_indices(
    n_rows: int,
    n_folds: int = 5,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indices, test_indices)`` pairs for k-fold CV."""
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if n_folds > n_rows:
        raise ValueError("cannot have more folds than rows")
    generator = _as_rng(rng, seed)
    order = generator.permutation(n_rows)
    folds = np.array_split(order, n_folds)
    for k in range(n_folds):
        test = np.sort(folds[k])
        train = np.sort(np.concatenate([folds[j] for j in range(n_folds) if j != k]))
        yield train, test
