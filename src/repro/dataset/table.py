"""Cell-addressable mixed-type table.

This is the substrate every REIN component works on.  A :class:`Table` stores
each column as a numpy ``object`` array so that dirty data can hold anything a
real-world CSV can: numbers, strings, typos that turned a number into text,
empty strings, and explicit ``None``/NaN missing values.  The declared
:class:`~repro.dataset.schema.Schema` records the *intended* kind of each
column; the actual cell payload may disagree on a dirty version (which is
exactly what detectors like FAHES look for).

Cells are addressed as ``(row_index, column_name)`` tuples, matching REIN's
cell-level detection and repair granularity.
"""

from __future__ import annotations

import csv
import math
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.dataset.schema import CATEGORICAL, NUMERICAL, Column, Schema

Cell = Tuple[int, str]

_MISSING_TOKENS = {"", "na", "n/a", "nan", "null", "none", "?"}


def is_missing(value: Any) -> bool:
    """Return True when *value* is an explicit missing marker.

    ``None``, float NaN, and the usual CSV null tokens (case-insensitive
    ``""``, ``"NA"``, ``"NaN"``, ``"NULL"``, ``"?"`` ...) all count.  Disguised
    missing values such as ``"99999"`` deliberately do not -- detecting those
    is FAHES's job.
    """
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value.strip().lower() in _MISSING_TOKENS:
        return True
    return False


def coerce_float(value: Any) -> float:
    """Best-effort conversion of a cell payload to float (NaN on failure).

    Non-finite parses (e.g. the typo ``"9e999"`` overflowing to inf) count
    as unparseable: downstream statistics assume finite numeric views.
    """
    if is_missing(value):
        return math.nan
    if isinstance(value, (int, float, np.integer, np.floating)):
        result = float(value)
        return result if math.isfinite(result) else math.nan
    if isinstance(value, str):
        try:
            result = float(value.strip())
        except ValueError:
            return math.nan
        return result if math.isfinite(result) else math.nan
    return math.nan


def values_equal(a: Any, b: Any) -> bool:
    """Cell equality that treats missing markers as mutually equal.

    Numeric payloads compare numerically (``"3.0"`` equals ``3.0``), so a
    repair that restores a number as a string still counts as correct.
    """
    a_missing, b_missing = is_missing(a), is_missing(b)
    if a_missing or b_missing:
        return a_missing and b_missing
    fa, fb = coerce_float(a), coerce_float(b)
    if not math.isnan(fa) and not math.isnan(fb):
        return fa == fb or math.isclose(fa, fb, rel_tol=1e-12, abs_tol=1e-12)
    if math.isnan(fa) != math.isnan(fb):
        return False
    return str(a).strip() == str(b).strip()


class Table:
    """An immutable-schema, mutable-content table of mixed-type columns."""

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence[Any]]):
        if set(columns) != set(schema.names):
            raise ValueError(
                "column data does not match schema: "
                f"schema={sorted(schema.names)} data={sorted(columns)}"
            )
        self._schema = schema
        self._data: Dict[str, np.ndarray] = {}
        n_rows: Optional[int] = None
        for name in schema.names:
            arr = np.empty(len(columns[name]), dtype=object)
            arr[:] = list(columns[name])
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise ValueError(
                    f"column {name!r} has {len(arr)} rows, expected {n_rows}"
                )
            self._data[name] = arr
        self._n_rows = n_rows if n_rows is not None else 0
        # Bumped by every in-place cell write; content-keyed consumers
        # (the artifact cache's fingerprint memo) use it to detect staleness.
        self._mutation_count = 0
        # Block views are read-only: a write through a view would bypass
        # the parent's mutation counter and poison fingerprint memos.
        self._readonly = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Iterable[Sequence[Any]]
    ) -> "Table":
        """Build a table from an iterable of row tuples (schema order)."""
        materialized = [tuple(r) for r in rows]
        for i, row in enumerate(materialized):
            if len(row) != len(schema):
                raise ValueError(
                    f"row {i} has {len(row)} fields, expected {len(schema)}"
                )
        columns = {
            name: [row[j] for row in materialized]
            for j, name in enumerate(schema.names)
        }
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        return cls(schema, {name: [] for name in schema.names})

    @classmethod
    def _wrap_arrays(
        cls,
        schema: Schema,
        data: Dict[str, np.ndarray],
        n_rows: int,
        readonly: bool = False,
    ) -> "Table":
        """Internal no-copy constructor wrapping existing column arrays.

        Used by :meth:`block_view` to build zero-copy views; callers own
        the aliasing consequences, which is why this stays private.
        """
        table = cls.__new__(cls)
        table._schema = schema
        table._data = data
        table._n_rows = n_rows
        table._mutation_count = 0
        table._readonly = readonly
        return table

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n_rows, len(self._schema))

    @property
    def column_names(self) -> List[str]:
        return self._schema.names

    def column(self, name: str) -> np.ndarray:
        """Return the raw object array for a column (a live view)."""
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}") from None

    def row(self, index: int) -> Tuple[Any, ...]:
        """Return row *index* as a tuple in schema order."""
        self._check_row(index)
        return tuple(self._data[name][index] for name in self._schema.names)

    def get_cell(self, row: int, column: str) -> Any:
        self._check_row(row)
        return self.column(column)[row]

    def set_cell(self, row: int, column: str, value: Any) -> None:
        if self._readonly:
            raise TypeError(
                "block views are read-only; write through the parent table"
            )
        self._check_row(row)
        self.column(column)[row] = value
        self._mutation_count += 1

    def _check_row(self, index: int) -> None:
        if not 0 <= index < self._n_rows:
            raise IndexError(
                f"row index {index} out of range [0, {self._n_rows})"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        return not self.diff_cells(other)

    def __hash__(self) -> int:  # Tables are mutable containers.
        raise TypeError("Table is unhashable")

    def __repr__(self) -> str:
        return f"Table({self._n_rows} rows x {len(self._schema)} columns)"

    # ------------------------------------------------------------------
    # Numeric views and missing masks
    # ------------------------------------------------------------------
    def as_float(self, name: str) -> np.ndarray:
        """Column as float64 with NaN for missing or non-numeric payloads."""
        col = self.column(name)
        return np.array([coerce_float(v) for v in col], dtype=np.float64)

    def numeric_matrix(self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack numeric views of columns into an ``(n_rows, k)`` matrix."""
        if names is None:
            names = self._schema.numerical_names
        if not names:
            return np.empty((self._n_rows, 0), dtype=np.float64)
        return np.column_stack([self.as_float(n) for n in names])

    def missing_mask(self, name: str) -> np.ndarray:
        """Boolean array marking explicitly missing cells of a column."""
        return np.array([is_missing(v) for v in self.column(name)], dtype=bool)

    def missing_cells(self) -> Set[Cell]:
        """All explicitly missing cells in the table."""
        cells: Set[Cell] = set()
        for name in self._schema.names:
            for i in np.flatnonzero(self.missing_mask(name)):
                cells.add((int(i), name))
        return cells

    # ------------------------------------------------------------------
    # Row-block views (zero-copy out-of-core substrate)
    # ------------------------------------------------------------------
    def block_view(self, start: int, stop: int) -> "Table":
        """Return a zero-copy, read-only view of rows ``[start, stop)``.

        The view shares the parent's column arrays through numpy basic
        slicing: no cell payloads are copied, and later in-place writes to
        the parent (via :meth:`set_cell`) remain visible through the view.
        Writes *through* the view are rejected because they would bypass
        the parent's mutation counter, on which the artifact cache's
        fingerprint memo relies.
        """
        if not 0 <= start <= stop <= self._n_rows:
            raise IndexError(
                f"block [{start}, {stop}) out of range [0, {self._n_rows}]"
            )
        data: Dict[str, np.ndarray] = {}
        for name in self._schema.names:
            view = self._data[name][start:stop]
            view.flags.writeable = False
            data[name] = view
        return Table._wrap_arrays(
            self._schema, data, stop - start, readonly=True
        )

    def iter_blocks(
        self, block_rows: int
    ) -> Iterable[Tuple[int, "Table"]]:
        """Yield ``(start_row, block_view)`` pairs covering all rows.

        Every block except possibly the last spans exactly ``block_rows``
        rows; blocks are yielded in row order and tile the table exactly
        once, so streaming consumers can reassemble whole-table results
        with plain ``out[start:start + block.n_rows]`` writes.
        """
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        for start in range(0, self._n_rows, block_rows):
            stop = min(start + block_rows, self._n_rows)
            yield start, self.block_view(start, stop)

    # ------------------------------------------------------------------
    # Structural operations (all return new tables)
    # ------------------------------------------------------------------
    def copy(self) -> "Table":
        return Table(
            self._schema,
            {name: self._data[name].copy() for name in self._schema.names},
        )

    def select_rows(self, indices: Sequence[int]) -> "Table":
        idx = np.asarray(indices, dtype=int)
        if len(idx) and (idx.min() < 0 or idx.max() >= self._n_rows):
            raise IndexError("row index out of range in select_rows")
        return Table(
            self._schema,
            {name: self._data[name][idx] for name in self._schema.names},
        )

    def drop_rows(self, indices: Iterable[int]) -> "Table":
        drop = set(int(i) for i in indices)
        keep = [i for i in range(self._n_rows) if i not in drop]
        return self.select_rows(keep)

    def select_columns(self, names: Sequence[str]) -> "Table":
        sub_schema = Schema(self._schema[n] for n in names)
        return Table(sub_schema, {n: self._data[n].copy() for n in names})

    def drop_columns(self, names: Iterable[str]) -> "Table":
        dropped = set(names)
        keep = [n for n in self._schema.names if n not in dropped]
        return self.select_columns(keep)

    def with_column(self, column: Column, values: Sequence[Any]) -> "Table":
        """Return a copy with an extra column appended."""
        if column.name in self._schema:
            raise ValueError(f"column {column.name!r} already exists")
        if len(values) != self._n_rows:
            raise ValueError("new column length does not match table")
        new_schema = Schema(list(self._schema.columns) + [column])
        data = {n: self._data[n].copy() for n in self._schema.names}
        data[column.name] = list(values)
        return Table(new_schema, data)

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> "Table":
        """Return a copy with extra rows appended (schema order)."""
        extra = [tuple(r) for r in rows]
        data = {}
        for j, name in enumerate(self._schema.names):
            data[name] = list(self._data[name]) + [row[j] for row in extra]
        return Table(self._schema, data)

    def map_column(self, name: str, fn: Callable[[Any], Any]) -> "Table":
        """Return a copy with *fn* applied to every cell of one column."""
        out = self.copy()
        col = out.column(name)
        for i in range(len(col)):
            col[i] = fn(col[i])
        return out

    # ------------------------------------------------------------------
    # Shared-memory buffer codec (the data plane's substrate)
    # ------------------------------------------------------------------
    def to_buffers(self):
        """Pack this table into flat typed buffers for shared memory.

        Returns an :class:`~repro.dataplane.codec.EncodedTable` whose
        ``meta`` describes the layout and whose ``write_into(buf)``
        places the buffers into any writable buffer (typically a
        ``multiprocessing.shared_memory`` segment).  The round-trip
        through :meth:`from_buffers` is cell-for-cell type- and
        bit-identical, including NaN payloads, ``inf`` and ``-0.0``.
        """
        from repro.dataplane.codec import encode_table

        return encode_table(self)

    @classmethod
    def from_buffers(cls, meta, buf) -> "Table":
        """Attach packed buffers as a read-only zero-copy table.

        Typed buffer views into ``buf`` are ``writeable=False`` and
        columns materialize lazily from them; the table is read-only
        (:meth:`set_cell` raises), because many processes may share the
        underlying bytes.
        """
        from repro.dataplane.codec import decode_table

        return decode_table(meta, buf)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def diff_cells(self, other: "Table") -> Set[Cell]:
        """Cells whose values differ between two same-shape tables.

        This is how REIN derives the ground-truth error mask: the dirty
        version is diffed against the clean version.
        """
        if self._schema.names != other._schema.names:
            raise ValueError("cannot diff tables with different columns")
        if self._n_rows != other._n_rows:
            raise ValueError(
                f"cannot diff tables with {self._n_rows} vs "
                f"{other._n_rows} rows"
            )
        cells: Set[Cell] = set()
        for name in self._schema.names:
            mine, theirs = self._data[name], other._data[name]
            for i in range(self._n_rows):
                if not values_equal(mine[i], theirs[i]):
                    cells.add((i, name))
        return cells

    # ------------------------------------------------------------------
    # CSV I/O
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write the table to CSV with a header row."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self._schema.names)
            for i in range(self._n_rows):
                writer.writerow(
                    ["" if is_missing(v) else v for v in self.row(i)]
                )

    @classmethod
    def from_csv(cls, path: str, schema: Schema) -> "Table":
        """Read a CSV written by :meth:`to_csv` back into a table.

        Numerical columns are parsed to float where possible; unparseable
        payloads are kept verbatim (they may be deliberate dirty values).
        """
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if header != schema.names:
                raise ValueError(
                    f"CSV header {header} does not match schema {schema.names}"
                )
            rows = []
            for raw in reader:
                row: List[Any] = []
                for name, text in zip(schema.names, raw):
                    if text == "":
                        row.append(None)
                    elif schema.kind_of(name) == NUMERICAL:
                        value = coerce_float(text)
                        row.append(text if math.isnan(value) else value)
                    else:
                        row.append(text)
                rows.append(row)
        return cls.from_rows(schema, rows)


def infer_schema(columns: Mapping[str, Sequence[Any]]) -> Schema:
    """Infer a schema from raw column data.

    A column is numerical when every non-missing payload coerces to float.
    """
    cols = []
    for name, values in columns.items():
        non_missing = [v for v in values if not is_missing(v)]
        numeric = non_missing and all(
            not math.isnan(coerce_float(v)) for v in non_missing
        )
        cols.append(Column(name, NUMERICAL if numeric else CATEGORICAL))
    return Schema(cols)
