"""The 19 error detection methods of Table 1.

Non-learning: KATARA, NADEEF, FAHES, HoloClean, dBoost, OpenRefine, IF, SD,
IQR, MVD, KeyCollision, ZeroER, CleanLab, Min-K, MaxEntropy.
ML-supported: Metadata-driven, RAHA, ED2, Picket.
"""

from typing import Dict, List

from repro.detectors.base import (
    ML_SUPPORTED,
    NON_LEARNING,
    BlockwiseDetector,
    DetectionResult,
    Detector,
)
from repro.detectors.cleanlab import CleanLabDetector
from repro.detectors.dboost import DBoostDetector
from repro.detectors.duplicates import KeyCollisionDetector, ZeroERDetector
from repro.detectors.ensembles import (
    MaxEntropyDetector,
    MinKDetector,
    default_base_detectors,
)
from repro.detectors.fahes import FahesDetector
from repro.detectors.katara import KataraDetector, KnowledgeBase
from repro.detectors.ml_detectors import (
    ED2Detector,
    MetadataDrivenDetector,
    PicketDetector,
    RahaDetector,
)
from repro.detectors.openrefine import OpenRefineDetector
from repro.detectors.rules import HoloCleanDetector, NadeefDetector
from repro.detectors.simple import IFDetector, IQRDetector, MVDetector, SDDetector


def all_detectors() -> List[Detector]:
    """Fresh instances of all 19 detectors with default configurations."""
    return [
        KataraDetector(),
        NadeefDetector(),
        FahesDetector(),
        HoloCleanDetector(),
        DBoostDetector(),
        OpenRefineDetector(),
        IFDetector(),
        SDDetector(),
        IQRDetector(),
        MVDetector(),
        KeyCollisionDetector(),
        ZeroERDetector(),
        CleanLabDetector(),
        MinKDetector(),
        MaxEntropyDetector(),
        MetadataDrivenDetector(),
        RahaDetector(),
        ED2Detector(),
        PicketDetector(),
    ]


def detector_registry() -> Dict[str, Detector]:
    """Detectors keyed by their paper names."""
    return {detector.name: detector for detector in all_detectors()}


__all__ = [
    "BlockwiseDetector",
    "CleanLabDetector",
    "DBoostDetector",
    "DetectionResult",
    "Detector",
    "ED2Detector",
    "FahesDetector",
    "HoloCleanDetector",
    "IFDetector",
    "IQRDetector",
    "KataraDetector",
    "KeyCollisionDetector",
    "KnowledgeBase",
    "MaxEntropyDetector",
    "MetadataDrivenDetector",
    "MinKDetector",
    "ML_SUPPORTED",
    "MVDetector",
    "NON_LEARNING",
    "NadeefDetector",
    "OpenRefineDetector",
    "PicketDetector",
    "RahaDetector",
    "SDDetector",
    "ZeroERDetector",
    "all_detectors",
    "default_base_detectors",
    "detector_registry",
]
