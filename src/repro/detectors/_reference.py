"""Frozen pre-vectorization detector kernels (equivalence oracles).

This module preserves the *original* scalar implementations of the
detector hot paths exactly as they were before the cleaning-stage
vectorization pass (mirroring :mod:`repro.ml._reference`):

- dBoost histogram scoring by a per-value Python bin-assignment loop;
- ZeroER candidate-pair enumeration by nested Python loops inside each
  block, and pair featurization by one Python call per pair that
  re-derives character trigram sets from scratch;
- KATARA domain/relation checking by per-row membership loops.

One deliberate deviation is documented inline:
:func:`reference_enumerate_block_pairs` iterates blocks in sorted-key
order rather than dict-insertion order.  The original insertion-order
scan made the surviving pair prefix -- and therefore which duplicate
row becomes the canonical (unflagged) representative -- depend on row
arrival order whenever the ``max_pairs`` cap binds.  The determinism
fix (sorted block keys, canonical sorted-group representative) applies
to the reference and the vectorized kernel alike so the equivalence
contract stays exact.

These functions must not be "improved": the property suite
(``tests/test_cleaning_kernels.py``) proves the vectorized kernels
bit-identical to them, and ``benchmarks/test_cleaning_speed.py``
measures speedups against them for the committed
``BENCH_cleaning.json``.  ``tools/check_hot_loops.py`` forbids these
patterns elsewhere under ``src/repro/detectors/``; this file is the
documented allowlist entry.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.dataset.table import Table, coerce_float, is_missing

# ----------------------------------------------------------------------
# dBoost: histogram scoring
# ----------------------------------------------------------------------


def reference_histogram_outliers(
    values: np.ndarray, threshold: float, n_bins: int
) -> np.ndarray:
    """Original per-value bin-assignment loop."""
    finite = values[~np.isnan(values)]
    if len(finite) < n_bins:
        return np.zeros(len(values), dtype=bool)
    counts, edges = np.histogram(finite, bins=n_bins)
    frequencies = counts / counts.sum()
    rare_bins = frequencies < threshold
    flagged = np.zeros(len(values), dtype=bool)
    for i, value in enumerate(values):
        if np.isnan(value):
            continue
        bin_index = int(np.clip(np.searchsorted(edges, value) - 1, 0, n_bins - 1))
        flagged[i] = rare_bins[bin_index]
    return flagged


# ----------------------------------------------------------------------
# ZeroER: blocking and pair features
# ----------------------------------------------------------------------


def reference_build_blocks(table: Table) -> Dict[str, List[int]]:
    """Original per-cell blocking-key construction loop.

    One Python iteration per cell, re-deriving ``coerce_float`` and the
    lowercased token split from scratch for every row even when a column
    holds a handful of distinct values.
    """
    from collections import defaultdict

    blocks: Dict[str, List[int]] = defaultdict(list)
    for i in range(table.n_rows):
        for column in table.column_names:
            value = table.get_cell(i, column)
            if is_missing(value):
                continue
            numeric = coerce_float(value)
            if not np.isnan(numeric):
                blocks[f"{column}:{round(numeric, 1)}"].append(i)
            else:
                for token in str(value).strip().lower().split():
                    blocks[f"{column}:{token}"].append(i)
    return blocks


def reference_enumerate_block_pairs(
    blocks: Mapping[str, List[int]],
    max_pairs: int,
    max_block_rows: int = 60,
) -> List[Tuple[int, int]]:
    """Original nested-loop within-block pair enumeration.

    Blocks are visited in sorted-key order (the determinism fix; see the
    module docstring) but each block's pairs are still enumerated by the
    original quadratic Python loops, stopping at the exact pair on which
    the running ``max_pairs`` cap is reached.
    """
    pairs: Set[Tuple[int, int]] = set()
    for key in sorted(blocks):
        rows = blocks[key]
        if len(rows) > max_block_rows:  # ubiquitous token: useless block
            continue
        unique_rows = sorted(set(rows))
        for a in range(len(unique_rows)):
            for b in range(a + 1, len(unique_rows)):
                pairs.add((unique_rows[a], unique_rows[b]))
                if len(pairs) >= max_pairs:
                    return sorted(pairs)
    return sorted(pairs)


def _reference_string_similarity(a: str, b: str) -> float:
    """Jaccard similarity over character trigrams (original)."""
    def grams(s: str) -> Set[str]:
        padded = f"  {s.lower()} "
        return {padded[i : i + 3] for i in range(len(padded) - 2)}

    ga, gb = grams(a), grams(b)
    union = ga | gb
    if not union:
        return 1.0
    return len(ga & gb) / len(union)


def reference_pair_features(
    table: Table, i: int, j: int, column_stds: Dict[str, float]
) -> np.ndarray:
    """Original per-pair scalar featurization."""
    features = []
    for column in table.column_names:
        a, b = table.get_cell(i, column), table.get_cell(j, column)
        if is_missing(a) or is_missing(b):
            features.append(0.5)
            continue
        fa, fb = coerce_float(a), coerce_float(b)
        if not np.isnan(fa) and not np.isnan(fb):
            scale = column_stds.get(column, 1.0) or 1.0
            features.append(max(0.0, 1.0 - abs(fa - fb) / scale))
        else:
            features.append(_reference_string_similarity(str(a), str(b)))
    return np.array(features)


def reference_pair_feature_matrix(
    table: Table,
    pairs: Sequence[Tuple[int, int]],
    column_stds: Dict[str, float],
) -> np.ndarray:
    """Original ``np.vstack`` of one Python featurization call per pair."""
    return np.vstack(
        [reference_pair_features(table, i, j, column_stds) for i, j in pairs]
    )


# ----------------------------------------------------------------------
# KATARA: domain and relation checking
# ----------------------------------------------------------------------


def reference_katara_align_column(
    kb, table: Table, column: str, min_overlap: float
) -> object:
    """Original per-value domain-overlap scoring loop."""
    values = [
        kb.normalize(v)
        for v in table.column(column)
        if not is_missing(v)
    ]
    values = [v for v in values if v is not None]
    if not values:
        return None
    best_concept, best_score = None, min_overlap
    for concept, domain in kb.domains.items():
        if not domain:
            continue
        score = sum(1 for v in values if v in domain) / len(values)
        if score > best_score:
            best_concept, best_score = concept, score
    return best_concept


def reference_katara_violations(
    kb, table: Table, alignment: Dict[str, str]
) -> Set[Tuple[int, str]]:
    """Original per-row domain/relation membership loops."""
    cells: Set[Tuple[int, str]] = set()
    for column, concept in alignment.items():
        domain = kb.domains[concept]
        for i, value in enumerate(table.column(column)):
            normalized = kb.normalize(value)
            if normalized is not None and normalized not in domain:
                cells.add((i, column))
    columns = list(alignment)
    for col_a in columns:
        for col_b in columns:
            if col_a == col_b:
                continue
            key = (alignment[col_a], alignment[col_b])
            if key not in kb.relations:
                continue
            valid_pairs = kb.relations[key]
            for i in range(table.n_rows):
                a = kb.normalize(table.get_cell(i, col_a))
                b = kb.normalize(table.get_cell(i, col_b))
                if a is None or b is None:
                    continue
                if (a, b) not in valid_pairs:
                    cells.add((i, col_a))
                    cells.add((i, col_b))
    return cells
