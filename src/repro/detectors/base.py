"""Detector protocol and result type.

A detector consumes a :class:`~repro.context.CleaningContext` and returns
the set of cells it believes erroneous, plus its runtime -- the two
quantities Section 6.2 evaluates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Set

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table

#: Methodology categories from Table 1.
NON_LEARNING = "non-learning"
ML_SUPPORTED = "ml-supported"


@dataclass(frozen=True)
class DetectionResult:
    """Cells flagged by one detector run."""

    detector: str
    cells: FrozenSet[Cell]
    runtime_seconds: float
    metadata: Dict[str, object] = field(default_factory=dict, compare=False)

    @property
    def n_detected(self) -> int:
        return len(self.cells)

    def restricted_to_columns(self, columns) -> "DetectionResult":
        allowed = set(columns)
        return DetectionResult(
            self.detector,
            frozenset(c for c in self.cells if c[1] in allowed),
            self.runtime_seconds,
            dict(self.metadata),
        )


class Detector:
    """Base class for all error detectors.

    Subclasses implement :meth:`_detect`; :meth:`detect` adds timing and
    result packaging.  Class attributes mirror Table 1:

    - ``name``: the paper's method name;
    - ``category``: non-learning or ML-supported;
    - ``tackles``: error types the method targets (controller pruning key).
    """

    name: str = "detector"
    category: str = NON_LEARNING
    tackles: FrozenSet[str] = frozenset()

    def detect(self, context: CleaningContext) -> DetectionResult:
        """Run detection, timing the full pass over the dataset.

        Checks the context deadline before starting; long-running
        subclasses should additionally call ``context.check_deadline()``
        inside their hot loops so the suite's wall-clock budget is
        enforced cooperatively.
        """
        context.check_deadline(f"{self.name}.detect")
        clock = context.clock or time.perf_counter
        started = clock()
        cells = self._detect(context)
        elapsed = clock() - started
        return DetectionResult(self.name, frozenset(cells), elapsed)

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class BlockwiseDetector:
    """Capability mixin for detectors that can stream over row blocks.

    A detector qualifies when its per-cell decision is a pure function of
    (a) whole-table *profile* statistics and (b) that cell's own row --
    the profile-based detectors (missing values, SD, IQR).  The fit half
    (:meth:`fit_profile`) sees the whole table exactly once; the
    inference half (:meth:`detect_block`) is then evaluated per zero-copy
    block view with a global row offset, and the union of block results
    equals the whole-table :meth:`Detector.detect` cell set exactly.

    Profiles must be picklable: the parallel engine ships them to worker
    processes alongside the ``(unit x row-block)`` sub-units.
    """

    def fit_profile(self, context: CleaningContext) -> Any:
        """Whole-table fit pass; returns the picklable profile."""
        return None

    def detect_block(
        self,
        context: CleaningContext,
        fitted: Any,
        block: Table,
        start: int,
    ) -> DetectionResult:
        """Run inference on one row block, timing just that block.

        ``start`` is the block's first row's global index; returned cells
        carry global row indices.
        """
        context.check_deadline(f"{self.name}.detect_block")
        clock = context.clock or time.perf_counter
        started = clock()
        cells = self._detect_block(context, fitted, block, start)
        elapsed = clock() - started
        return DetectionResult(self.name, frozenset(cells), elapsed)

    def _detect_block(
        self,
        context: CleaningContext,
        fitted: Any,
        block: Table,
        start: int,
    ) -> Set[Cell]:
        raise NotImplementedError
