"""CleanLab: mislabel detection via confident learning.

Confident learning (Northcutt et al.) estimates the joint distribution of
noisy and true labels from out-of-sample predicted probabilities: a sample
is flagged when its predicted probability for some *other* class exceeds
that class's self-confidence threshold (the mean predicted probability of
samples labeled with that class).  We compute out-of-sample probabilities
with k-fold cross-validated classifiers over the encoded features.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.context import CleaningContext
from repro.dataset.encoding import LabelEncoder, TableEncoder
from repro.dataset.splits import kfold_indices
from repro.dataset.table import Cell
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile
from repro.ml.linear import LogisticRegression


class CleanLabDetector(Detector):
    """Noisy-label detection (Table 1 row 'C')."""

    name = "CleanLab"
    category = NON_LEARNING
    tackles = frozenset({profile.MISLABEL})

    def __init__(self, n_folds: int = 4) -> None:
        if n_folds < 2:
            raise ValueError("n_folds must be >= 2")
        self.n_folds = n_folds

    def _out_of_sample_probabilities(
        self, features: np.ndarray, labels: np.ndarray, n_classes: int, seed: int
    ) -> Optional[np.ndarray]:
        probabilities = np.zeros((len(features), n_classes))
        filled = np.zeros(len(features), dtype=bool)
        folds = kfold_indices(len(features), self.n_folds, seed=seed)
        for train_idx, test_idx in folds:
            if len(np.unique(labels[train_idx])) < 2:
                continue
            model = LogisticRegression(max_iter=150)
            model.fit(features[train_idx], labels[train_idx])
            fold_probabilities = model.predict_proba(features[test_idx])
            for local, cls in enumerate(model.classes_):
                probabilities[test_idx, int(cls)] = fold_probabilities[:, local]
            filled[test_idx] = True
        if not filled.all():
            return None
        return probabilities

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        label_column = context.label_column
        if label_column is None or label_column not in context.dirty.schema:
            return set()
        table = context.dirty
        if table.n_rows < self.n_folds * 2:
            return set()
        encoder = TableEncoder()
        features = encoder.fit_transform(table, exclude=[label_column])
        label_encoder = LabelEncoder()
        labels = label_encoder.fit_transform(table.column(label_column))
        n_classes = label_encoder.n_classes
        if n_classes < 2:
            return set()
        probabilities = self._out_of_sample_probabilities(
            features, labels, n_classes, context.seed
        )
        if probabilities is None:
            return set()
        # Self-confidence threshold per class: mean p(class) over samples
        # currently labeled with that class.
        thresholds = np.zeros(n_classes)
        for cls in range(n_classes):
            members = labels == cls
            thresholds[cls] = (
                probabilities[members, cls].mean() if members.any() else 1.1
            )
        cells: Set[Cell] = set()
        for i in range(len(labels)):
            given = labels[i]
            # Confident classes: those whose probability clears the bar.
            confident = [
                cls
                for cls in range(n_classes)
                if probabilities[i, cls] >= thresholds[cls]
            ]
            if not confident:
                continue
            best = max(confident, key=lambda cls: probabilities[i, cls])
            if best != given:
                cells.add((i, label_column))
        return cells
