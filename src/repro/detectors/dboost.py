"""dBoost: ensemble outlier detection with automatic configuration search.

dBoost (Mariet & Madden) combines histogram, Gaussian, and Gaussian-mixture
per-column models and tunes their hyperparameters by random search over the
configuration space.  Each candidate configuration is scored by how cleanly
it separates a small flagged fraction from the bulk (an unsupervised proxy
for precision), and the best configuration's detections are returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table
from repro.detectors._reference import reference_histogram_outliers
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile
from repro.kernels import kernel_stage, use_reference_kernels


@dataclass(frozen=True)
class _Config:
    model: str          # 'gaussian' | 'histogram' | 'mixture'
    threshold: float    # sigma multiplier or frequency cut-off
    n_bins: int = 10
    n_components: int = 2


def _gaussian_outliers(values: np.ndarray, threshold: float) -> np.ndarray:
    finite = values[~np.isnan(values)]
    if len(finite) < 3 or finite.std() == 0:
        return np.zeros(len(values), dtype=bool)
    z = np.abs(values - finite.mean()) / finite.std()
    return (z > threshold) & ~np.isnan(values)


def _histogram_outliers(
    values: np.ndarray, threshold: float, n_bins: int
) -> np.ndarray:
    if use_reference_kernels():
        return reference_histogram_outliers(values, threshold, n_bins)
    finite = values[~np.isnan(values)]
    if len(finite) < n_bins:
        return np.zeros(len(values), dtype=bool)
    counts, edges = np.histogram(finite, bins=n_bins)
    frequencies = counts / counts.sum()
    rare_bins = frequencies < threshold
    flagged = np.zeros(len(values), dtype=bool)
    valid = ~np.isnan(values)
    bins = np.clip(np.searchsorted(edges, values[valid]) - 1, 0, n_bins - 1)
    flagged[valid] = rare_bins[bins]
    return flagged


def _mixture_outliers(
    values: np.ndarray,
    threshold: float,
    n_components: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Flag values with low likelihood under a 1-D Gaussian mixture."""
    finite = values[~np.isnan(values)]
    if len(finite) < max(8, n_components * 3):
        return np.zeros(len(values), dtype=bool)
    # Tiny 1-D EM.
    means = np.quantile(finite, np.linspace(0.2, 0.8, n_components))
    variances = np.full(n_components, finite.var() / n_components + 1e-9)
    weights = np.full(n_components, 1.0 / n_components)
    for _ in range(25):
        log_probs = (
            np.log(weights[None, :] + 1e-12)
            - 0.5 * np.log(2 * np.pi * variances[None, :])
            - 0.5 * (finite[:, None] - means[None, :]) ** 2 / variances[None, :]
        )
        log_norm = np.logaddexp.reduce(log_probs, axis=1)
        resp = np.exp(log_probs - log_norm[:, None])
        total = resp.sum(axis=0) + 1e-10
        weights = total / len(finite)
        means = resp.T @ finite / total
        variances = (
            resp.T @ (finite[:, None] - means[None, :]) ** 2
        ).diagonal() / total + 1e-9
    def loglik(x: np.ndarray) -> np.ndarray:
        log_probs = (
            np.log(weights[None, :] + 1e-12)
            - 0.5 * np.log(2 * np.pi * variances[None, :])
            - 0.5 * (x[:, None] - means[None, :]) ** 2 / variances[None, :]
        )
        return np.logaddexp.reduce(log_probs, axis=1)
    cut = np.quantile(loglik(finite), threshold)
    flagged = np.zeros(len(values), dtype=bool)
    valid = ~np.isnan(values)
    flagged[valid] = loglik(values[valid]) < cut
    return flagged


class DBoostDetector(Detector):
    """dBoost with random configuration search (Table 1 row 'B')."""

    name = "dBoost"
    category = NON_LEARNING
    tackles = frozenset({profile.OUTLIER, profile.IMPLICIT_MISSING})

    def __init__(self, n_search: int = 12, seed: int = 0) -> None:
        if n_search < 1:
            raise ValueError("n_search must be >= 1")
        self.n_search = n_search
        self.seed = seed

    def _random_config(self, rng: np.random.Generator) -> _Config:
        model = ("gaussian", "histogram", "mixture")[int(rng.integers(3))]
        if model == "gaussian":
            return _Config(model, threshold=float(rng.uniform(2.0, 5.0)))
        if model == "histogram":
            return _Config(
                model,
                threshold=float(rng.uniform(0.005, 0.05)),
                n_bins=int(rng.integers(8, 30)),
            )
        return _Config(
            model,
            threshold=float(rng.uniform(0.005, 0.05)),
            n_components=int(rng.integers(2, 4)),
        )

    def _apply(
        self, values: np.ndarray, config: _Config, rng: np.random.Generator
    ) -> np.ndarray:
        if config.model == "gaussian":
            return _gaussian_outliers(values, config.threshold)
        if config.model == "histogram":
            return _histogram_outliers(values, config.threshold, config.n_bins)
        return _mixture_outliers(
            values, config.threshold, config.n_components, rng
        )

    @staticmethod
    def _separation_score(values: np.ndarray, flagged: np.ndarray) -> float:
        """Unsupervised config score: distance between flagged and bulk.

        Good configurations flag a small, clearly separated fraction.
        """
        valid = ~np.isnan(values)
        flagged = flagged & valid
        n_flagged = int(flagged.sum())
        n_valid = int(valid.sum())
        if n_flagged == 0 or n_flagged == n_valid:
            return -np.inf
        fraction = n_flagged / n_valid
        if fraction > 0.4:
            return -np.inf
        bulk = values[valid & ~flagged]
        spread = bulk.std() or 1.0
        gap = np.abs(values[flagged] - bulk.mean()).mean() / spread
        return float(gap - 2.0 * fraction)

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        with kernel_stage("dboost"):
            return self._detect_columns(context)

    def _detect_columns(self, context: CleaningContext) -> Set[Cell]:
        rng = context.rng(17)
        table = context.dirty
        cells: Set[Cell] = set()
        for column in table.schema.numerical_names:
            values = table.as_float(column)
            if (~np.isnan(values)).sum() < 8:
                continue
            best_flags: Optional[np.ndarray] = None
            best_score = -np.inf
            for _ in range(self.n_search):
                config = self._random_config(rng)
                flagged = self._apply(values, config, rng)
                score = self._separation_score(values, flagged)
                if score > best_score:
                    best_score, best_flags = score, flagged
            if best_flags is None or best_score == -np.inf:
                continue
            for i in np.flatnonzero(best_flags):
                cells.add((int(i), column))
        return cells
