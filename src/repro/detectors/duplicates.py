"""Duplicate detectors: key collision and ZeroER.

Key collision flags rows sharing the user-provided key attributes.  ZeroER
(Wu et al.) needs *zero* labeled examples: it derives Magellan-style
similarity features for candidate row pairs (found via cheap blocking) and
fits a two-component Gaussian mixture whose components correspond to the
match / unmatch populations; pairs assigned to the high-similarity
component are duplicates.

The candidate-pair pipeline runs on vectorized kernels proven
bit-identical to the frozen scalars in
:mod:`repro.detectors._reference`:

- :func:`build_blocks` derives blocking keys once per *distinct* cell
  payload instead of once per cell;
- :func:`_enumerate_block_pairs` replaces the nested within-block loops
  with cached ``np.triu_indices`` lookups and integer pair codes, while
  reproducing the exact pair prefix at which the ``max_pairs`` cap fired
  in the scalar enumeration (blocks visited in sorted-key order -- the
  canonical-representative determinism fix shared with the reference);
- :func:`pair_feature_matrix` featurizes all pairs per column at once,
  with trigram sets interned per distinct string (CSR layout) and pair
  intersections computed by one sort over pair-tagged gram codes.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Any, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.cache.keys import artifact_key, table_fingerprint
from repro.cache.store import current_cache
from repro.context import CleaningContext
from repro.dataset.columnar import csr_gather, intern_values, normalized_column
from repro.dataset.table import Cell, Table, coerce_float, is_missing
from repro.detectors._reference import (
    reference_build_blocks,
    reference_enumerate_block_pairs,
    reference_pair_feature_matrix,
)
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile
from repro.kernels import kernel_stage, use_reference_kernels
from repro.ml.cluster import GaussianMixture


def _duplicate_cells(table: Table, groups: List[List[int]]) -> Set[Cell]:
    """All cells of every non-first row in each duplicate group.

    The canonical (unflagged) representative is the *smallest* row index
    of the sorted group, so it does not depend on the order in which the
    grouping discovered the rows.
    """
    cells: Set[Cell] = set()
    for rows in groups:
        for row in sorted(rows)[1:]:
            for column in table.column_names:
                cells.add((row, column))
    return cells


class KeyCollisionDetector(Detector):
    """Duplicate detection via user-provided key attributes (row 'D')."""

    name = "KeyCollision"
    category = NON_LEARNING
    tackles = frozenset({profile.DUPLICATE})

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        keys = [
            c for c in context.key_columns if c in context.dirty.schema
        ]
        if not keys:
            return set()
        table = context.dirty
        groups: Dict[Tuple[str, ...], List[int]] = defaultdict(list)
        for i in range(table.n_rows):
            parts = []
            valid = True
            for key in keys:
                value = table.get_cell(i, key)
                if is_missing(value):
                    valid = False
                    break
                parts.append(str(value).strip().lower())
            if valid:
                groups[tuple(parts)].append(i)
        duplicate_groups = [rows for rows in groups.values() if len(rows) > 1]
        return _duplicate_cells(table, duplicate_groups)


def _string_similarity(a: str, b: str) -> float:
    """Jaccard similarity over character trigrams (Magellan-style)."""
    def grams(s: str) -> Set[str]:
        padded = f"  {s.lower()} "
        return {padded[i : i + 3] for i in range(len(padded) - 2)}

    ga, gb = grams(a), grams(b)
    union = ga | gb
    if not union:
        return 1.0
    return len(ga & gb) / len(union)


def pair_features(
    table: Table, i: int, j: int, column_stds: Dict[str, float]
) -> np.ndarray:
    """Per-column similarity feature vector for a row pair.

    Numeric similarity is scaled by the column's standard deviation so only
    near-identical values score highly -- two ordinary rows of the same
    distribution should not look like a match.
    """
    features = []
    for column in table.column_names:
        a, b = table.get_cell(i, column), table.get_cell(j, column)
        if is_missing(a) or is_missing(b):
            features.append(0.5)
            continue
        fa, fb = coerce_float(a), coerce_float(b)
        if not np.isnan(fa) and not np.isnan(fb):
            scale = column_stds.get(column, 1.0) or 1.0
            features.append(max(0.0, 1.0 - abs(fa - fb) / scale))
        else:
            features.append(_string_similarity(str(a), str(b)))
    return np.array(features)


def column_standard_deviations(table: Table) -> Dict[str, float]:
    """Per-column std of the numeric view (0 columns excluded)."""
    stds: Dict[str, float] = {}
    for column in table.column_names:
        values = table.as_float(column)
        finite = values[~np.isnan(values)]
        if len(finite) > 1:
            stds[column] = float(finite.std()) or 1.0
    return stds


# ----------------------------------------------------------------------
# Vectorized blocking and pair featurization
# ----------------------------------------------------------------------


def _block_keys(column: str, value: Any) -> List[str]:
    """Blocking keys of one cell (same derivation as the scalar loop)."""
    if is_missing(value):
        return []
    numeric = coerce_float(value)
    if not np.isnan(numeric):
        return [f"{column}:{round(numeric, 1)}"]
    return [
        f"{column}:{token}" for token in str(value).strip().lower().split()
    ]


def _numeric_column_blocks(
    column: str, values: List[Any], blocks: Dict[str, List[int]]
) -> bool:
    """Exact fast path for columns holding only ``float``/``int``/``None``.

    Continuous sensor columns have ~one distinct payload per cell, so the
    per-distinct key derivation of the general path degenerates into a
    per-cell Python loop.  Here the grouping happens on the raw float
    *bit patterns* (``np.unique`` over an int64 view), which keeps every
    distinction the scalar keys make -- ``-0.0`` vs ``0.0`` round to
    different key strings, every NaN payload is missing, ``inf`` falls
    through to its token key -- and Python-level work shrinks to one
    ``round`` + f-string per distinct value.  Returns False when any
    payload needs the general path.
    """
    for v in values:
        if not (v is None or type(v) is float or type(v) is int):
            return False
    floats = np.array(
        [math.nan if v is None else float(v) for v in values],
        dtype=np.float64,
    )
    present = np.flatnonzero(~np.isnan(floats))
    if not len(present):
        return True
    bits = floats[present].view(np.int64)
    distinct_bits, inverse = np.unique(bits, return_inverse=True)
    distinct = distinct_bits.view(np.float64)
    keys = np.array(
        [
            # coerce_float maps non-finite payloads to NaN, so the scalar
            # key for an inf cell is its lowercase token, not a round.
            f"{column}:{v}" if math.isinf(v) else f"{column}:{round(v, 1)}"
            for v in distinct.tolist()
        ]
    )
    key_names, key_codes = np.unique(keys, return_inverse=True)
    cell_codes = key_codes[inverse.ravel()]
    order = np.argsort(cell_codes, kind="stable")
    sorted_codes = cell_codes[order]
    members = present[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_codes)) + 1))
    stops = np.append(starts[1:], len(sorted_codes))
    for start, stop in zip(starts.tolist(), stops.tolist()):
        blocks[str(key_names[sorted_codes[start]])].extend(
            members[start:stop].tolist()
        )
    return True


def build_blocks(table: Table) -> Dict[str, List[int]]:
    """Blocking-key index, keys derived once per distinct cell payload.

    Produces the same key -> row multiset mapping as the frozen scalar
    :func:`reference_build_blocks`; only the within-block row order may
    differ, which no consumer observes (pair enumeration deduplicates
    and sorts, the oversize-block cut uses the multiset length).
    """
    if use_reference_kernels():
        return reference_build_blocks(table)
    blocks: Dict[str, List[int]] = defaultdict(list)
    for column in table.column_names:
        column_values = table.column(column)
        if _numeric_column_blocks(column, column_values, blocks):
            continue
        by_value: Dict[Any, List[int]] = {}
        unkeyed: List[Tuple[int, Any]] = []
        for index, value in enumerate(column_values):
            try:
                by_value.setdefault((type(value), value), []).append(index)
            except TypeError:  # unhashable payload: key it directly
                unkeyed.append((index, value))
        for (_, value), members in by_value.items():
            for key, multiplicity in Counter(
                _block_keys(column, value)
            ).items():
                blocks[key].extend(members * multiplicity)
        for index, value in unkeyed:
            for key in _block_keys(column, value):
                blocks[key].append(index)
    return blocks


_TRIU_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _pair_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``np.triu_indices(n, 1)`` (row-major: a outer, b inner)."""
    cached = _TRIU_CACHE.get(n)
    if cached is None:
        cached = _TRIU_CACHE[n] = np.triu_indices(n, 1)
    return cached


def _enumerate_block_pairs(
    blocks: Dict[str, List[int]],
    max_pairs: int,
    max_block_rows: int = 60,
) -> List[Tuple[int, int]]:
    """Within-block candidate pairs as integer codes, exact cap semantics.

    Blocks are visited in sorted-key order and each block's pairs are
    generated in the scalar nested-loop order (``triu_indices`` is
    row-major), so when the running distinct-pair count reaches
    ``max_pairs`` the surviving prefix is identical to the frozen
    reference's.  Away from the cap everything stays in numpy.
    """
    if use_reference_kernels():
        return reference_enumerate_block_pairs(
            blocks, max_pairs, max_block_rows
        )
    block_rows: List[np.ndarray] = []
    base = 1
    total = 0
    for key in sorted(blocks):
        rows = blocks[key]
        if len(rows) > max_block_rows:  # ubiquitous token: useless block
            continue
        unique_rows = np.unique(np.asarray(rows, dtype=np.int64))
        if len(unique_rows) < 2:
            continue
        block_rows.append(unique_rows)
        base = max(base, int(unique_rows[-1]) + 1)
        total += len(unique_rows) * (len(unique_rows) - 1) // 2
    if not block_rows:
        return []
    chunks = []
    for unique_rows in block_rows:
        ia, ib = _pair_indices(len(unique_rows))
        chunks.append(unique_rows[ia] * base + unique_rows[ib])
    if total < max_pairs:  # cap cannot bind: one dedup over everything
        codes = np.unique(np.concatenate(chunks))
    else:  # replicate the scalar stop point pair by pair near the cap
        seen: Set[int] = set()
        capped = False
        for chunk in chunks:
            if len(seen) + len(chunk) < max_pairs:
                seen.update(chunk.tolist())
                continue
            for code in chunk.tolist():
                seen.add(code)
                if len(seen) >= max_pairs:
                    capped = True
                    break
            if capped:
                break
        codes = np.fromiter(seen, dtype=np.int64, count=len(seen))
        codes.sort()
    return list(zip((codes // base).tolist(), (codes % base).tolist()))


def _trigram_csr(
    strings: List[str], needed: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct-trigram id lists for the referenced strings (CSR layout)."""
    gram_ids: Dict[str, int] = {}
    offsets = np.zeros(len(strings), dtype=np.int64)
    lengths = np.zeros(len(strings), dtype=np.int64)
    flat_parts: List[np.ndarray] = []
    cursor = 0
    for uid in needed.tolist():
        padded = f"  {strings[uid].lower()} "
        grams = {padded[i : i + 3] for i in range(len(padded) - 2)}
        ids = np.fromiter(
            (gram_ids.setdefault(g, len(gram_ids)) for g in grams),
            dtype=np.int64,
            count=len(grams),
        )
        flat_parts.append(ids)
        offsets[uid] = cursor
        lengths[uid] = len(ids)
        cursor += len(ids)
    flat = (
        np.concatenate(flat_parts)
        if flat_parts
        else np.zeros(0, dtype=np.int64)
    )
    return flat, offsets, lengths


def _string_similarity_batch(
    ua: np.ndarray, ub: np.ndarray, strings: List[str]
) -> np.ndarray:
    """Trigram Jaccard for many (string-id, string-id) pairs at once.

    Intersections come from one sort over pair-tagged gram codes: a gram
    id appears at most once per side, so a duplicated code means the
    gram sits in both sets.  ``inter / union`` divides the same Python
    ints the scalar ``len() / len()`` divides, so results are
    bit-identical.
    """
    n_strings = max(len(strings), 1)
    pair_codes = ua * n_strings + ub
    unique_codes, inverse = np.unique(pair_codes, return_inverse=True)
    ua_u = unique_codes // n_strings
    ub_u = unique_codes % n_strings
    needed = np.unique(np.concatenate([ua_u, ub_u]))
    flat, offsets, lengths = _trigram_csr(strings, needed)
    vocabulary = max(int(flat.max()) + 1 if len(flat) else 1, 1)
    grams_a, owners_a = csr_gather(flat, offsets, lengths, ua_u)
    grams_b, owners_b = csr_gather(flat, offsets, lengths, ub_u)
    tagged = np.concatenate(
        [owners_a * vocabulary + grams_a, owners_b * vocabulary + grams_b]
    )
    tagged.sort()
    duplicated = tagged[1:][tagged[1:] == tagged[:-1]]
    inter = np.bincount(duplicated // vocabulary, minlength=len(unique_codes))
    union = lengths[ua_u] + lengths[ub_u] - inter
    sims = np.where(union == 0, 1.0, inter / np.maximum(union, 1))
    return sims[inverse.ravel()]


def pair_feature_matrix(
    table: Table,
    pairs: Sequence[Tuple[int, int]],
    column_stds: Dict[str, float],
) -> np.ndarray:
    """Similarity features for all candidate pairs, one column at a time.

    Bit-identical to stacking :func:`pair_features` over ``pairs``: the
    numeric branch applies the same IEEE operations elementwise, and the
    string branch computes the same trigram Jaccard per distinct string
    pair (see :func:`_string_similarity_batch`).
    """
    if use_reference_kernels():
        return reference_pair_feature_matrix(table, pairs, column_stds)
    n_pairs = len(pairs)
    left = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=n_pairs)
    right = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=n_pairs)
    features = np.empty((n_pairs, len(table.column_names)))
    for k, column in enumerate(table.column_names):
        cells = table.column(column)
        miss = np.array(normalized_column(cells, is_missing), dtype=bool)
        floats = np.array(normalized_column(cells, coerce_float), dtype=float)
        missing_pair = miss[left] | miss[right]
        fa, fb = floats[left], floats[right]
        numeric_pair = ~missing_pair & ~np.isnan(fa) & ~np.isnan(fb)
        out = np.empty(n_pairs)
        out[missing_pair] = 0.5
        scale = column_stds.get(column, 1.0) or 1.0
        out[numeric_pair] = np.maximum(
            0.0, 1.0 - np.abs(fa[numeric_pair] - fb[numeric_pair]) / scale
        )
        stringy = ~missing_pair & ~numeric_pair
        if stringy.any():
            uids, distinct = intern_values(normalized_column(cells, str))
            out[stringy] = _string_similarity_batch(
                uids[left[stringy]], uids[right[stringy]], distinct
            )
        features[:, k] = out
    return features


class ZeroERDetector(Detector):
    """ZeroER: unsupervised entity resolution with a GMM (row 'Z').

    Blocking: candidate pairs share a token in any categorical attribute
    (or a rounded numeric value), keeping the pair set tractable.
    """

    name = "ZeroER"
    category = NON_LEARNING
    tackles = frozenset({profile.DUPLICATE})

    def __init__(self, max_pairs: int = 50_000, match_threshold: float = 0.5) -> None:
        self.max_pairs = max_pairs
        self.match_threshold = match_threshold

    def _blocking_pairs(self, table: Table) -> List[Tuple[int, int]]:
        if use_reference_kernels():
            return _enumerate_block_pairs(build_blocks(table), self.max_pairs)
        cache = current_cache()
        key = None
        if cache is not None:
            key = artifact_key(
                "duplicate_block_pairs@v1",
                [table_fingerprint(table)],
                {"max_pairs": self.max_pairs, "max_block_rows": 60},
            )
            entry = cache.get(key)
            if entry is not None:
                return list(
                    zip(
                        entry.arrays["lo"].tolist(),
                        entry.arrays["hi"].tolist(),
                    )
                )
        pairs = _enumerate_block_pairs(build_blocks(table), self.max_pairs)
        if cache is not None and key is not None:
            cache.put(
                key,
                arrays={
                    "lo": np.fromiter(
                        (p[0] for p in pairs), np.int64, count=len(pairs)
                    ),
                    "hi": np.fromiter(
                        (p[1] for p in pairs), np.int64, count=len(pairs)
                    ),
                },
                meta={"n_pairs": len(pairs)},
            )
        return pairs

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        table = context.dirty
        with kernel_stage("duplicates.blocking"):
            pairs = self._blocking_pairs(table)
        if len(pairs) < 4:
            return set()
        stds = column_standard_deviations(table)
        with kernel_stage("duplicates.features"):
            features = pair_feature_matrix(table, pairs, stds)
        mixture = GaussianMixture(n_components=2, seed=context.seed)
        try:
            mixture.fit(features)
        except (ValueError, np.linalg.LinAlgError):
            return set()
        # The match component is the one with the higher mean similarity.
        match_component = int(np.argmax(mixture.means_.mean(axis=1)))
        probabilities = mixture.predict_proba(features)[:, match_component]
        mean_similarity = features.mean(axis=1)
        groups: List[List[int]] = []
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            while parent.setdefault(x, x) != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        matched = False
        for (i, j), probability, similarity in zip(
            pairs, probabilities, mean_similarity
        ):
            # Require both the GMM assignment and near-exact similarity;
            # with no true matches the two components split the bulk and the
            # similarity floor keeps coincidentally-close rows out.
            if probability > self.match_threshold and similarity >= 0.97:
                parent[find(i)] = find(j)
                matched = True
        if not matched:
            return set()
        clusters: Dict[int, List[int]] = defaultdict(list)
        for node in parent:
            clusters[find(node)].append(node)
        duplicate_groups = [rows for rows in clusters.values() if len(rows) > 1]
        return _duplicate_cells(table, duplicate_groups)
