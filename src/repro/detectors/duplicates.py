"""Duplicate detectors: key collision and ZeroER.

Key collision flags rows sharing the user-provided key attributes.  ZeroER
(Wu et al.) needs *zero* labeled examples: it derives Magellan-style
similarity features for candidate row pairs (found via cheap blocking) and
fits a two-component Gaussian mixture whose components correspond to the
match / unmatch populations; pairs assigned to the high-similarity
component are duplicates.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table, coerce_float, is_missing
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile
from repro.ml.cluster import GaussianMixture


def _duplicate_cells(table: Table, groups: List[List[int]]) -> Set[Cell]:
    """All cells of every non-first row in each duplicate group."""
    cells: Set[Cell] = set()
    for rows in groups:
        for row in sorted(rows)[1:]:
            for column in table.column_names:
                cells.add((row, column))
    return cells


class KeyCollisionDetector(Detector):
    """Duplicate detection via user-provided key attributes (row 'D')."""

    name = "KeyCollision"
    category = NON_LEARNING
    tackles = frozenset({profile.DUPLICATE})

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        keys = [
            c for c in context.key_columns if c in context.dirty.schema
        ]
        if not keys:
            return set()
        table = context.dirty
        groups: Dict[Tuple[str, ...], List[int]] = defaultdict(list)
        for i in range(table.n_rows):
            parts = []
            valid = True
            for key in keys:
                value = table.get_cell(i, key)
                if is_missing(value):
                    valid = False
                    break
                parts.append(str(value).strip().lower())
            if valid:
                groups[tuple(parts)].append(i)
        duplicate_groups = [rows for rows in groups.values() if len(rows) > 1]
        return _duplicate_cells(table, duplicate_groups)


def _string_similarity(a: str, b: str) -> float:
    """Jaccard similarity over character trigrams (Magellan-style)."""
    def grams(s: str) -> Set[str]:
        padded = f"  {s.lower()} "
        return {padded[i : i + 3] for i in range(len(padded) - 2)}

    ga, gb = grams(a), grams(b)
    union = ga | gb
    if not union:
        return 1.0
    return len(ga & gb) / len(union)


def pair_features(
    table: Table, i: int, j: int, column_stds: Dict[str, float]
) -> np.ndarray:
    """Per-column similarity feature vector for a row pair.

    Numeric similarity is scaled by the column's standard deviation so only
    near-identical values score highly -- two ordinary rows of the same
    distribution should not look like a match.
    """
    features = []
    for column in table.column_names:
        a, b = table.get_cell(i, column), table.get_cell(j, column)
        if is_missing(a) or is_missing(b):
            features.append(0.5)
            continue
        fa, fb = coerce_float(a), coerce_float(b)
        if not np.isnan(fa) and not np.isnan(fb):
            scale = column_stds.get(column, 1.0) or 1.0
            features.append(max(0.0, 1.0 - abs(fa - fb) / scale))
        else:
            features.append(_string_similarity(str(a), str(b)))
    return np.array(features)


def column_standard_deviations(table: Table) -> Dict[str, float]:
    """Per-column std of the numeric view (0 columns excluded)."""
    stds: Dict[str, float] = {}
    for column in table.column_names:
        values = table.as_float(column)
        finite = values[~np.isnan(values)]
        if len(finite) > 1:
            stds[column] = float(finite.std()) or 1.0
    return stds


class ZeroERDetector(Detector):
    """ZeroER: unsupervised entity resolution with a GMM (row 'Z').

    Blocking: candidate pairs share a token in any categorical attribute
    (or a rounded numeric value), keeping the pair set tractable.
    """

    name = "ZeroER"
    category = NON_LEARNING
    tackles = frozenset({profile.DUPLICATE})

    def __init__(self, max_pairs: int = 50_000, match_threshold: float = 0.5) -> None:
        self.max_pairs = max_pairs
        self.match_threshold = match_threshold

    def _blocking_pairs(self, table: Table) -> List[Tuple[int, int]]:
        blocks: Dict[str, List[int]] = defaultdict(list)
        for i in range(table.n_rows):
            for column in table.column_names:
                value = table.get_cell(i, column)
                if is_missing(value):
                    continue
                numeric = coerce_float(value)
                if not np.isnan(numeric):
                    blocks[f"{column}:{round(numeric, 1)}"].append(i)
                else:
                    for token in str(value).strip().lower().split():
                        blocks[f"{column}:{token}"].append(i)
        pairs: Set[Tuple[int, int]] = set()
        for rows in blocks.values():
            if len(rows) > 60:  # ubiquitous token: useless block
                continue
            unique_rows = sorted(set(rows))
            for a in range(len(unique_rows)):
                for b in range(a + 1, len(unique_rows)):
                    pairs.add((unique_rows[a], unique_rows[b]))
                    if len(pairs) >= self.max_pairs:
                        return sorted(pairs)
        return sorted(pairs)

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        table = context.dirty
        pairs = self._blocking_pairs(table)
        if len(pairs) < 4:
            return set()
        stds = column_standard_deviations(table)
        features = np.vstack(
            [pair_features(table, i, j, stds) for i, j in pairs]
        )
        mixture = GaussianMixture(n_components=2, seed=context.seed)
        try:
            mixture.fit(features)
        except (ValueError, np.linalg.LinAlgError):
            return set()
        # The match component is the one with the higher mean similarity.
        match_component = int(np.argmax(mixture.means_.mean(axis=1)))
        probabilities = mixture.predict_proba(features)[:, match_component]
        mean_similarity = features.mean(axis=1)
        groups: List[List[int]] = []
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            while parent.setdefault(x, x) != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        matched = False
        for (i, j), probability, similarity in zip(
            pairs, probabilities, mean_similarity
        ):
            # Require both the GMM assignment and near-exact similarity;
            # with no true matches the two components split the bulk and the
            # similarity floor keeps coincidentally-close rows out.
            if probability > self.match_threshold and similarity >= 0.97:
                parent[find(i)] = find(j)
                matched = True
        if not matched:
            return set()
        clusters: Dict[int, List[int]] = defaultdict(list)
        for node in parent:
            clusters[find(node)].append(node)
        duplicate_groups = [rows for rows in clusters.values() if len(rows) > 1]
        return _duplicate_cells(table, duplicate_groups)
