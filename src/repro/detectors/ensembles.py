"""Ensemble detectors: Min-K and Max Entropy (Abedjan et al., "Detecting
data errors: where are we and what needs to be done?").

Both aggregate a pool of non-learning base detectors:

- Min-K flags a cell when at least ``k`` base detectors flag it;
- Max Entropy orders the base detectors by how much *new information*
  (entropy over the undecided cell pool) each adds, greedily accumulating
  detections until additional detectors stop contributing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

from repro.context import CleaningContext
from repro.dataset.table import Cell
from repro.detectors.base import NON_LEARNING, Detector
from repro.detectors.dboost import DBoostDetector
from repro.detectors.duplicates import KeyCollisionDetector
from repro.detectors.fahes import FahesDetector
from repro.detectors.openrefine import OpenRefineDetector
from repro.detectors.rules import NadeefDetector
from repro.detectors.simple import IQRDetector, MVDetector, SDDetector


def default_base_detectors() -> List[Detector]:
    """The non-learning pool both ensembles aggregate by default."""
    return [
        MVDetector(),
        SDDetector(n_sigmas=3.0),
        IQRDetector(k=1.5),
        DBoostDetector(n_search=8),
        FahesDetector(),
        NadeefDetector(),
        OpenRefineDetector(),
        KeyCollisionDetector(),
    ]


class MinKDetector(Detector):
    """Min-K ensemble (Table 1 row 'M'): cells flagged by >= k detectors.

    k=1 is the detector union (maximum recall); larger k trades recall for
    precision.  Detectors listed in ``trusted`` bypass the vote threshold:
    the deterministic signal-driven tools (explicit-NULL scan, rule/pattern
    checks, fingerprint clustering, key collision) are each the *only* pool
    member covering their error family and are near-perfect-precision by
    construction, so demanding a second independent vote would
    systematically drop their entire error class.  Voting disciplines the
    statistical heuristics (SD, IQR, dBoost, FAHES), which overlap.
    """

    name = "Min-K"
    category = NON_LEARNING
    tackles = frozenset({"holistic"})

    def __init__(
        self,
        k: int = 2,
        base_detectors: Optional[Sequence[Detector]] = None,
        trusted: Sequence[str] = ("MVD", "NADEEF", "OpenRefine", "KeyCollision"),
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.base_detectors = (
            list(base_detectors)
            if base_detectors is not None
            else default_base_detectors()
        )
        self.trusted = frozenset(trusted)

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        votes: Dict[Cell, int] = {}
        trusted_cells: Set[Cell] = set()
        active = 0
        for detector in self.base_detectors:
            result = detector.detect(context)
            if result.cells:
                active += 1
            if detector.name in self.trusted:
                trusted_cells |= set(result.cells)
            for cell in result.cells:
                votes[cell] = votes.get(cell, 0) + 1
        # Never demand more votes than detectors that actually fired.
        threshold = min(self.k, active) if active else self.k
        return trusted_cells | {
            cell for cell, count in votes.items() if count >= threshold
        }


class MaxEntropyDetector(Detector):
    """Max Entropy ensemble (Table 1 row 'X').

    Greedy ordering: at each step pick the detector whose detections have
    maximum entropy against the current union -- i.e. whose flagged set
    splits into covered/uncovered cells most evenly, the most *informative*
    next tool.  Stop when the best candidate adds fewer than
    ``min_new_fraction`` new cells.
    """

    name = "MaxEntropy"
    category = NON_LEARNING
    tackles = frozenset({"holistic"})

    def __init__(
        self,
        base_detectors: Optional[Sequence[Detector]] = None,
        min_new_fraction: float = 0.02,
    ) -> None:
        if not 0.0 <= min_new_fraction < 1.0:
            raise ValueError("min_new_fraction must be in [0, 1)")
        self.base_detectors = (
            list(base_detectors)
            if base_detectors is not None
            else default_base_detectors()
        )
        self.min_new_fraction = min_new_fraction
        self.execution_order_: List[str] = []

    @staticmethod
    def _entropy(n_new: int, n_overlap: int) -> float:
        total = n_new + n_overlap
        if total == 0:
            return -1.0
        entropy = 0.0
        for count in (n_new, n_overlap):
            if count:
                p = count / total
                entropy -= p * math.log2(p)
        # Tie-break toward detectors bringing more new cells.
        return entropy + 1e-6 * n_new

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        results = {
            detector.name: detector.detect(context).cells
            for detector in self.base_detectors
        }
        union: Set[Cell] = set()
        remaining = dict(results)
        self.execution_order_ = []
        while remaining:
            best_name, best_score, best_new = None, -math.inf, 0
            for name, cells in remaining.items():
                new = len(cells - union)
                overlap = len(cells & union)
                score = self._entropy(new, overlap)
                if score > best_score:
                    best_name, best_score, best_new = name, score, new
            if best_name is None:
                break
            floor = self.min_new_fraction * max(len(union), 1)
            if union and best_new <= floor:
                break
            union |= remaining.pop(best_name)
            self.execution_order_.append(best_name)
            if not union:
                # First detector found nothing; drop it and continue.
                continue
        return union
