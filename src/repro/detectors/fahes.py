"""FAHES: disguised missing-value detection.

FAHES (Qahtan et al.) finds values that *stand in* for missing data, e.g.
``99999`` in a numeric column or ``unknown`` in a text column.  It combines:

- a syntactic module for categorical data: suspiciously frequent tokens
  drawn from a missing-sentinel lexicon, plus tokens whose character shape
  deviates from the column's dominant pattern while repeating verbatim;
- a density-based module for numerical data: values that repeat far more
  often than the column's continuous distribution allows *and* sit at the
  extremes of (or outside) the bulk of the distribution.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Set

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, coerce_float, is_missing
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile

#: Sentinel strings users commonly type instead of leaving a field blank.
_SENTINEL_LEXICON = {
    "unknown", "unk", "none given", "not available", "xxx", "x",
    "missing", "tbd", "n.a.", "na.", "nil", "-",
}

#: Numeric sentinels: repeated-9 / repeated-0 patterns and -1 style codes.
_NUMERIC_SENTINEL_RE = re.compile(r"-?(9{3,}(\.0*)?|0{4,}|1{4,})|-1(\.0*)?|-99+(\.0*)?")


def _shape_of(text: str) -> str:
    """Character-class shape, e.g. '12.5oz' -> '99.9aa'."""
    out = []
    for ch in text:
        if ch.isdigit():
            out.append("9")
        elif ch.isalpha():
            out.append("a")
        else:
            out.append(ch)
    return "".join(out)


class FahesDetector(Detector):
    """Disguised missing-value detector (Table 1 row 'F')."""

    name = "FAHES"
    category = NON_LEARNING
    tackles = frozenset({profile.IMPLICIT_MISSING})

    def __init__(
        self,
        min_repeats: int = 2,
        extreme_quantile: float = 0.05,
    ) -> None:
        if min_repeats < 1:
            raise ValueError("min_repeats must be >= 1")
        if not 0.0 < extreme_quantile < 0.5:
            raise ValueError("extreme_quantile must be in (0, 0.5)")
        self.min_repeats = min_repeats
        self.extreme_quantile = extreme_quantile

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        cells: Set[Cell] = set()
        table = context.dirty
        for column in table.schema.categorical_names:
            cells |= self._detect_categorical(table, column)
        for column in table.schema.numerical_names:
            cells |= self._detect_numerical(table, column)
        return cells

    def _detect_categorical(self, table, column: str) -> Set[Cell]:
        values = table.column(column)
        normalized = [
            None if is_missing(v) else str(v).strip().lower() for v in values
        ]
        counts = Counter(v for v in normalized if v is not None)
        if not counts:
            return set()
        # Dominant shape of the column.
        shapes = Counter(_shape_of(v) for v in counts)
        dominant_shape, _ = shapes.most_common(1)[0]
        total = sum(counts.values())
        suspicious: Set[str] = set()
        for value, count in counts.items():
            if value in _SENTINEL_LEXICON:
                suspicious.add(value)
            elif _NUMERIC_SENTINEL_RE.fullmatch(value):
                suspicious.add(value)
            elif (
                count >= self.min_repeats
                and count / total <= 0.05
                and _shape_of(value) != dominant_shape
                and len(value) <= 4
            ):
                # Short, repeated-but-rare, shape-deviant tokens ('?', 'xx').
                # The frequency cap keeps legitimate short categories (which
                # dominate their column) out.
                suspicious.add(value)
        return {
            (i, column)
            for i, v in enumerate(normalized)
            if v is not None and v in suspicious
        }

    def _detect_numerical(self, table, column: str) -> Set[Cell]:
        values = table.as_float(column)
        finite_mask = ~np.isnan(values)
        finite = values[finite_mask]
        if len(finite) < 8:
            return set()
        counts = Counter(finite.tolist())
        n = len(finite)
        low, high = np.quantile(finite, [self.extreme_quantile, 1 - self.extreme_quantile])
        suspicious_values = set()
        expected_repeat = max(2, int(0.01 * n))
        for value, count in counts.items():
            text = ("%g" % value)
            is_sentinel_shape = _NUMERIC_SENTINEL_RE.fullmatch(text) is not None
            repeats_abnormally = count >= max(self.min_repeats, expected_repeat)
            at_extreme = value <= low or value >= high
            if is_sentinel_shape and (repeats_abnormally or at_extreme):
                suspicious_values.add(value)
            elif repeats_abnormally and at_extreme and count >= 3:
                suspicious_values.add(value)
        if not suspicious_values:
            return set()
        cells: Set[Cell] = set()
        for i in np.flatnonzero(finite_mask):
            if values[i] in suspicious_values:
                cells.add((int(i), column))
        return cells
