"""Cell featurization shared by the ML-supported detectors.

RAHA, ED2, and the metadata-driven detector all learn a per-cell dirty/clean
classifier; what differs is how features are built and how labels are
acquired.  This module provides the two feature families they draw on:

- *strategy features*: binary outputs of a battery of cheap detection
  strategies (outlier tests at several thresholds, missing-value checks,
  pattern-shape deviation, rare-value tests) -- RAHA's feature generation;
- *metadata features*: per-cell profile statistics (value length, token
  count, frequency, z-score, row-level missingness) -- ED2 / metadata-driven
  profiling features.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

import numpy as np

from repro.cache.keys import artifact_key, table_fingerprint
from repro.cache.store import current_cache
from repro.dataset.table import Table, coerce_float, is_missing

_SENTINEL_STRINGS = {"unknown", "unk", "xxx", "missing", "tbd", "-", "x"}


def _shape_of(text: str) -> str:
    out = []
    for ch in text:
        if ch.isdigit():
            out.append("9")
        elif ch.isalpha():
            out.append("a")
        else:
            out.append(ch)
    return "".join(out)


def strategy_features(table: Table, column: str) -> np.ndarray:
    """Binary strategy-output matrix for one column (n_rows x n_strategies).

    Strategies: missing check, |z| > {2, 3, 4}, IQR k in {1.5, 3},
    frequency < {1%, 0.1%}, shape deviates from dominant shape,
    sentinel-lexicon membership, non-numeric payload in numeric column.
    """
    n_rows = table.n_rows
    values = table.column(column)
    numeric = table.as_float(column)
    finite = numeric[~np.isnan(numeric)]
    missing = np.array([is_missing(v) for v in values], dtype=float)

    columns: List[np.ndarray] = [missing]
    # Z-score strategies.
    if len(finite) >= 3 and finite.std() > 0:
        z = np.abs(numeric - finite.mean()) / finite.std()
        z = np.where(np.isnan(z), 0.0, z)
        for threshold in (2.0, 3.0, 4.0):
            columns.append((z > threshold).astype(float))
    else:
        columns.extend([np.zeros(n_rows)] * 3)
    # IQR strategies.
    if len(finite) >= 4:
        q1, q3 = np.quantile(finite, [0.25, 0.75])
        iqr = q3 - q1
        for k in (1.5, 3.0):
            if iqr > 0:
                out = (numeric < q1 - k * iqr) | (numeric > q3 + k * iqr)
                columns.append(np.where(np.isnan(numeric), 0.0, out).astype(float))
            else:
                columns.append(np.zeros(n_rows))
    else:
        columns.extend([np.zeros(n_rows)] * 2)
    # Frequency strategies.
    keys = [None if is_missing(v) else str(v).strip().lower() for v in values]
    counts = Counter(k for k in keys if k is not None)
    total = sum(counts.values()) or 1
    frequency = np.array(
        [counts.get(k, 0) / total if k is not None else 0.0 for k in keys]
    )
    columns.append((frequency < 0.01).astype(float))
    columns.append((frequency < 0.001).astype(float))
    # Shape deviation.
    shape_counts = Counter(_shape_of(k) for k in keys if k is not None)
    if shape_counts:
        dominant, _ = shape_counts.most_common(1)[0]
        deviates = np.array(
            [
                0.0 if k is None else float(_shape_of(k) != dominant)
                for k in keys
            ]
        )
    else:
        deviates = np.zeros(n_rows)
    columns.append(deviates)
    # Sentinel lexicon.
    columns.append(
        np.array(
            [float(k in _SENTINEL_STRINGS) if k is not None else 0.0 for k in keys]
        )
    )
    # Non-numeric payload in a numeric column.
    if table.schema.kind_of(column) == "numerical":
        corrupted = np.array(
            [
                float(not is_missing(v) and np.isnan(coerce_float(v)))
                for v in values
            ]
        )
    else:
        corrupted = np.zeros(n_rows)
    columns.append(corrupted)
    return np.column_stack(columns)


def metadata_features(table: Table, column: str) -> np.ndarray:
    """Profile-statistic matrix for one column (n_rows x n_features).

    Features: value length, token count, digit fraction, frequency,
    z-score (0 for non-numeric), is-missing, and the row's missing count
    (tuple-level feature, per ED2).
    """
    n_rows = table.n_rows
    values = table.column(column)
    numeric = table.as_float(column)
    finite = numeric[~np.isnan(numeric)]
    keys = [None if is_missing(v) else str(v).strip() for v in values]
    counts = Counter(k.lower() for k in keys if k is not None)
    total = sum(counts.values()) or 1

    lengths = np.array([0.0 if k is None else float(len(k)) for k in keys])
    tokens = np.array(
        [0.0 if k is None else float(len(k.split())) for k in keys]
    )
    digit_fraction = np.array(
        [
            0.0
            if not k
            else sum(ch.isdigit() for ch in k) / len(k)
            for k in keys
        ]
    )
    frequency = np.array(
        [
            counts.get(k.lower(), 0) / total if k is not None else 0.0
            for k in keys
        ]
    )
    if len(finite) >= 3 and finite.std() > 0:
        z = np.abs(numeric - finite.mean()) / finite.std()
        z = np.where(np.isnan(z), 0.0, np.minimum(z, 10.0))
    else:
        z = np.zeros(n_rows)
    missing = np.array([float(k is None) for k in keys])
    row_missing = np.zeros(n_rows)
    for other in table.column_names:
        row_missing += table.missing_mask(other).astype(float)
    row_missing /= max(len(table.column_names), 1)
    return np.column_stack(
        [lengths, tokens, digit_fraction, frequency, z, missing, row_missing]
    )


def _combined_features_fresh(table: Table) -> Dict[str, np.ndarray]:
    return {
        column: np.hstack(
            [strategy_features(table, column), metadata_features(table, column)]
        )
        for column in table.column_names
    }


def combined_features(table: Table) -> Dict[str, np.ndarray]:
    """Strategy + metadata features for every column.

    This is the dominant featurization cost of the ML-supported detectors
    (RAHA and friends re-derive it for every table version), so the whole
    per-column mapping is memoized in the artifact cache when one is
    installed.  Column names can be arbitrary strings, so the entry stores
    arrays under positional names with the real column order in the JSON
    metadata.
    """
    cache = current_cache()
    if cache is None:
        return _combined_features_fresh(table)
    key = artifact_key(
        "detector/combined_features@v1",
        [table_fingerprint(table)],
        {},
    )
    entry = cache.get(key)
    if entry is not None:
        columns = entry.meta["columns"]
        return {
            name: entry.arrays[f"c{i}"] for i, name in enumerate(columns)
        }
    features = _combined_features_fresh(table)
    columns = list(features)
    cache.put(
        key,
        {f"c{i}": features[name] for i, name in enumerate(columns)},
        {"columns": columns},
    )
    return features
