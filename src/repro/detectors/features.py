"""Cell featurization shared by the ML-supported detectors.

RAHA, ED2, and the metadata-driven detector all learn a per-cell dirty/clean
classifier; what differs is how features are built and how labels are
acquired.  This module provides the two feature families they draw on:

- *strategy features*: binary outputs of a battery of cheap detection
  strategies (outlier tests at several thresholds, missing-value checks,
  pattern-shape deviation, rare-value tests) -- RAHA's feature generation;
- *metadata features*: per-cell profile statistics (value length, token
  count, frequency, z-score, row-level missingness) -- ED2 / metadata-driven
  profiling features.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.cache.keys import (
    artifact_key,
    config_fingerprint,
    table_block_fingerprint,
    table_fingerprint,
)
from repro.cache.store import current_cache
from repro.dataset.table import Table, coerce_float, is_missing

_SENTINEL_STRINGS = {"unknown", "unk", "xxx", "missing", "tbd", "-", "x"}

#: Fixed widths of the two feature families (block assembly preallocates).
N_STRATEGY_FEATURES = 11
N_METADATA_FEATURES = 7


def _shape_of(text: str) -> str:
    out = []
    for ch in text:
        if ch.isdigit():
            out.append("9")
        elif ch.isalpha():
            out.append("a")
        else:
            out.append(ch)
    return "".join(out)


@dataclass(frozen=True)
class ColumnProfile:
    """Whole-table statistics one column's cell features depend on.

    Fitting a profile is the only pass that must see every row at once;
    given the profile, every per-cell feature is a pure elementwise
    function of that cell's row, so inference can stream over row blocks
    and stay byte-identical to the whole-table evaluation.  Instances are
    plain picklable data so the parallel engine can ship them to workers.
    """

    column: str
    numerical: bool
    has_z: bool
    mean: float
    std: float
    has_iqr: bool
    q1: float
    q3: float
    iqr: float
    counts: Mapping[str, int]
    total: int
    dominant_shape: Optional[str]


def fit_column_profile(table: Table, column: str) -> ColumnProfile:
    """Fit the whole-table statistics for one column (the 'fit' half)."""
    values = table.column(column)
    numeric = table.as_float(column)
    finite = numeric[~np.isnan(numeric)]
    keys = [None if is_missing(v) else str(v).strip().lower() for v in values]
    counts = Counter(k for k in keys if k is not None)
    total = sum(counts.values()) or 1
    shape_counts = Counter(_shape_of(k) for k in keys if k is not None)
    dominant = (
        shape_counts.most_common(1)[0][0] if shape_counts else None
    )
    has_z = len(finite) >= 3 and float(finite.std()) > 0
    has_iqr = len(finite) >= 4
    if has_iqr:
        q1, q3 = np.quantile(finite, [0.25, 0.75])
        q1, q3 = float(q1), float(q3)
    else:
        q1 = q3 = 0.0
    return ColumnProfile(
        column=column,
        numerical=table.schema.kind_of(column) == "numerical",
        has_z=has_z,
        mean=float(finite.mean()) if has_z else 0.0,
        std=float(finite.std()) if has_z else 0.0,
        has_iqr=has_iqr,
        q1=q1,
        q3=q3,
        iqr=q3 - q1,
        counts=dict(counts),
        total=total,
        dominant_shape=dominant,
    )


def strategy_features_block(
    profile: ColumnProfile, block: Table
) -> np.ndarray:
    """Strategy-output matrix for one row block, given a fitted profile.

    Every strategy decision is elementwise against the profile's scalar
    statistics, so evaluating block-by-block yields exactly the bytes the
    whole-table evaluation would produce for the same rows.
    """
    n_rows = block.n_rows
    values = block.column(profile.column)
    numeric = block.as_float(profile.column)
    missing = np.array([is_missing(v) for v in values], dtype=float)

    columns: List[np.ndarray] = [missing]
    # Z-score strategies.
    if profile.has_z:
        z = np.abs(numeric - profile.mean) / profile.std
        z = np.where(np.isnan(z), 0.0, z)
        for threshold in (2.0, 3.0, 4.0):
            columns.append((z > threshold).astype(float))
    else:
        columns.extend([np.zeros(n_rows)] * 3)
    # IQR strategies.
    if profile.has_iqr:
        q1, q3, iqr = profile.q1, profile.q3, profile.iqr
        for k in (1.5, 3.0):
            if iqr > 0:
                out = (numeric < q1 - k * iqr) | (numeric > q3 + k * iqr)
                columns.append(np.where(np.isnan(numeric), 0.0, out).astype(float))
            else:
                columns.append(np.zeros(n_rows))
    else:
        columns.extend([np.zeros(n_rows)] * 2)
    # Frequency strategies.
    keys = [None if is_missing(v) else str(v).strip().lower() for v in values]
    counts, total = profile.counts, profile.total
    frequency = np.array(
        [counts.get(k, 0) / total if k is not None else 0.0 for k in keys]
    )
    columns.append((frequency < 0.01).astype(float))
    columns.append((frequency < 0.001).astype(float))
    # Shape deviation.
    if profile.dominant_shape is not None:
        dominant = profile.dominant_shape
        deviates = np.array(
            [
                0.0 if k is None else float(_shape_of(k) != dominant)
                for k in keys
            ]
        )
    else:
        deviates = np.zeros(n_rows)
    columns.append(deviates)
    # Sentinel lexicon.
    columns.append(
        np.array(
            [float(k in _SENTINEL_STRINGS) if k is not None else 0.0 for k in keys]
        )
    )
    # Non-numeric payload in a numeric column.
    if profile.numerical:
        corrupted = np.array(
            [
                float(not is_missing(v) and np.isnan(coerce_float(v)))
                for v in values
            ]
        )
    else:
        corrupted = np.zeros(n_rows)
    columns.append(corrupted)
    return np.column_stack(columns)


def strategy_features(table: Table, column: str) -> np.ndarray:
    """Binary strategy-output matrix for one column (n_rows x n_strategies).

    Strategies: missing check, |z| > {2, 3, 4}, IQR k in {1.5, 3},
    frequency < {1%, 0.1%}, shape deviates from dominant shape,
    sentinel-lexicon membership, non-numeric payload in numeric column.

    Equivalent to fitting a :class:`ColumnProfile` and evaluating the
    whole table as one block.
    """
    return strategy_features_block(fit_column_profile(table, column), table)


def metadata_features_block(
    profile: ColumnProfile, block: Table
) -> np.ndarray:
    """Metadata-feature matrix for one row block, given a fitted profile."""
    n_rows = block.n_rows
    values = block.column(profile.column)
    numeric = block.as_float(profile.column)
    keys = [None if is_missing(v) else str(v).strip() for v in values]
    counts, total = profile.counts, profile.total

    lengths = np.array([0.0 if k is None else float(len(k)) for k in keys])
    tokens = np.array(
        [0.0 if k is None else float(len(k.split())) for k in keys]
    )
    digit_fraction = np.array(
        [
            0.0
            if not k
            else sum(ch.isdigit() for ch in k) / len(k)
            for k in keys
        ]
    )
    frequency = np.array(
        [
            counts.get(k.lower(), 0) / total if k is not None else 0.0
            for k in keys
        ]
    )
    if profile.has_z:
        z = np.abs(numeric - profile.mean) / profile.std
        z = np.where(np.isnan(z), 0.0, np.minimum(z, 10.0))
    else:
        z = np.zeros(n_rows)
    missing = np.array([float(k is None) for k in keys])
    row_missing = np.zeros(n_rows)
    for other in block.column_names:
        row_missing += block.missing_mask(other).astype(float)
    row_missing /= max(len(block.column_names), 1)
    return np.column_stack(
        [lengths, tokens, digit_fraction, frequency, z, missing, row_missing]
    )


def metadata_features(table: Table, column: str) -> np.ndarray:
    """Profile-statistic matrix for one column (n_rows x n_features).

    Features: value length, token count, digit fraction, frequency,
    z-score (0 for non-numeric), is-missing, and the row's missing count
    (tuple-level feature, per ED2).
    """
    return metadata_features_block(fit_column_profile(table, column), table)


def _combined_features_fresh(table: Table) -> Dict[str, np.ndarray]:
    return {
        column: np.hstack(
            [strategy_features(table, column), metadata_features(table, column)]
        )
        for column in table.column_names
    }


def _profile_digest(profile: ColumnProfile) -> str:
    """Content digest of a fitted profile (keys block-level cache entries)."""
    return config_fingerprint(
        {
            "column": profile.column,
            "numerical": profile.numerical,
            "has_z": profile.has_z,
            "mean": profile.mean,
            "std": profile.std,
            "has_iqr": profile.has_iqr,
            "q1": profile.q1,
            "q3": profile.q3,
            "iqr": profile.iqr,
            "counts": dict(profile.counts),
            "total": profile.total,
            "dominant_shape": profile.dominant_shape,
        }
    )


def _combined_features_blocked(
    table: Table, block_rows: int
) -> Dict[str, np.ndarray]:
    """Streamed evaluation of :func:`combined_features` over row blocks.

    Profiles are fitted once against the whole table; each block is then
    evaluated independently into a preallocated output, so peak transient
    memory is one block's feature rows instead of the whole matrix.  When
    a cache is installed, each block gets its own content-addressed entry
    keyed by its :func:`table_block_fingerprint` plus the profiles that
    shaped it, so unchanged blocks are reused even when sibling blocks of
    the table changed.
    """
    cache = current_cache()
    names = table.column_names
    profiles = {name: fit_column_profile(table, name) for name in names}
    block_config: Dict[str, Any] = {}
    if cache is not None:
        block_config = {
            "profiles": {
                name: _profile_digest(profiles[name]) for name in names
            }
        }
    width = N_STRATEGY_FEATURES + N_METADATA_FEATURES
    out = {
        name: np.empty((table.n_rows, width), dtype=np.float64)
        for name in names
    }
    for start, block in table.iter_blocks(block_rows):
        stop = start + block.n_rows
        arrays: Optional[Dict[str, np.ndarray]] = None
        key = None
        if cache is not None:
            key = artifact_key(
                "detector/combined_features@v1+block",
                [table_block_fingerprint(table, start, stop)],
                block_config,
            )
            entry = cache.get(key)
            if entry is not None:
                arrays = {
                    name: entry.arrays[f"c{i}"]
                    for i, name in enumerate(entry.meta["columns"])
                }
        if arrays is None:
            arrays = {
                name: np.hstack(
                    [
                        strategy_features_block(profiles[name], block),
                        metadata_features_block(profiles[name], block),
                    ]
                )
                for name in names
            }
            if cache is not None and key is not None:
                cache.put(
                    key,
                    {f"c{i}": arrays[name] for i, name in enumerate(names)},
                    {"columns": names},
                )
        for name in names:
            out[name][start:stop] = arrays[name]
    return out


def combined_features(
    table: Table, block_rows: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Strategy + metadata features for every column.

    This is the dominant featurization cost of the ML-supported detectors
    (RAHA and friends re-derive it for every table version), so the whole
    per-column mapping is memoized in the artifact cache when one is
    installed.  Column names can be arbitrary strings, so the entry stores
    arrays under positional names with the real column order in the JSON
    metadata.

    With ``block_rows`` set, evaluation streams over row blocks (fit
    stays whole-table) and the result is byte-identical to the unblocked
    call; both paths share the same whole-table cache entry.
    """
    cache = current_cache()
    if cache is None:
        if block_rows is not None:
            return _combined_features_blocked(table, block_rows)
        return _combined_features_fresh(table)
    key = artifact_key(
        "detector/combined_features@v1",
        [table_fingerprint(table)],
        {},
    )
    entry = cache.get(key)
    if entry is not None:
        columns = entry.meta["columns"]
        return {
            name: entry.arrays[f"c{i}"] for i, name in enumerate(columns)
        }
    if block_rows is not None:
        features = _combined_features_blocked(table, block_rows)
    else:
        features = _combined_features_fresh(table)
    columns = list(features)
    cache.put(
        key,
        {f"c{i}": features[name] for i, name in enumerate(columns)},
        {"columns": columns},
    )
    return features
