"""KATARA: knowledge-base-powered semantic pattern detection.

KATARA (Chu et al.) aligns table columns with knowledge-base concepts and
relations, then flags cells that violate the discovered semantic patterns.
The crowdsourced KB of the original is replaced by a synthetic
:class:`KnowledgeBase`: concept domains (valid value sets) plus binary
relations (valid value pairs across two concepts).  Column-to-concept
alignment is discovered automatically by domain overlap, mirroring KATARA's
table-pattern discovery step.

Alignment scoring and violation checking run on precomputed per-distinct
value indexes instead of per-row membership loops: each column is
normalized once per distinct payload, interned to integer ids, and
domain/relation membership is decided once per distinct value (or value
pair) then scattered back to rows.  ``tests/test_cleaning_kernels.py``
proves the results identical to the frozen scalars in
:mod:`repro.detectors._reference`.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.columnar import intern_values, normalized_column
from repro.dataset.table import Cell, Table, is_missing
from repro.detectors._reference import (
    reference_katara_align_column,
    reference_katara_violations,
)
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile
from repro.kernels import kernel_stage, use_reference_kernels


@dataclass
class KnowledgeBase:
    """A miniature KB: concept domains and binary relations.

    Attributes:
        domains: concept name -> set of valid surface forms.
        relations: (concept_a, concept_b) -> set of valid (a, b) pairs.
    """

    domains: Dict[str, Set[str]] = field(default_factory=dict)
    relations: Dict[Tuple[str, str], Set[Tuple[str, str]]] = field(
        default_factory=dict
    )

    @staticmethod
    def normalize(value: object) -> Optional[str]:
        if is_missing(value):
            return None
        return str(value).strip().lower()

    def add_domain(self, concept: str, values) -> None:
        normalized = {self.normalize(v) for v in values}
        self.domains[concept] = {v for v in normalized if v is not None}

    def add_relation(self, concept_a: str, concept_b: str, pairs) -> None:
        normalized = set()
        for a, b in pairs:
            na, nb = self.normalize(a), self.normalize(b)
            if na is not None and nb is not None:
                normalized.add((na, nb))
        self.relations[(concept_a, concept_b)] = normalized

    def align_column(
        self, table: Table, column: str, min_overlap: float = 0.5
    ) -> Optional[str]:
        """Best-matching concept for a column by domain-overlap score.

        Overlap is row-weighted (fraction of non-missing *cells* inside the
        concept's domain) so a long tail of dirty variants cannot mask an
        otherwise clear alignment.  Membership is resolved once per
        distinct value; the score divides the same integers the scalar
        per-cell scan divides, so alignments are identical.
        """
        if use_reference_kernels():
            return reference_katara_align_column(
                self, table, column, min_overlap
            )
        normalized = normalized_column(table.column(column), self.normalize)
        counts = Counter(v for v in normalized if v is not None)
        total = sum(counts.values())
        if not total:
            return None
        best_concept, best_score = None, min_overlap
        for concept, domain in self.domains.items():
            if not domain:
                continue
            hits = sum(c for v, c in counts.items() if v in domain)
            score = hits / total
            if score > best_score:
                best_concept, best_score = concept, score
        return best_concept


def katara_violations(
    kb: KnowledgeBase, table: Table, alignment: Dict[str, str]
) -> Set[Cell]:
    """Domain and relation violations for aligned columns.

    Domain membership is decided once per distinct normalized value and
    relation membership once per distinct value *pair*, then scattered to
    rows through the interned id arrays.
    """
    if use_reference_kernels():
        return reference_katara_violations(kb, table, alignment)
    cells: Set[Cell] = set()
    interned: Dict[str, Tuple[np.ndarray, List[Optional[str]]]] = {
        column: intern_values(
            normalized_column(table.column(column), kb.normalize)
        )
        for column in alignment
    }
    for column, concept in alignment.items():
        domain = kb.domains[concept]
        uids, distinct = interned[column]
        if not distinct:
            continue
        outside = np.fromiter(
            (v not in domain for v in distinct), bool, count=len(distinct)
        )
        flagged = (uids >= 0) & outside[np.maximum(uids, 0)]
        cells.update((i, column) for i in np.flatnonzero(flagged).tolist())
    columns = list(alignment)
    for col_a, col_b in itertools.permutations(columns, 2):
        key = (alignment[col_a], alignment[col_b])
        valid_pairs = kb.relations.get(key)
        if valid_pairs is None:
            continue
        ua, da = interned[col_a]
        ub, db = interned[col_b]
        present = (ua >= 0) & (ub >= 0)
        present_rows = np.flatnonzero(present)
        if not len(present_rows):
            continue
        base = max(len(db), 1)
        codes = ua[present] * base + ub[present]
        distinct_codes, inverse = np.unique(codes, return_inverse=True)
        invalid = np.fromiter(
            (
                (da[code // base], db[code % base]) not in valid_pairs
                for code in distinct_codes.tolist()
            ),
            bool,
            count=len(distinct_codes),
        )
        for i in present_rows[invalid[inverse.ravel()]].tolist():
            cells.add((i, col_a))
            cells.add((i, col_b))
    return cells


class KataraDetector(Detector):
    """KATARA detection (Table 1 row 'K').

    Flags: (1) cells whose value is outside the aligned concept's domain,
    and (2) cell pairs that contradict a KB relation between two aligned
    columns (both participating cells are flagged, as KATARA cannot tell
    which side is wrong without the crowd).
    """

    name = "KATARA"
    category = NON_LEARNING
    tackles = frozenset(
        {profile.PATTERN_VIOLATION, profile.RULE_VIOLATION, profile.TYPO,
         profile.INCONSISTENCY}
    )

    def __init__(self, min_overlap: float = 0.5) -> None:
        if not 0.0 < min_overlap < 1.0:
            raise ValueError("min_overlap must be in (0, 1)")
        self.min_overlap = min_overlap

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        kb = context.knowledge_base
        if not isinstance(kb, KnowledgeBase):
            return set()
        table = context.dirty
        with kernel_stage("katara"):
            alignment: Dict[str, str] = {}
            for column in table.column_names:
                concept = kb.align_column(table, column, self.min_overlap)
                if concept is not None:
                    alignment[column] = concept
            return katara_violations(kb, table, alignment)
