"""KATARA: knowledge-base-powered semantic pattern detection.

KATARA (Chu et al.) aligns table columns with knowledge-base concepts and
relations, then flags cells that violate the discovered semantic patterns.
The crowdsourced KB of the original is replaced by a synthetic
:class:`KnowledgeBase`: concept domains (valid value sets) plus binary
relations (valid value pairs across two concepts).  Column-to-concept
alignment is discovered automatically by domain overlap, mirroring KATARA's
table-pattern discovery step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table, is_missing
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile


@dataclass
class KnowledgeBase:
    """A miniature KB: concept domains and binary relations.

    Attributes:
        domains: concept name -> set of valid surface forms.
        relations: (concept_a, concept_b) -> set of valid (a, b) pairs.
    """

    domains: Dict[str, Set[str]] = field(default_factory=dict)
    relations: Dict[Tuple[str, str], Set[Tuple[str, str]]] = field(
        default_factory=dict
    )

    @staticmethod
    def normalize(value: object) -> Optional[str]:
        if is_missing(value):
            return None
        return str(value).strip().lower()

    def add_domain(self, concept: str, values) -> None:
        normalized = {self.normalize(v) for v in values}
        self.domains[concept] = {v for v in normalized if v is not None}

    def add_relation(self, concept_a: str, concept_b: str, pairs) -> None:
        normalized = set()
        for a, b in pairs:
            na, nb = self.normalize(a), self.normalize(b)
            if na is not None and nb is not None:
                normalized.add((na, nb))
        self.relations[(concept_a, concept_b)] = normalized

    def align_column(
        self, table: Table, column: str, min_overlap: float = 0.5
    ) -> Optional[str]:
        """Best-matching concept for a column by domain-overlap score.

        Overlap is row-weighted (fraction of non-missing *cells* inside the
        concept's domain) so a long tail of dirty variants cannot mask an
        otherwise clear alignment.
        """
        values = [
            self.normalize(v)
            for v in table.column(column)
            if not is_missing(v)
        ]
        values = [v for v in values if v is not None]
        if not values:
            return None
        best_concept, best_score = None, min_overlap
        for concept, domain in self.domains.items():
            if not domain:
                continue
            score = sum(1 for v in values if v in domain) / len(values)
            if score > best_score:
                best_concept, best_score = concept, score
        return best_concept


class KataraDetector(Detector):
    """KATARA detection (Table 1 row 'K').

    Flags: (1) cells whose value is outside the aligned concept's domain,
    and (2) cell pairs that contradict a KB relation between two aligned
    columns (both participating cells are flagged, as KATARA cannot tell
    which side is wrong without the crowd).
    """

    name = "KATARA"
    category = NON_LEARNING
    tackles = frozenset(
        {profile.PATTERN_VIOLATION, profile.RULE_VIOLATION, profile.TYPO,
         profile.INCONSISTENCY}
    )

    def __init__(self, min_overlap: float = 0.5) -> None:
        if not 0.0 < min_overlap < 1.0:
            raise ValueError("min_overlap must be in (0, 1)")
        self.min_overlap = min_overlap

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        kb = context.knowledge_base
        if not isinstance(kb, KnowledgeBase):
            return set()
        table = context.dirty
        alignment: Dict[str, str] = {}
        for column in table.column_names:
            concept = kb.align_column(table, column, self.min_overlap)
            if concept is not None:
                alignment[column] = concept
        cells: Set[Cell] = set()
        # Domain violations.
        for column, concept in alignment.items():
            domain = kb.domains[concept]
            for i, value in enumerate(table.column(column)):
                normalized = kb.normalize(value)
                if normalized is not None and normalized not in domain:
                    cells.add((i, column))
        # Relation violations.
        columns = list(alignment)
        for col_a in columns:
            for col_b in columns:
                if col_a == col_b:
                    continue
                key = (alignment[col_a], alignment[col_b])
                if key not in kb.relations:
                    continue
                valid_pairs = kb.relations[key]
                for i in range(table.n_rows):
                    a = kb.normalize(table.get_cell(i, col_a))
                    b = kb.normalize(table.get_cell(i, col_b))
                    if a is None or b is None:
                        continue
                    if (a, b) not in valid_pairs:
                        cells.add((i, col_a))
                        cells.add((i, col_b))
        return cells
