"""ML-supported detectors: Metadata-driven, RAHA, ED2, and Picket.

All four formulate detection as per-cell classification; they differ in
feature generation and label acquisition (Section 3.1):

- Metadata-driven: base-detector outputs + profile metadata as features,
  one random labeled sample, a random-forest cell classifier.
- RAHA: strategy-output features, per-column clustering, one oracle label
  per cluster propagated to the whole cluster (label-budget efficiency).
- ED2: strategy+metadata features, active learning -- iteratively label
  the cells the classifier is most uncertain about.
- Picket: self-supervision -- each column is reconstructed from the other
  columns and poorly reconstructed cells are flagged; needs no labels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.context import CleaningContext
from repro.dataset.encoding import TableEncoder
from repro.dataset.table import Cell, Table, coerce_float, is_missing
from repro.detectors.base import ML_SUPPORTED, Detector
from repro.detectors.ensembles import default_base_detectors
from repro.detectors.features import (
    combined_features,
    metadata_features,
    strategy_features,
)
from repro.errors import profile
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import RidgeRegressor
from repro.ml.naive_bayes import GaussianNB


def _train_and_classify(
    features: np.ndarray,
    labeled_idx: Sequence[int],
    labels: Dict[int, bool],
    seed: int,
) -> np.ndarray:
    """Fit a cell classifier on labeled indices; return per-row dirty flags.

    Falls back to majority vote when only one class is labeled.
    """
    y = np.array([labels[i] for i in labeled_idx], dtype=int)
    if len(np.unique(y)) < 2:
        return np.full(len(features), bool(y[0]) if len(y) else False)
    model = RandomForestClassifier(n_estimators=15, max_depth=8, seed=seed)
    model.fit(features[list(labeled_idx)], y)
    return model.predict(features).astype(bool)


class MetadataDrivenDetector(Detector):
    """Metadata-driven error detection (Table 1 row 'T').

    Features: one binary column per base non-learning detector ("did tool
    X flag this cell?") plus profile metadata.  A labeled random sample of
    cells trains a random forest that classifies every cell.
    """

    name = "Meta"
    category = ML_SUPPORTED
    tackles = frozenset({"holistic"})

    def __init__(
        self,
        label_budget: int = 200,
        base_detectors: Optional[Sequence[Detector]] = None,
    ) -> None:
        if label_budget < 2:
            raise ValueError("label_budget must be >= 2")
        self.label_budget = label_budget
        self.base_detectors = (
            list(base_detectors)
            if base_detectors is not None
            else default_base_detectors()
        )

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        if not context.has_ground_truth:
            return set()
        table = context.dirty
        rng = context.rng(31)
        detector_cells = [
            detector.detect(context).cells for detector in self.base_detectors
        ]
        all_cells = [
            (i, column)
            for column in table.column_names
            for i in range(table.n_rows)
        ]
        cell_index = {cell: pos for pos, cell in enumerate(all_cells)}
        tool_features = np.zeros((len(all_cells), len(detector_cells)))
        for j, cells in enumerate(detector_cells):
            for cell in cells:
                if cell in cell_index:
                    tool_features[cell_index[cell], j] = 1.0
        meta = {
            column: metadata_features(table, column)
            for column in table.column_names
        }
        meta_matrix = np.vstack(
            [meta[column][i] for i, column in all_cells]
        )
        features = np.hstack([tool_features, meta_matrix])
        budget = min(self.label_budget, len(all_cells))
        sample = rng.choice(len(all_cells), size=budget, replace=False)
        labels = {
            int(pos): context.oracle_is_dirty(all_cells[int(pos)])
            for pos in sample
        }
        flags = _train_and_classify(
            features, list(labels), labels, context.seed
        )
        return {all_cells[pos] for pos in np.flatnonzero(flags)}


class RahaDetector(Detector):
    """RAHA: configuration-free detection with cluster-based labeling
    (Table 1 row 'R').

    Per column: strategy features -> agglomerate cells with identical
    feature vectors, refine to at most ``n_clusters`` groups by feature
    distance, label one representative per cluster via the oracle, and
    propagate.
    """

    name = "RAHA"
    category = ML_SUPPORTED
    tackles = frozenset({"holistic"})

    def __init__(self, labels_per_column: int = 12) -> None:
        if labels_per_column < 2:
            raise ValueError("labels_per_column must be >= 2")
        self.labels_per_column = labels_per_column

    def _cluster_cells(
        self, features: np.ndarray, n_clusters: int
    ) -> List[List[int]]:
        """Group rows by feature vector, then merge nearest groups."""
        n = len(features)
        if n == 0:
            return []
        flat = np.ascontiguousarray(features).reshape(n, -1)
        if flat.shape[1] == 0:
            groups: List[List[int]] = [list(range(n))]
        else:
            # Byte-exact signature grouping (matches row.tobytes() keys):
            # unique void rows, renumbered by first appearance so group
            # order and within-group row order match the scalar dict build.
            signatures = flat.view(
                np.dtype((np.void, flat.dtype.itemsize * flat.shape[1]))
            ).ravel()
            _, first_seen, inverse = np.unique(
                signatures, return_index=True, return_inverse=True
            )
            appearance = np.argsort(first_seen, kind="stable")
            rank = np.empty(len(appearance), dtype=np.int64)
            rank[appearance] = np.arange(len(appearance))
            codes = rank[inverse]
            order = np.argsort(codes, kind="stable")
            boundaries = np.flatnonzero(np.diff(codes[order])) + 1
            groups = [chunk.tolist() for chunk in np.split(order, boundaries)]
        if len(groups) <= n_clusters:
            return groups
        centroids = np.array(
            [features[group].mean(axis=0) for group in groups]
        )
        # Iteratively merge the closest centroid pair (average linkage on
        # group centroids -- cheap because identical-signature grouping has
        # already collapsed most cells).
        while len(groups) > n_clusters:
            distances = np.linalg.norm(
                centroids[:, None, :] - centroids[None, :, :], axis=2
            )
            np.fill_diagonal(distances, np.inf)
            a, b = np.unravel_index(np.argmin(distances), distances.shape)
            a, b = int(min(a, b)), int(max(a, b))
            merged = groups[a] + groups[b]
            centroids[a] = features[merged].mean(axis=0)
            groups[a] = merged
            groups.pop(b)
            centroids = np.delete(centroids, b, axis=0)
        return groups

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        if not context.has_ground_truth:
            return set()
        table = context.dirty
        rng = context.rng(37)
        cells: Set[Cell] = set()
        for column in table.column_names:
            features = strategy_features(table, column)
            clusters = self._cluster_cells(features, self.labels_per_column)
            for cluster in clusters:
                representative = cluster[int(rng.integers(len(cluster)))]
                if context.oracle_is_dirty((representative, column)):
                    cells.update((i, column) for i in cluster)
        return cells


class ED2Detector(Detector):
    """ED2: active-learning error detection (Table 1 row 'E').

    Per column: start from a small random labeled batch, train a cell
    classifier, then repeatedly label the cells with the most uncertain
    predictions until the column's budget is spent.
    """

    name = "ED2"
    category = ML_SUPPORTED
    tackles = frozenset({"holistic"})

    def __init__(
        self, labels_per_column: int = 20, batch_size: int = 5
    ) -> None:
        if labels_per_column < 4:
            raise ValueError("labels_per_column must be >= 4")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.labels_per_column = labels_per_column
        self.batch_size = batch_size

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        if not context.has_ground_truth:
            return set()
        table = context.dirty
        rng = context.rng(41)
        all_features = combined_features(table)
        cells: Set[Cell] = set()
        for column in table.column_names:
            features = all_features[column]
            n_rows = len(features)
            budget = min(self.labels_per_column, n_rows)
            initial = min(max(4, budget // 3), budget)
            labeled: Dict[int, bool] = {}
            for i in rng.choice(n_rows, size=initial, replace=False):
                labeled[int(i)] = context.oracle_is_dirty((int(i), column))
            while len(labeled) < budget:
                y = np.array([labeled[i] for i in labeled], dtype=int)
                idx = list(labeled)
                if len(np.unique(y)) < 2:
                    # No decision boundary yet; sample randomly.
                    pool = [i for i in range(n_rows) if i not in labeled]
                    if not pool:
                        break
                    picks = rng.choice(
                        len(pool),
                        size=min(self.batch_size, len(pool)),
                        replace=False,
                    )
                    for p in picks:
                        row = pool[int(p)]
                        labeled[row] = context.oracle_is_dirty((row, column))
                    continue
                model = RandomForestClassifier(
                    n_estimators=10, max_depth=8, seed=context.seed
                )
                model.fit(features[idx], y)
                probabilities = model.predict_proba(features)[:, 1]
                uncertainty = -np.abs(probabilities - 0.5)
                order = np.argsort(uncertainty)[::-1]
                added = 0
                for i in order:
                    if int(i) in labeled:
                        continue
                    labeled[int(i)] = context.oracle_is_dirty((int(i), column))
                    added += 1
                    if added >= self.batch_size or len(labeled) >= budget:
                        break
                if added == 0:
                    break
            flags = _train_and_classify(
                features, list(labeled), labeled, context.seed
            )
            cells.update((int(i), column) for i in np.flatnonzero(flags))
        return cells


class PicketDetector(Detector):
    """Picket: self-supervised detection, no user labels (Table 1 row 'P').

    Each column is reconstructed from the remaining columns; cells whose
    observed value is poorly explained by the reconstruction model (low
    predicted probability for categorical values, large standardized
    residual for numeric values) are flagged.  Missing and non-numeric
    payloads in numeric columns are flagged directly, as the reconstruction
    loss is undefined there.
    """

    name = "Picket"
    category = ML_SUPPORTED
    tackles = frozenset({"holistic"})

    def __init__(
        self,
        numeric_residual_sigmas: float = 3.0,
        categorical_probability: float = 0.05,
        max_rows: int = 5000,
    ) -> None:
        if numeric_residual_sigmas <= 0:
            raise ValueError("numeric_residual_sigmas must be positive")
        if not 0.0 < categorical_probability < 1.0:
            raise ValueError("categorical_probability must be in (0, 1)")
        self.numeric_residual_sigmas = numeric_residual_sigmas
        self.categorical_probability = categorical_probability
        self.max_rows = max_rows

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        table = context.dirty
        if table.n_rows > self.max_rows:
            # The original Picket runs out of memory on large datasets
            # (Section 6.5); we reproduce the capability boundary explicitly.
            raise MemoryError(
                f"Picket does not scale beyond {self.max_rows} rows "
                f"(got {table.n_rows})"
            )
        # Missing cells have undefined reconstruction loss: flagged directly.
        cells: Set[Cell] = set(table.missing_cells())
        for column in table.column_names:
            encoder = TableEncoder(max_categories=15)
            features = encoder.fit_transform(table, exclude=[column])
            if features.shape[1] == 0:
                continue
            if table.schema.kind_of(column) == "numerical":
                cells |= self._numeric_column(table, column, features)
            else:
                cells |= self._categorical_column(table, column, features)
        return cells

    def _numeric_column(
        self, table: Table, column: str, features: np.ndarray
    ) -> Set[Cell]:
        values = table.as_float(column)
        raw = table.column(column)
        corrupted = np.array(
            [
                not is_missing(v) and np.isnan(coerce_float(v))
                for v in raw
            ]
        )
        usable = ~np.isnan(values)
        cells: Set[Cell] = {
            (int(i), column) for i in np.flatnonzero(corrupted)
        }
        if usable.sum() < 10:
            return cells
        model = RidgeRegressor(alpha=1.0)
        model.fit(features[usable], values[usable])
        residuals = np.abs(model.predict(features[usable]) - values[usable])
        scale = residuals.std() or 1.0
        flagged = residuals > self.numeric_residual_sigmas * scale
        usable_idx = np.flatnonzero(usable)
        cells.update(
            (int(usable_idx[i]), column) for i in np.flatnonzero(flagged)
        )
        return cells

    def _categorical_column(
        self, table: Table, column: str, features: np.ndarray
    ) -> Set[Cell]:
        keys = [
            None if is_missing(v) else str(v).strip()
            for v in table.column(column)
        ]
        usable = np.array([k is not None for k in keys])
        if usable.sum() < 10:
            return set()
        classes = sorted({k for k in keys if k is not None})
        if len(classes) < 2 or len(classes) > 50:
            return set()
        index = {c: j for j, c in enumerate(classes)}
        labels = np.array([index[k] if k is not None else -1 for k in keys])
        model = GaussianNB()
        model.fit(features[usable], labels[usable])
        probabilities = model.predict_proba(features[usable])
        usable_idx = np.flatnonzero(usable)
        cells: Set[Cell] = set()
        for local, row in enumerate(usable_idx):
            observed = labels[row]
            position = int(np.flatnonzero(model.classes_ == observed)[0])
            if probabilities[local, position] < self.categorical_probability:
                cells.add((int(row), column))
        return cells
