"""OpenRefine-style inconsistency detection via key-collision clustering.

OpenRefine's facet/cluster workflow groups categorical values whose
*fingerprints* collide (lower-cased, punctuation-stripped, token-sorted) --
e.g. ``"New York"``, ``"new york "``, ``"York New"`` -- and lets the user
merge them.  The detector flags every cell whose raw value is a minority
variant inside its fingerprint cluster; the companion repair method merges
clusters to the majority variant.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from typing import Dict, List, Set, Tuple

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table, is_missing
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile

_PUNCTUATION_RE = re.compile(r"[^\w\s]")
_SUFFIXES = (" inc", " llc", " ltd", " co")


def fingerprint(value: str) -> str:
    """OpenRefine's fingerprint keying function (simplified).

    Lower-case, strip punctuation and common company suffixes, split into
    tokens, sort, deduplicate, re-join.
    """
    text = value.strip().lower().replace("_", " ")
    for suffix in _SUFFIXES:
        if text.endswith(suffix):
            text = text[: -len(suffix)]
    text = _PUNCTUATION_RE.sub("", text)
    tokens = sorted(set(text.split()))
    return " ".join(tokens)


def cluster_column(table: Table, column: str) -> Dict[str, Counter]:
    """Fingerprint clusters of a column: fingerprint -> raw-value counts."""
    clusters: Dict[str, Counter] = defaultdict(Counter)
    for value in table.column(column):
        if is_missing(value):
            continue
        raw = str(value)
        clusters[fingerprint(raw)][raw] += 1
    return dict(clusters)


class OpenRefineDetector(Detector):
    """Inconsistency detection via fingerprint clustering (row 'O')."""

    name = "OpenRefine"
    category = NON_LEARNING
    tackles = frozenset({profile.INCONSISTENCY, profile.PATTERN_VIOLATION})

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        table = context.dirty
        cells: Set[Cell] = set()
        for column in table.schema.categorical_names:
            clusters = cluster_column(table, column)
            minority_values: Set[str] = set()
            for counts in clusters.values():
                if len(counts) < 2:
                    continue
                majority, _ = counts.most_common(1)[0]
                minority_values |= {v for v in counts if v != majority}
            if not minority_values:
                continue
            for i, value in enumerate(table.column(column)):
                if not is_missing(value) and str(value) in minority_values:
                    cells.add((i, column))
        return cells
