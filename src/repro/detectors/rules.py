"""Rule-based detectors: NADEEF and HoloClean's detection stage.

NADEEF treats quality rules holistically: denial constraints, FD rules, and
user-defined patterns all funnel through one violation interface.
HoloClean's detection stage combines the same qualitative signals (denial
constraints) with quantitative ones (co-occurrence statistics) and explicit
missing values.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, is_missing
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import profile


class NadeefDetector(Detector):
    """NADEEF: holistic rule + pattern violation detection (row 'N').

    Requires FD rules and/or denial constraints and/or patterns in the
    context; with no signals it detects nothing (as the real tool would).
    """

    name = "NADEEF"
    category = NON_LEARNING
    tackles = frozenset(
        {profile.RULE_VIOLATION, profile.PATTERN_VIOLATION, profile.TYPO,
         profile.IMPLICIT_MISSING, profile.INCONSISTENCY}
    )

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        cells: Set[Cell] = set()
        for fd in context.fds:
            cells |= fd.violations(context.dirty)
        for constraint in context.constraints:
            cells |= constraint.violations(context.dirty)
        for pattern in context.patterns:
            if pattern.column in context.dirty.schema:
                cells |= pattern.violations(context.dirty)
        return cells


class HoloCleanDetector(Detector):
    """HoloClean's detection stage (row 'H').

    Signals: denial constraints (qualitative) + explicit missing values +
    low-probability co-occurrences (quantitative).  The co-occurrence
    module flags categorical cells whose value is never (or almost never)
    seen together with the row's other attribute values elsewhere in the
    dataset -- the statistical counterpart HoloClean adds on top of DCs.
    """

    name = "HoloClean"
    category = NON_LEARNING
    tackles = frozenset(
        {profile.RULE_VIOLATION, profile.MISSING, profile.INCONSISTENCY}
    )

    def __init__(self, cooccurrence_threshold: float = 0.005) -> None:
        if not 0.0 <= cooccurrence_threshold < 1.0:
            raise ValueError("cooccurrence_threshold must be in [0, 1)")
        self.cooccurrence_threshold = cooccurrence_threshold

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        table = context.dirty
        cells: Set[Cell] = set(table.missing_cells())
        for constraint in context.all_constraints():
            cells |= constraint.violations(table)
        cells |= self._cooccurrence_violations(context)
        return cells

    def _cooccurrence_violations(self, context: CleaningContext) -> Set[Cell]:
        table = context.dirty
        categorical = table.schema.categorical_names
        if len(categorical) < 2:
            return set()
        # Pairwise conditional frequencies P(value_b | value_a).
        pair_counts: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
        value_counts: Dict[str, Counter] = {c: Counter() for c in categorical}
        normalized = {
            c: [
                None if is_missing(v) else str(v).strip()
                for v in table.column(c)
            ]
            for c in categorical
        }
        for i in range(table.n_rows):
            for col_a in categorical:
                value_a = normalized[col_a][i]
                if value_a is None:
                    continue
                value_counts[col_a][value_a] += 1
                for col_b in categorical:
                    if col_b == col_a:
                        continue
                    value_b = normalized[col_b][i]
                    if value_b is not None:
                        pair_counts[(col_a, col_b)][(value_a, value_b)] += 1
        cells: Set[Cell] = set()
        for i in range(table.n_rows):
            for col_b in categorical:
                value_b = normalized[col_b][i]
                if value_b is None:
                    continue
                surprise_votes = 0
                contexts = 0
                for col_a in categorical:
                    if col_a == col_b:
                        continue
                    value_a = normalized[col_a][i]
                    if value_a is None:
                        continue
                    support = value_counts[col_a][value_a]
                    if support < 5:
                        continue
                    contexts += 1
                    joint = pair_counts[(col_a, col_b)][(value_a, value_b)]
                    if joint / support <= self.cooccurrence_threshold:
                        surprise_votes += 1
                if contexts and surprise_votes == contexts:
                    cells.add((i, col_b))
        return cells
