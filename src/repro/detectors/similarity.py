"""Magellan-style similarity feature library.

ZeroER "relies on Magellan to generate a set of similarity features"
(Section 3.1).  This module reproduces the relevant feature family:
string similarities (trigram Jaccard, Levenshtein ratio, token Jaccard,
overlap coefficient, Monge-Elkan) and scale-aware numeric similarity, plus
the per-column feature-vector builder the ZeroER detector consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.dataset.table import Table, coerce_float, is_missing


def character_ngrams(text: str, n: int = 3) -> Set[str]:
    """Padded character n-grams of a string."""
    padded = f"{' ' * (n - 1)}{text.lower()}{' ' * (n - 1)}"
    if len(padded) < n:
        return {padded}
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def jaccard_ngram(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity over character n-grams."""
    grams_a, grams_b = character_ngrams(a, n), character_ngrams(b, n)
    union = grams_a | grams_b
    if not union:
        return 1.0
    return len(grams_a & grams_b) / len(union)


def jaccard_tokens(a: str, b: str) -> float:
    """Jaccard similarity over whitespace tokens."""
    tokens_a = set(a.lower().split())
    tokens_b = set(b.lower().split())
    union = tokens_a | tokens_b
    if not union:
        return 1.0
    return len(tokens_a & tokens_b) / len(union)


def overlap_coefficient(a: str, b: str) -> float:
    """Token overlap coefficient: |A∩B| / min(|A|, |B|)."""
    tokens_a = set(a.lower().split())
    tokens_b = set(b.lower().split())
    smaller = min(len(tokens_a), len(tokens_b))
    if smaller == 0:
        return 1.0 if not tokens_a and not tokens_b else 0.0
    return len(tokens_a & tokens_b) / smaller


def levenshtein(a: str, b: str, cutoff: Optional[int] = None) -> int:
    """Levenshtein edit distance (optionally with an early-exit cutoff)."""
    if a == b:
        return 0
    if cutoff is not None and abs(len(a) - len(b)) > cutoff:
        return cutoff + 1
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            value = min(previous[j] + 1, current[j - 1] + 1,
                        previous[j - 1] + cost)
            current.append(value)
            row_min = min(row_min, value)
        if cutoff is not None and row_min > cutoff:
            return cutoff + 1
        previous = current
    return previous[-1]


def levenshtein_ratio(a: str, b: str) -> float:
    """Normalized edit similarity in [0, 1]."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def monge_elkan(a: str, b: str) -> float:
    """Monge-Elkan: mean best token-level similarity of A's tokens in B."""
    tokens_a = a.lower().split()
    tokens_b = b.lower().split()
    if not tokens_a or not tokens_b:
        return 1.0 if tokens_a == tokens_b else 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(levenshtein_ratio(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


def numeric_similarity(a: float, b: float, scale: float) -> float:
    """Scale-aware numeric similarity: 1 at equality, 0 at one scale unit."""
    if scale <= 0:
        return 1.0 if a == b else 0.0
    return max(0.0, 1.0 - abs(a - b) / scale)


STRING_FEATURES = (
    ("jaccard_3gram", jaccard_ngram),
    ("levenshtein_ratio", levenshtein_ratio),
    ("jaccard_tokens", jaccard_tokens),
    ("overlap", overlap_coefficient),
    ("monge_elkan", monge_elkan),
)


def pair_feature_names(table: Table) -> List[str]:
    """Feature names produced by :func:`record_pair_features`."""
    names: List[str] = []
    for column in table.column_names:
        if table.schema.kind_of(column) == "numerical":
            names.append(f"{column}:numeric")
        else:
            names.extend(f"{column}:{fname}" for fname, _ in STRING_FEATURES)
    return names


def record_pair_features(
    table: Table,
    i: int,
    j: int,
    column_stds: Dict[str, float],
) -> np.ndarray:
    """Full Magellan-style feature vector for one row pair."""
    features: List[float] = []
    for column in table.column_names:
        a, b = table.get_cell(i, column), table.get_cell(j, column)
        missing = is_missing(a) or is_missing(b)
        if table.schema.kind_of(column) == "numerical":
            if missing:
                features.append(0.5)
                continue
            fa, fb = coerce_float(a), coerce_float(b)
            if np.isnan(fa) or np.isnan(fb):
                features.append(0.5)
            else:
                features.append(
                    numeric_similarity(fa, fb, column_stds.get(column, 1.0))
                )
        else:
            if missing:
                features.extend([0.5] * len(STRING_FEATURES))
                continue
            text_a, text_b = str(a), str(b)
            for _, fn in STRING_FEATURES:
                features.append(fn(text_a, text_b))
    return np.array(features, dtype=np.float64)
