"""Simple statistical detectors: explicit missing values and the SD / IQR /
Isolation-Forest outlier detectors of Table 1."""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table
from repro.detectors.base import NON_LEARNING, BlockwiseDetector, Detector
from repro.errors import profile
from repro.ml.forest import IsolationForest


class MVDetector(BlockwiseDetector, Detector):
    """Explicit missing-value detector (empty / NaN / null tokens).

    The paper attributes this to a pandas-style scan; it is exact for
    explicit missing values and blind to disguised ones.  Each cell's
    missingness depends on that cell alone, so the detector streams over
    row blocks with no profile at all.
    """

    name = "MVD"
    category = NON_LEARNING
    tackles = frozenset({profile.MISSING})

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        return context.dirty.missing_cells()

    def _detect_block(
        self,
        context: CleaningContext,
        fitted: Any,
        block: Table,
        start: int,
    ) -> Set[Cell]:
        return {(start + row, column) for row, column in block.missing_cells()}


class SDDetector(BlockwiseDetector, Detector):
    """Standard-deviation outlier detector.

    A numeric cell is an outlier when it lies more than ``n_sigmas``
    standard deviations from its column mean.  The mean/std pair is the
    whole-table profile; the threshold test is elementwise, so inference
    streams over row blocks byte-identically.
    """

    name = "SD"
    category = NON_LEARNING
    tackles = frozenset({profile.OUTLIER, profile.IMPLICIT_MISSING})

    def __init__(self, n_sigmas: float = 3.0) -> None:
        if n_sigmas <= 0:
            raise ValueError("n_sigmas must be positive")
        self.n_sigmas = n_sigmas

    def fit_profile(
        self, context: CleaningContext
    ) -> Dict[str, Tuple[float, float]]:
        """Per-column ``(mean, std)`` over the whole dirty table.

        Columns with fewer than 3 finite values or zero spread are
        omitted, exactly as :meth:`_detect` skips them.
        """
        stats: Dict[str, Tuple[float, float]] = {}
        table = context.dirty
        for column in table.schema.numerical_names:
            values = table.as_float(column)
            finite = values[~np.isnan(values)]
            if len(finite) < 3:
                continue
            mean, std = float(finite.mean()), float(finite.std())
            if std == 0:
                continue
            stats[column] = (mean, std)
        return stats

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        cells: Set[Cell] = set()
        table = context.dirty
        for column in table.schema.numerical_names:
            values = table.as_float(column)
            finite = values[~np.isnan(values)]
            if len(finite) < 3:
                continue
            mean, std = float(finite.mean()), float(finite.std())
            if std == 0:
                continue
            deviant = np.abs(values - mean) > self.n_sigmas * std
            for i in np.flatnonzero(deviant & ~np.isnan(values)):
                cells.add((int(i), column))
        return cells

    def _detect_block(
        self,
        context: CleaningContext,
        fitted: Dict[str, Tuple[float, float]],
        block: Table,
        start: int,
    ) -> Set[Cell]:
        cells: Set[Cell] = set()
        for column, (mean, std) in fitted.items():
            values = block.as_float(column)
            deviant = np.abs(values - mean) > self.n_sigmas * std
            for i in np.flatnonzero(deviant & ~np.isnan(values)):
                cells.add((start + int(i), column))
        return cells


class IQRDetector(BlockwiseDetector, Detector):
    """Interquartile-range outlier detector.

    Flags values outside ``[Q1 - k*IQR, Q3 + k*IQR]`` -- the resistant
    alternative to SD the paper describes.  The fence pair is the
    whole-table profile; the range test is elementwise, so inference
    streams over row blocks byte-identically.
    """

    name = "IQR"
    category = NON_LEARNING
    tackles = frozenset({profile.OUTLIER, profile.IMPLICIT_MISSING})

    def __init__(self, k: float = 1.5) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def fit_profile(
        self, context: CleaningContext
    ) -> Dict[str, Tuple[float, float]]:
        """Per-column ``(low, high)`` fences over the whole dirty table.

        Columns with fewer than 4 finite values or zero IQR are omitted,
        exactly as :meth:`_detect` skips them.
        """
        fences: Dict[str, Tuple[float, float]] = {}
        table = context.dirty
        for column in table.schema.numerical_names:
            values = table.as_float(column)
            finite = values[~np.isnan(values)]
            if len(finite) < 4:
                continue
            q1, q3 = np.quantile(finite, [0.25, 0.75])
            iqr = q3 - q1
            if iqr == 0:
                continue
            fences[column] = (q1 - self.k * iqr, q3 + self.k * iqr)
        return fences

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        cells: Set[Cell] = set()
        table = context.dirty
        for column in table.schema.numerical_names:
            values = table.as_float(column)
            finite = values[~np.isnan(values)]
            if len(finite) < 4:
                continue
            q1, q3 = np.quantile(finite, [0.25, 0.75])
            iqr = q3 - q1
            if iqr == 0:
                continue
            low, high = q1 - self.k * iqr, q3 + self.k * iqr
            deviant = (values < low) | (values > high)
            for i in np.flatnonzero(deviant & ~np.isnan(values)):
                cells.add((int(i), column))
        return cells

    def _detect_block(
        self,
        context: CleaningContext,
        fitted: Dict[str, Tuple[float, float]],
        block: Table,
        start: int,
    ) -> Set[Cell]:
        cells: Set[Cell] = set()
        for column, (low, high) in fitted.items():
            values = block.as_float(column)
            deviant = (values < low) | (values > high)
            for i in np.flatnonzero(deviant):
                cells.add((start + int(i), column))
        return cells


class IFDetector(Detector):
    """Isolation-forest outlier detector.

    Fits one isolation forest per numeric column (cell-level decisions, as
    REIN requires) using mean imputation for missing entries, which are
    never themselves flagged -- they belong to the MV detector.
    """

    name = "IF"
    category = NON_LEARNING
    tackles = frozenset({profile.OUTLIER, profile.IMPLICIT_MISSING})

    def __init__(
        self, n_estimators: int = 40, contamination: float = 0.1, seed: int = 0
    ) -> None:
        self.n_estimators = n_estimators
        self.contamination = contamination
        self.seed = seed

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        cells: Set[Cell] = set()
        table = context.dirty
        for column in table.schema.numerical_names:
            values = table.as_float(column)
            missing = np.isnan(values)
            if missing.all() or len(values) < 8:
                continue
            filled = values.copy()
            filled[missing] = float(np.nanmean(values))
            forest = IsolationForest(
                n_estimators=self.n_estimators,
                contamination=self.contamination,
                seed=self.seed,
            )
            forest.fit(filled[:, None])
            flagged = forest.predict(filled[:, None]) == -1
            for i in np.flatnonzero(flagged & ~missing):
                cells.add((int(i), column))
        return cells
