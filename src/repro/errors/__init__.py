"""Controlled error injection (Section 5 of the paper).

REIN injects errors into clean datasets with two engines: BART (denial-
constraint-guided rule violations, outliers, nulls, duplicates, mislabels)
and the BigDaMa *error generator* (keyboard typos, implicit missing values,
Gaussian noise, value swaps).  Both are reimplemented here with explicit
error-rate control and exact ground-truth error masks.
"""

from repro.errors.bart import BartEngine
from repro.errors.injectors import (
    CompositeInjector,
    DuplicateInjector,
    ErrorInjector,
    GaussianNoiseInjector,
    ImplicitMissingInjector,
    InconsistencyInjector,
    MislabelInjector,
    MissingValueInjector,
    OutlierInjector,
    SwapInjector,
    TypoInjector,
)
from repro.errors.profile import ERROR_TYPES, InjectionResult

__all__ = [
    "ERROR_TYPES",
    "BartEngine",
    "CompositeInjector",
    "DuplicateInjector",
    "ErrorInjector",
    "GaussianNoiseInjector",
    "ImplicitMissingInjector",
    "InconsistencyInjector",
    "InjectionResult",
    "MislabelInjector",
    "MissingValueInjector",
    "OutlierInjector",
    "SwapInjector",
    "TypoInjector",
]
