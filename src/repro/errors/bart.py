"""BART analogue: denial-constraint-guided error injection.

BART ("Benchmarking Algorithms for data Repairing and Translation") injects
errors that provably violate a given set of denial constraints while
controlling how *detectable* and *repairable* they are.  This engine
reproduces that contract for the constraint classes REIN uses:

- FD-style binary constraints (``t1.A == t2.A & t1.B != t2.B``): pick a row
  inside an existing determinant group and change the dependent value to a
  *different* group's value, creating a genuine rule violation whose repair
  (the group majority) remains recoverable.
- Unary range constraints (``t1.A <op> const``): move the value just across
  the constraint boundary (detectable) or far across it (cheap to spot),
  controlled by ``hardness``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.constraints.dc import DenialConstraint, Predicate
from repro.dataset.table import Cell, Table, coerce_float, is_missing
from repro.errors import profile
from repro.errors.profile import InjectionResult

_NUMERIC_OPS = {"<": -1.0, "<=": -1.0, ">": 1.0, ">=": 1.0}


class BartEngine:
    """Injects rule violations against a set of denial constraints.

    Args:
        constraints: the denial constraints errors must violate.
        hardness: in [0, 1]; 0 places unary violations barely across the
            constraint boundary (hard to spot with statistics), 1 places
            them far across (easy).  BART's "degree of hardness" knob,
            inverted to match its repairability semantics.
    """

    def __init__(
        self, constraints: Sequence[DenialConstraint], hardness: float = 0.5
    ) -> None:
        if not constraints:
            raise ValueError("BART needs at least one denial constraint")
        if not 0.0 <= hardness <= 1.0:
            raise ValueError("hardness must be in [0, 1]")
        self.constraints = list(constraints)
        self.hardness = hardness

    def inject(
        self, table: Table, rate: float, rng: np.random.Generator
    ) -> InjectionResult:
        """Corrupt ``rate`` of the table's cells with rule violations.

        The budget is split evenly across constraints; constraints that
        cannot produce more violations (e.g. all groups are singletons)
        return fewer cells than requested.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        dirty = table.copy()
        total_cells = table.n_rows * table.n_columns
        budget = int(round(rate * total_cells))
        per_constraint = max(budget // len(self.constraints), 0)
        marked: Set[Cell] = set()
        for constraint in self.constraints:
            if per_constraint == 0:
                break
            if constraint.binary:
                cells = self._violate_fd_constraint(
                    dirty, constraint, per_constraint, rng, marked
                )
            else:
                cells = self._violate_unary_constraint(
                    dirty, constraint, per_constraint, rng, marked
                )
            marked |= cells
        return InjectionResult(dirty, {profile.RULE_VIOLATION: marked})

    # ------------------------------------------------------------------
    def _fd_shape(
        self, constraint: DenialConstraint
    ) -> Optional[Tuple[List[str], str]]:
        """Extract (lhs, rhs) when the constraint is FD-shaped."""
        lhs: List[str] = []
        rhs: List[str] = []
        for predicate in constraint.predicates:
            if predicate.constant is not None or predicate.right_attr != predicate.left_attr:
                return None
            if predicate.op == "==":
                lhs.append(predicate.left_attr)
            elif predicate.op == "!=":
                rhs.append(predicate.left_attr)
            else:
                return None
        if len(rhs) != 1 or not lhs:
            return None
        return lhs, rhs[0]

    def _violate_fd_constraint(
        self,
        dirty: Table,
        constraint: DenialConstraint,
        budget: int,
        rng: np.random.Generator,
        already: Set[Cell],
    ) -> Set[Cell]:
        shape = self._fd_shape(constraint)
        if shape is None:
            return set()
        lhs, rhs = shape
        if rhs not in dirty.schema or any(a not in dirty.schema for a in lhs):
            return set()
        # Group rows by determinant values.
        groups: Dict[Tuple[str, ...], List[int]] = {}
        for i in range(dirty.n_rows):
            key = []
            ok = True
            for attr in lhs:
                value = dirty.get_cell(i, attr)
                if is_missing(value):
                    ok = False
                    break
                key.append(str(value).strip())
            if ok:
                groups.setdefault(tuple(key), []).append(i)
        multi = [rows for rows in groups.values() if len(rows) > 1]
        if not multi:
            return set()
        domain = [
            dirty.get_cell(i, rhs)
            for i in range(dirty.n_rows)
            if not is_missing(dirty.get_cell(i, rhs))
        ]
        if len({str(v).strip() for v in domain}) < 2:
            return set()
        cells: Set[Cell] = set()
        attempts = 0
        while len(cells) < budget and attempts < budget * 20:
            attempts += 1
            rows = multi[int(rng.integers(len(multi)))]
            victim = rows[int(rng.integers(len(rows)))]
            if (victim, rhs) in already or (victim, rhs) in cells:
                continue
            current = dirty.get_cell(victim, rhs)
            replacement = domain[int(rng.integers(len(domain)))]
            if is_missing(replacement) or str(replacement).strip() == str(current).strip():
                continue
            dirty.set_cell(victim, rhs, replacement)
            cells.add((victim, rhs))
        return cells

    def _violate_unary_constraint(
        self,
        dirty: Table,
        constraint: DenialConstraint,
        budget: int,
        rng: np.random.Generator,
        already: Set[Cell],
    ) -> Set[Cell]:
        # Only single-predicate numeric range constraints are supported;
        # they cover BART's "outside the valid range" violation class.
        if len(constraint.predicates) != 1:
            return set()
        predicate = constraint.predicates[0]
        if predicate.constant is None or predicate.op not in _NUMERIC_OPS:
            return set()
        attr = predicate.left_attr
        if attr not in dirty.schema:
            return set()
        boundary = coerce_float(predicate.constant)
        if np.isnan(boundary):
            return set()
        values = dirty.as_float(attr)
        std = float(np.nanstd(values)) or 1.0
        direction = _NUMERIC_OPS[predicate.op]
        candidates = [
            i
            for i in range(dirty.n_rows)
            if (i, attr) not in already and not is_missing(dirty.get_cell(i, attr))
        ]
        if not candidates:
            return set()
        rng.shuffle(candidates)
        cells: Set[Cell] = set()
        # The predicate *holding* is the violation; push values to where it
        # holds.  hardness=0 -> just across the boundary; 1 -> far across.
        offset = (0.05 + 2.0 * self.hardness) * std
        for victim in candidates[:budget]:
            violating_value = boundary + direction * offset * (
                1.0 + rng.uniform(0.0, 0.5)
            )
            dirty.set_cell(victim, attr, float(violating_value))
            cells.add((victim, attr))
        return cells
