"""Error injectors: the BigDaMa error-generator analogue plus duplicates,
mislabels, and inconsistencies.

Every injector implements ``inject(table, rate, rng)`` returning an
:class:`~repro.errors.profile.InjectionResult`.  ``rate`` is the fraction of
*eligible* cells to corrupt (eligible = the injector's target columns), except
for row-level injectors (duplicates, mislabels) where it is a fraction of
rows.  Injectors never corrupt a cell twice and record exactly which cells
they touched, giving the benchmark a precise ground-truth error mask.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dataset.table import Cell, Table, coerce_float, is_missing
from repro.errors import profile
from repro.errors.profile import InjectionResult

#: QWERTY adjacency used for realistic keyboard typos.
_KEYBOARD_NEIGHBORS: Dict[str, str] = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "ol",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "kop",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
    "1": "2q", "2": "13qw", "3": "24we", "4": "35er", "5": "46rt",
    "6": "57ty", "7": "68yu", "8": "79ui", "9": "80io", "0": "9op",
}

#: Disguised missing-value sentinels (FAHES's quarry).  None of these are
#: recognised by :func:`repro.dataset.table.is_missing`.
_IMPLICIT_TOKENS_TEXT = ("unknown", "UNK", "none given", "xxx")
_IMPLICIT_TOKENS_NUMERIC = (99999.0, -1.0, 9999.0, -999.0)


class ErrorInjector:
    """Base injector: target-column resolution and cell sampling."""

    #: error-type label recorded in the injection result.
    error_type: str = "generic"

    def __init__(self, columns: Optional[Sequence[str]] = None) -> None:
        self.columns = list(columns) if columns is not None else None

    def eligible_columns(self, table: Table) -> List[str]:
        """Columns this injector may corrupt (override per error type)."""
        if self.columns is not None:
            return [c for c in self.columns if c in table.schema]
        return table.column_names

    def _sample_cells(
        self,
        table: Table,
        rate: float,
        rng: np.random.Generator,
        skip_missing: bool = True,
    ) -> List[Cell]:
        """Sample distinct non-missing cells at the requested rate."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        columns = self.eligible_columns(table)
        pool: List[Cell] = []
        for name in columns:
            values = table.column(name)
            for i in range(table.n_rows):
                if skip_missing and is_missing(values[i]):
                    continue
                pool.append((i, name))
        count = int(round(rate * table.n_rows * len(columns)))
        count = min(count, len(pool))
        if count == 0:
            return []
        chosen = rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in chosen]

    def inject(
        self, table: Table, rate: float, rng: np.random.Generator
    ) -> InjectionResult:
        raise NotImplementedError


class MissingValueInjector(ErrorInjector):
    """Explicit missing values: cells are blanked to None."""

    error_type = profile.MISSING

    def inject(self, table, rate, rng):
        dirty = table.copy()
        cells = self._sample_cells(table, rate, rng)
        for row, col in cells:
            dirty.set_cell(row, col, None)
        return InjectionResult(dirty, {self.error_type: set(cells)})


class ImplicitMissingInjector(ErrorInjector):
    """Disguised missing values (e.g. ``99999`` for a number)."""

    error_type = profile.IMPLICIT_MISSING

    def inject(self, table, rate, rng):
        dirty = table.copy()
        cells = self._sample_cells(table, rate, rng)
        marked: Set[Cell] = set()
        for row, col in cells:
            if table.schema.kind_of(col) == "numerical":
                token = _IMPLICIT_TOKENS_NUMERIC[
                    int(rng.integers(len(_IMPLICIT_TOKENS_NUMERIC)))
                ]
            else:
                token = _IMPLICIT_TOKENS_TEXT[
                    int(rng.integers(len(_IMPLICIT_TOKENS_TEXT)))
                ]
            if not _equal_payload(table.get_cell(row, col), token):
                dirty.set_cell(row, col, token)
                marked.add((row, col))
        return InjectionResult(dirty, {self.error_type: marked})


class OutlierInjector(ErrorInjector):
    """Numeric outliers placed ``degree`` standard deviations from the mean.

    ``degree`` is the paper's "outlier degree" robustness knob (Figure 3c).
    """

    error_type = profile.OUTLIER

    def __init__(self, columns=None, degree: float = 4.0) -> None:
        super().__init__(columns)
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree

    def eligible_columns(self, table):
        base = super().eligible_columns(table)
        return [c for c in base if table.schema.kind_of(c) == "numerical"]

    def inject(self, table, rate, rng):
        dirty = table.copy()
        cells = self._sample_cells(table, rate, rng)
        stats: Dict[str, Tuple[float, float]] = {}
        marked: Set[Cell] = set()
        for row, col in cells:
            if col not in stats:
                values = table.as_float(col)
                stats[col] = (
                    float(np.nanmean(values)),
                    float(np.nanstd(values)) or 1.0,
                )
            mean, std = stats[col]
            sign = 1.0 if rng.uniform() < 0.5 else -1.0
            jitter = rng.uniform(0.0, 0.5)
            outlier = mean + sign * (self.degree + jitter) * std
            if not _equal_payload(table.get_cell(row, col), outlier):
                dirty.set_cell(row, col, outlier)
                marked.add((row, col))
        return InjectionResult(dirty, {self.error_type: marked})


class GaussianNoiseInjector(ErrorInjector):
    """Additive Gaussian noise on numeric cells (error-generator style)."""

    error_type = profile.GAUSSIAN_NOISE

    def __init__(self, columns=None, scale: float = 0.5) -> None:
        super().__init__(columns)
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def eligible_columns(self, table):
        base = super().eligible_columns(table)
        return [c for c in base if table.schema.kind_of(c) == "numerical"]

    def inject(self, table, rate, rng):
        dirty = table.copy()
        cells = self._sample_cells(table, rate, rng)
        stds: Dict[str, float] = {}
        marked: Set[Cell] = set()
        for row, col in cells:
            if col not in stds:
                stds[col] = float(np.nanstd(table.as_float(col))) or 1.0
            value = coerce_float(table.get_cell(row, col))
            if np.isnan(value):
                continue
            noise = rng.normal(0.0, self.scale * stds[col])
            if noise == 0.0:
                noise = self.scale * stds[col]
            dirty.set_cell(row, col, value + noise)
            marked.add((row, col))
        return InjectionResult(dirty, {self.error_type: marked})


class TypoInjector(ErrorInjector):
    """Keyboard typos: substitute/insert/delete a character.

    Applied to numeric cells, a typo turns the payload into text -- the
    "numerical attributes converted to categorical" effect Section 6.2
    describes.
    """

    error_type = profile.TYPO

    def inject(self, table, rate, rng):
        dirty = table.copy()
        cells = self._sample_cells(table, rate, rng)
        marked: Set[Cell] = set()
        for row, col in cells:
            original = str(table.get_cell(row, col)).strip()
            if not original:
                continue
            corrupted = _keyboard_typo(original, rng)
            # Payload equality, not string equality: a digit edit deep in a
            # float's repr can be numerically indistinguishable.
            if not _equal_payload(corrupted, table.get_cell(row, col)):
                dirty.set_cell(row, col, corrupted)
                marked.add((row, col))
        return InjectionResult(dirty, {self.error_type: marked})


class SwapInjector(ErrorInjector):
    """Value swapping: exchanges the values of two rows in one column."""

    error_type = profile.SWAP

    def inject(self, table, rate, rng):
        dirty = table.copy()
        columns = self.eligible_columns(table)
        n_swaps = int(round(rate * table.n_rows * len(columns) / 2.0))
        marked: Set[Cell] = set()
        for _ in range(n_swaps):
            col = columns[int(rng.integers(len(columns)))]
            row_a, row_b = rng.choice(table.n_rows, size=2, replace=False)
            value_a = dirty.get_cell(int(row_a), col)
            value_b = dirty.get_cell(int(row_b), col)
            if _equal_payload(value_a, value_b):
                continue
            dirty.set_cell(int(row_a), col, value_b)
            dirty.set_cell(int(row_b), col, value_a)
            marked.add((int(row_a), col))
            marked.add((int(row_b), col))
        # A cell swapped twice can land back on its original value;
        # reconcile so the mask equals the true diff.
        return InjectionResult(
            dirty, {self.error_type: marked}
        ).reconciled_with(table)


class InconsistencyInjector(ErrorInjector):
    """Formatting inconsistencies in categorical values (OpenRefine's prey).

    Replaces a value with a case/abbreviation/punctuation variant that still
    denotes the same entity.
    """

    error_type = profile.INCONSISTENCY

    def eligible_columns(self, table):
        base = super().eligible_columns(table)
        return [c for c in base if table.schema.kind_of(c) == "categorical"]

    def inject(self, table, rate, rng):
        dirty = table.copy()
        cells = self._sample_cells(table, rate, rng)
        marked: Set[Cell] = set()
        for row, col in cells:
            original = str(table.get_cell(row, col)).strip()
            variant = _format_variant(original, rng)
            if variant != original:
                dirty.set_cell(row, col, variant)
                marked.add((row, col))
        return InjectionResult(dirty, {self.error_type: marked})


class DuplicateInjector(ErrorInjector):
    """Duplicates: victim rows are overwritten with near-copies of others.

    Overwriting (rather than appending) keeps the dirty and ground-truth
    versions the same length, so cell-level masks stay aligned -- the
    paper notes that length changes break several detectors.  ``fuzziness``
    is the probability of perturbing one cell of the copy, producing fuzzy
    rather than exact duplicates.  ``fuzz_columns`` restricts which columns
    the perturbation may touch (e.g. keep class labels intact so duplicate
    noise does not masquerade as label typos).
    """

    error_type = profile.DUPLICATE

    def __init__(
        self, columns=None, fuzziness: float = 0.3, fuzz_columns=None
    ) -> None:
        super().__init__(columns)
        if not 0.0 <= fuzziness <= 1.0:
            raise ValueError("fuzziness must be in [0, 1]")
        self.fuzziness = fuzziness
        self.fuzz_columns = list(fuzz_columns) if fuzz_columns is not None else None

    def inject(self, table, rate, rng):
        dirty = table.copy()
        n_rows = table.n_rows
        n_victims = min(int(round(rate * n_rows)), max(n_rows - 1, 0))
        marked: Set[Cell] = set()
        if n_victims == 0:
            return InjectionResult(dirty, {self.error_type: marked})
        # Victims are drawn from the later rows and copy earlier sources, so
        # the duplicate is always the *later* record of its group -- the
        # convention duplicate detectors use when keeping the first record.
        candidates = np.arange(1, n_rows)
        victims = rng.choice(
            candidates, size=min(n_victims, len(candidates)), replace=False
        )
        victim_set = set(int(v) for v in victims)
        sources = [i for i in range(n_rows) if i not in victim_set]
        if not sources:
            return InjectionResult(dirty, {self.error_type: marked})
        fuzzable = (
            set(self.fuzz_columns)
            if self.fuzz_columns is not None
            else set(table.column_names)
        )
        for victim in victim_set:
            earlier = [s for s in sources if s < victim]
            pool = earlier if earlier else sources
            source = pool[int(rng.integers(len(pool)))]
            for col in table.column_names:
                source_value = table.get_cell(source, col)
                if col in fuzzable and rng.uniform() < self.fuzziness:
                    source_value = _fuzz_value(
                        source_value, table.schema.kind_of(col), rng
                    )
                if not _equal_payload(dirty.get_cell(victim, col), source_value):
                    dirty.set_cell(victim, col, source_value)
                    marked.add((victim, col))
        return InjectionResult(dirty, {self.error_type: marked})


class MislabelInjector(ErrorInjector):
    """Class errors: flips the label of a fraction of rows."""

    error_type = profile.MISLABEL

    def __init__(self, label_column: str) -> None:
        super().__init__([label_column])
        self.label_column = label_column

    def inject(self, table, rate, rng):
        dirty = table.copy()
        if self.label_column not in table.schema:
            raise KeyError(f"no label column {self.label_column!r}")
        values = table.column(self.label_column)
        classes = sorted(
            {str(v).strip() for v in values if not is_missing(v)}
        )
        marked: Set[Cell] = set()
        if len(classes) < 2:
            return InjectionResult(dirty, {self.error_type: marked})
        n_flips = int(round(rate * table.n_rows))
        candidates = [i for i in range(table.n_rows) if not is_missing(values[i])]
        n_flips = min(n_flips, len(candidates))
        if n_flips == 0:
            return InjectionResult(dirty, {self.error_type: marked})
        flips = rng.choice(len(candidates), size=n_flips, replace=False)
        for pick in flips:
            row = candidates[pick]
            current = str(values[row]).strip()
            others = [c for c in classes if c != current]
            dirty.set_cell(row, self.label_column, others[int(rng.integers(len(others)))])
            marked.add((row, self.label_column))
        return InjectionResult(dirty, {self.error_type: marked})


class CompositeInjector(ErrorInjector):
    """Applies several injectors in sequence, merging their masks.

    Each sub-injector receives its own share of the overall rate; cells
    already corrupted by an earlier injector are left alone (the sampling
    skips cells whose value already differs from the running table).
    """

    error_type = "composite"

    def __init__(self, injectors: Sequence[ErrorInjector]) -> None:
        super().__init__(None)
        if not injectors:
            raise ValueError("composite needs at least one injector")
        self.injectors = list(injectors)

    def inject(self, table, rate, rng):
        share = rate / len(self.injectors)
        result = InjectionResult(table.copy(), {})
        for injector in self.injectors:
            step = injector.inject(result.dirty, share, rng)
            # Drop cells that an earlier injector already owns.
            owned = result.error_cells
            step.cells_by_type = {
                t: {c for c in cells if c not in owned}
                for t, cells in step.cells_by_type.items()
            }
            result = result.merge(step)
        # A later injector may have restored an earlier corruption to its
        # original value; reconcile so the mask equals the true diff.
        return result.reconciled_with(table)


# ----------------------------------------------------------------------
# Value-corruption helpers
# ----------------------------------------------------------------------
def _equal_payload(a, b) -> bool:
    from repro.dataset.table import values_equal

    return values_equal(a, b)


def _keyboard_typo(text: str, rng: np.random.Generator) -> str:
    """Apply one keyboard-realistic edit to *text*."""
    position = int(rng.integers(len(text)))
    char = text[position].lower()
    action = rng.uniform()
    neighbors = _KEYBOARD_NEIGHBORS.get(char)
    if neighbors and action < 0.5:
        # Substitution with an adjacent key.
        replacement = neighbors[int(rng.integers(len(neighbors)))]
        return text[:position] + replacement + text[position + 1 :]
    if neighbors and action < 0.8:
        # Fat-finger insertion.
        extra = neighbors[int(rng.integers(len(neighbors)))]
        return text[:position] + extra + text[position:]
    if len(text) > 1:
        # Deletion.
        return text[:position] + text[position + 1 :]
    return text + text  # single-char fallback: double it


def _format_variant(text: str, rng: np.random.Generator) -> str:
    """Produce a formatting-inconsistent variant of a categorical value."""
    choices = []
    if text.upper() != text:
        choices.append(text.upper())
    if text.capitalize() != text:
        choices.append(text.capitalize())
    if " " in text:
        choices.append(text.replace(" ", "_"))
        choices.append(text.replace(" ", ""))
    if len(text) > 4:
        choices.append(text[:3] + ".")
    choices.append(text + " Inc")
    return choices[int(rng.integers(len(choices)))]


def _fuzz_value(value, kind: str, rng: np.random.Generator):
    """Slightly perturb a copied value to make a fuzzy duplicate."""
    if is_missing(value):
        return value
    if kind == "numerical":
        numeric = coerce_float(value)
        if not np.isnan(numeric):
            return numeric * (1.0 + rng.normal(0.0, 0.01))
        return value
    return _keyboard_typo(str(value), rng)
