"""Error taxonomy and injection bookkeeping.

Every injector returns an :class:`InjectionResult` carrying the dirty table
and an exact per-error-type map of the cells it corrupted -- the ground
truth the detection metrics score against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.dataset.table import Cell, Table

#: The attribute/class error types REIN injects and detects (Table 4).
MISSING = "missing"
IMPLICIT_MISSING = "implicit_missing"
OUTLIER = "outlier"
TYPO = "typo"
SWAP = "swap"
GAUSSIAN_NOISE = "gaussian_noise"
RULE_VIOLATION = "rule_violation"
PATTERN_VIOLATION = "pattern_violation"
INCONSISTENCY = "inconsistency"
DUPLICATE = "duplicate"
MISLABEL = "mislabel"

ERROR_TYPES = (
    MISSING,
    IMPLICIT_MISSING,
    OUTLIER,
    TYPO,
    SWAP,
    GAUSSIAN_NOISE,
    RULE_VIOLATION,
    PATTERN_VIOLATION,
    INCONSISTENCY,
    DUPLICATE,
    MISLABEL,
)


@dataclass
class InjectionResult:
    """A dirty table plus the exact cells corrupted, per error type."""

    dirty: Table
    cells_by_type: Dict[str, Set[Cell]] = field(default_factory=dict)

    @property
    def error_cells(self) -> Set[Cell]:
        """Union of all corrupted cells."""
        cells: Set[Cell] = set()
        for group in self.cells_by_type.values():
            cells |= group
        return cells

    @property
    def error_types(self) -> Set[str]:
        return {t for t, cells in self.cells_by_type.items() if cells}

    def error_rate(self) -> float:
        """Fraction of table cells that were corrupted."""
        total = self.dirty.n_rows * self.dirty.n_columns
        return len(self.error_cells) / total if total else 0.0

    def merge(self, other: "InjectionResult") -> "InjectionResult":
        """Fold another result (produced on this result's table) in."""
        merged = dict(self.cells_by_type)
        for error_type, cells in other.cells_by_type.items():
            merged[error_type] = merged.get(error_type, set()) | cells
        return InjectionResult(other.dirty, merged)

    def reconciled_with(self, clean: Table) -> "InjectionResult":
        """Drop mask entries that no longer differ from the clean table.

        A later injector can accidentally restore an earlier injector's
        corruption to its original value; reconciling against the clean
        version keeps the mask exactly equal to the true cell diff.
        """
        actual = clean.diff_cells(self.dirty)
        return InjectionResult(
            self.dirty,
            {
                error_type: cells & actual
                for error_type, cells in self.cells_by_type.items()
            },
        )
