"""Cleaning-kernel dispatch and per-kernel telemetry.

The cleaning-stage vectorization pass (detectors, constraints, repair)
follows the ``repro.ml`` recipe: every scalar hot path is frozen in a
``_reference`` module, and the live modules carry numpy rewrites proven
bit-identical by ``tests/test_cleaning_kernels.py``.  Two cross-cutting
concerns live here so the kernels themselves stay pure:

**Dispatch.**  :func:`reference_kernels` flips every instrumented call
site back to its frozen scalar implementation for the duration of a
block.  The benchmark suite uses it to time old-vs-new through the
*public* API (same detectors, same suites), and the byte-identity tests
use it to produce whole checkpoint stores under the scalar kernels
without reaching into private modules.  The flag is process-local and
read per call -- worker processes spawned inside the block do *not*
inherit it, which is exactly what the byte-identity tests exploit:
reference output from a serial run must match vectorized output from
any pool.

**Per-kernel stages.**  :func:`kernel_stage` brackets one kernel
invocation in a ``kernel``-category span plus a
``kernel.<name>.seconds`` duration histogram when telemetry is
installed, so ``repro trace`` shows time per cleaning kernel and the
run ledger records per-kernel durations (spans and metrics are flushed
to the ledger at run end).  Kernel spans deliberately do *not* use
``Telemetry.stage`` -- suite-stage accounting (one ``stage`` span and
one started/finished event pair per suite stage) must stay untouched by
however many kernels run inside a stage.  With no telemetry installed
the cost is one global read and an ``is None`` branch, preserving the
zero-cost contract of :mod:`repro.observability.telemetry`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.observability.telemetry import current_telemetry
from repro.observability.trace import KERNEL

_USE_REFERENCE = False


def use_reference_kernels() -> bool:
    """True while a :func:`reference_kernels` block is active."""
    return _USE_REFERENCE


@contextmanager
def reference_kernels() -> Iterator[None]:
    """Route instrumented kernels to their frozen scalar references."""
    global _USE_REFERENCE
    saved = _USE_REFERENCE
    _USE_REFERENCE = True
    try:
        yield
    finally:
        _USE_REFERENCE = saved


@contextmanager
def kernel_stage(name: str) -> Iterator[None]:
    """Kernel span + duration histogram around one kernel invocation.

    No-op (one global read) when no telemetry is installed.  The kernel
    mode is attached so traces distinguish reference from vectorized
    timings when benchmarks run both under one telemetry scope.
    """
    telemetry = current_telemetry()
    if telemetry is None:
        yield
        return
    mode = "reference" if _USE_REFERENCE else "vectorized"
    with telemetry.span(f"kernel:{name}", KERNEL, kernel_mode=mode) as span:
        yield
    telemetry.observe(f"kernel.{name}.seconds", span.duration_seconds)
