"""Evaluation metrics for every stage of the pipeline (Section 6.1).

- detection: precision / recall / F1 relative to the ground-truth error
  mask, plus IoU similarity between detector outputs;
- repair: precision / recall / F1 for categorical repairs, RMSE for
  numerical repairs;
- model: classification P/R/F1 (macro), regression RMSE, clustering
  Silhouette index;
- stats: the two-tailed Wilcoxon signed-rank test with continuity
  correction used for the S1-vs-S4 A/B hypothesis tests.
"""

from repro.metrics.detection import DetectionScores, detection_scores, iou, iou_matrix
from repro.metrics.model import (
    classification_report,
    f1_score,
    precision_recall_f1,
    rmse,
    silhouette_score,
)
from repro.metrics.repair import (
    RepairScores,
    repair_rmse,
    repair_rmse_per_column,
    repair_scores_categorical,
)
from repro.metrics.stats import WilcoxonResult, wilcoxon_signed_rank

__all__ = [
    "DetectionScores",
    "RepairScores",
    "WilcoxonResult",
    "classification_report",
    "detection_scores",
    "f1_score",
    "iou",
    "iou_matrix",
    "precision_recall_f1",
    "repair_rmse",
    "repair_rmse_per_column",
    "repair_scores_categorical",
    "rmse",
    "silhouette_score",
    "wilcoxon_signed_rank",
]
