"""Detection-phase metrics: P/R/F1 against the error mask and IoU between
detectors (Section 6.1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.dataset.table import Cell


@dataclass(frozen=True)
class DetectionScores:
    """Precision, recall, F1 and raw counts for one detector run."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def detected(self) -> int:
        return self.true_positives + self.false_positives


def detection_scores(
    detected: Iterable[Cell], actual_errors: Iterable[Cell]
) -> DetectionScores:
    """Score a set of detected cells against the ground-truth error cells."""
    detected_set = set(detected)
    actual_set = set(actual_errors)
    tp = len(detected_set & actual_set)
    fp = len(detected_set - actual_set)
    fn = len(actual_set - detected_set)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    return DetectionScores(precision, recall, f1, tp, fp, fn)


def iou(cells_a: Iterable[Cell], cells_b: Iterable[Cell]) -> float:
    """Intersection-over-union of two detection sets.

    Following the paper, callers should pass only true positives -- false
    positives make the similarity misleading.
    """
    set_a, set_b = set(cells_a), set(cells_b)
    if not set_a and not set_b:
        return 1.0
    intersection = len(set_a & set_b)
    union = len(set_a) + len(set_b) - intersection
    return intersection / union if union else 0.0


def iou_matrix(
    detections: Dict[str, Set[Cell]],
    actual_errors: Set[Cell],
    true_positives_only: bool = True,
) -> Tuple[List[str], List[List[float]]]:
    """Pairwise IoU between named detectors.

    Returns the detector name order and a symmetric matrix.  When
    ``true_positives_only`` is set (the paper's choice), each detection set
    is first intersected with the actual error cells.
    """
    names = sorted(detections)
    effective = {
        name: (detections[name] & actual_errors if true_positives_only else detections[name])
        for name in names
    }
    matrix = [
        [iou(effective[a], effective[b]) for b in names] for a in names
    ]
    return names, matrix
