"""Model-phase metrics: classification P/R/F1, regression RMSE, and the
Silhouette index for clustering (Section 6.1)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def precision_recall_f1(
    y_true: Sequence, y_pred: Sequence, average: str = "macro"
) -> Tuple[float, float, float]:
    """Multiclass precision/recall/F1.

    ``macro`` averages per-class scores uniformly; ``micro`` pools counts
    (equivalent to accuracy for single-label classification).
    """
    truths = np.asarray(y_true)
    predictions = np.asarray(y_pred)
    if len(truths) != len(predictions):
        raise ValueError("y_true and y_pred must have equal length")
    if len(truths) == 0:
        raise ValueError("cannot score empty predictions")
    classes = np.unique(np.concatenate([truths, predictions]))
    if average == "micro":
        tp = float(np.sum(truths == predictions))
        precision = recall = tp / len(truths)
        f1 = precision
        return precision, recall, f1
    if average != "macro":
        raise ValueError("average must be 'macro' or 'micro'")
    precisions, recalls, f1s = [], [], []
    for cls in classes:
        tp = float(np.sum((predictions == cls) & (truths == cls)))
        fp = float(np.sum((predictions == cls) & (truths != cls)))
        fn = float(np.sum((predictions != cls) & (truths == cls)))
        p = tp / (tp + fp) if (tp + fp) else 0.0
        r = tp / (tp + fn) if (tp + fn) else 0.0
        f = 2 * p * r / (p + r) if (p + r) else 0.0
        precisions.append(p)
        recalls.append(r)
        f1s.append(f)
    return (
        float(np.mean(precisions)),
        float(np.mean(recalls)),
        float(np.mean(f1s)),
    )


def f1_score(y_true: Sequence, y_pred: Sequence, average: str = "macro") -> float:
    """Convenience wrapper returning only the F1 component."""
    return precision_recall_f1(y_true, y_pred, average)[2]


def classification_report(y_true: Sequence, y_pred: Sequence) -> Dict[str, float]:
    """Accuracy plus macro P/R/F1 in one dictionary."""
    precision, recall, f1 = precision_recall_f1(y_true, y_pred)
    accuracy = float(np.mean(np.asarray(y_true) == np.asarray(y_pred)))
    return {
        "accuracy": accuracy,
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }


def rmse(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Root mean squared error."""
    truths = np.asarray(y_true, dtype=np.float64)
    predictions = np.asarray(y_pred, dtype=np.float64)
    if len(truths) != len(predictions):
        raise ValueError("y_true and y_pred must have equal length")
    if len(truths) == 0:
        raise ValueError("cannot score empty predictions")
    return float(np.sqrt(np.mean((truths - predictions) ** 2)))


def silhouette_score(features: np.ndarray, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient over all clustered samples.

    Noise points (label -1, e.g. from OPTICS) are excluded.  Returns 0 when
    fewer than two clusters remain -- the score is undefined there, and 0 is
    the conventional "no structure" value.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels)
    if len(features) != len(labels):
        raise ValueError("features and labels must have equal length")
    keep = labels != -1
    features, labels = features[keep], labels[keep]
    unique = np.unique(labels)
    if len(unique) < 2 or len(features) < 3:
        return 0.0
    # Pairwise distances once; datasets at clustering stage are sampled small.
    diffs = features[:, None, :] - features[None, :, :]
    distances = np.sqrt(np.sum(diffs**2, axis=2))
    scores = np.zeros(len(features))
    for i in range(len(features)):
        same = (labels == labels[i]) & (np.arange(len(features)) != i)
        if not same.any():
            scores[i] = 0.0
            continue
        a = distances[i, same].mean()
        b = np.inf
        for cls in unique:
            if cls == labels[i]:
                continue
            members = labels == cls
            if members.any():
                b = min(b, distances[i, members].mean())
        denom = max(a, b)
        scores[i] = (b - a) / denom if denom > 0 else 0.0
    return float(scores.mean())
