"""Repair-phase metrics (Section 6.1).

Categorical attributes are scored with precision / recall / F1 over
correctly repaired cells; numerical attributes with RMSE between the
repaired and ground-truth values.  Cells that an error turned from numeric
into text and that were never repaired are filtered out of the RMSE
computation, exactly as the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set

import numpy as np

from repro.dataset.table import Cell, Table, coerce_float, values_equal


@dataclass(frozen=True)
class RepairScores:
    precision: float
    recall: float
    f1: float
    correctly_repaired: int
    repaired: int
    total_errors: int


def _cells_in_columns(cells: Iterable[Cell], columns: Sequence[str]) -> Set[Cell]:
    allowed = set(columns)
    return {cell for cell in cells if cell[1] in allowed}


def repair_scores_categorical(
    dirty: Table,
    repaired: Table,
    clean: Table,
    actual_errors: Iterable[Cell],
    columns: Optional[Sequence[str]] = None,
) -> RepairScores:
    """Score categorical repairs.

    Precision = correctly repaired / repaired cells; recall = correctly
    repaired / actual error cells (restricted to the given columns, which
    default to the schema's categorical attributes).
    """
    if columns is None:
        columns = clean.schema.categorical_names
    errors = _cells_in_columns(actual_errors, columns)
    changed = _cells_in_columns(dirty.diff_cells(repaired), columns)
    correctly = {
        (row, col)
        for row, col in changed
        if values_equal(repaired.get_cell(row, col), clean.get_cell(row, col))
    }
    repaired_count = len(changed)
    correct_count = len(correctly)
    total_errors = len(errors)
    precision = correct_count / repaired_count if repaired_count else 0.0
    recall = correct_count / total_errors if total_errors else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    return RepairScores(
        precision, recall, f1, correct_count, repaired_count, total_errors
    )


def repair_rmse_per_column(
    repaired: Table,
    clean: Table,
    columns: Optional[Sequence[str]] = None,
    normalize: bool = True,
) -> "dict[str, float]":
    """Per-column RMSE between repaired and ground-truth values.

    Cells whose repaired payload is still non-numeric (e.g. an undetected
    typo that turned a number into text) are filtered out, following the
    paper.  With ``normalize`` (default) each column's errors are scaled
    by the clean column's standard deviation so wide-range columns stay
    comparable.  Columns with no valid (numeric-vs-numeric) cells are
    omitted from the result.
    """
    if columns is None:
        columns = clean.schema.numerical_names
    per_column: "dict[str, float]" = {}
    for name in columns:
        repaired_values = repaired.as_float(name)
        clean_values = clean.as_float(name)
        valid = ~np.isnan(repaired_values) & ~np.isnan(clean_values)
        if not valid.any():
            continue
        diff = repaired_values[valid] - clean_values[valid]
        if normalize:
            scale = float(np.nanstd(clean_values))
            if scale > 0:
                diff = diff / scale
        per_column[name] = float(np.sqrt((diff**2).mean()))
    return per_column


def repair_rmse(
    repaired: Table,
    clean: Table,
    columns: Optional[Sequence[str]] = None,
    normalize: bool = True,
    aggregate: str = "mean",
) -> float:
    """RMSE between repaired and ground-truth numerical values.

    ``aggregate="mean"`` (default) computes each column's RMSE
    separately (:func:`repair_rmse_per_column`) and averages them, so
    every column carries equal weight.  ``aggregate="pooled"`` is the
    old behavior -- all valid cells in one pool -- which weights each
    column by its *valid-cell count*: a column where repairs failed to
    produce numbers (fewer valid cells) quietly counts for less, hiding
    exactly the columns that repaired worst.  Pooled remains available
    for cell-population-weighted comparisons.

    Cell filtering and ``normalize`` follow
    :func:`repair_rmse_per_column`.  Returns 0.0 when there are no
    numerical columns and NaN when no column has a valid cell.
    """
    if aggregate not in ("mean", "pooled"):
        raise ValueError(
            f"aggregate must be 'mean' or 'pooled', got {aggregate!r}"
        )
    if columns is None:
        columns = clean.schema.numerical_names
    if not columns:
        return 0.0
    if aggregate == "mean":
        per_column = repair_rmse_per_column(
            repaired, clean, columns, normalize=normalize
        )
        if not per_column:
            return math.nan
        return float(np.mean(list(per_column.values())))
    squared_errors = []
    for name in columns:
        repaired_values = repaired.as_float(name)
        clean_values = clean.as_float(name)
        valid = ~np.isnan(repaired_values) & ~np.isnan(clean_values)
        if not valid.any():
            continue
        diff = repaired_values[valid] - clean_values[valid]
        if normalize:
            scale = float(np.nanstd(clean_values))
            if scale > 0:
                diff = diff / scale
        squared_errors.append(diff**2)
    if not squared_errors:
        return math.nan
    return float(np.sqrt(np.concatenate(squared_errors).mean()))
