"""Wilcoxon signed-rank test with continuity correction (Section 4).

REIN uses the two-tailed Wilcoxon signed-rank test to decide whether an ML
model behaves the same in two scenarios (e.g. S1 vs S4) across repeated
runs.  The implementation here uses the normal approximation with tie
correction and the +-0.5 continuity correction the paper calls out, and
falls back to the exact null distribution for very small samples.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a two-tailed Wilcoxon signed-rank test."""

    statistic: float
    p_value: float
    n_effective: int

    def reject_null(self, alpha: float = 0.05) -> bool:
        """True when the two samples differ significantly at level alpha."""
        return self.p_value < alpha


def _signed_ranks(differences: np.ndarray) -> np.ndarray:
    """Average ranks of |differences| (ties share their mean rank)."""
    magnitudes = np.abs(differences)
    order = np.argsort(magnitudes, kind="stable")
    ranks = np.empty(len(magnitudes), dtype=np.float64)
    sorted_mags = magnitudes[order]
    i = 0
    while i < len(sorted_mags):
        j = i
        while j + 1 < len(sorted_mags) and sorted_mags[j + 1] == sorted_mags[i]:
            j += 1
        mean_rank = 0.5 * (i + j) + 1.0
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def _exact_p_value(w_plus: float, ranks: np.ndarray) -> float:
    """Exact two-tailed p-value by enumerating all sign assignments."""
    n = len(ranks)
    total = 0
    extreme = 0
    mean = ranks.sum() / 2.0
    observed_dev = abs(w_plus - mean)
    for signs in itertools.product((0.0, 1.0), repeat=n):
        w = float(np.dot(signs, ranks))
        total += 1
        if abs(w - mean) >= observed_dev - 1e-12:
            extreme += 1
    return extreme / total


def wilcoxon_signed_rank(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    exact_threshold: int = 12,
) -> WilcoxonResult:
    """Two-tailed Wilcoxon signed-rank test on paired samples.

    Args:
        sample_a, sample_b: paired measurements (e.g. per-seed F1 scores of
            a model in scenarios S1 and S4).
        exact_threshold: use the exact null distribution when the number of
            non-zero differences is at most this (2^n enumeration).

    Returns:
        :class:`WilcoxonResult` with statistic W+ and two-tailed p-value.
        When every pair is tied (no non-zero differences), the samples are
        indistinguishable and p-value 1.0 is returned.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    if len(a) == 0:
        raise ValueError("need at least one pair")
    if np.isnan(a).any() or np.isnan(b).any():
        # A NaN difference passes the != 0 filter below and poisons both
        # the statistic and the p-value -- refuse instead of corrupting.
        raise ValueError(
            "paired samples contain NaN; drop incomplete pairs first "
            "(ScenarioEvaluation.ab_test does this for failed runs)"
        )
    differences = a - b
    nonzero = differences[differences != 0.0]
    n = len(nonzero)
    if n == 0:
        return WilcoxonResult(statistic=0.0, p_value=1.0, n_effective=0)
    ranks = _signed_ranks(nonzero)
    w_plus = float(ranks[nonzero > 0].sum())
    if n <= exact_threshold:
        return WilcoxonResult(w_plus, _exact_p_value(w_plus, ranks), n)
    # Normal approximation with tie correction and continuity correction.
    mean = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction: subtract sum(t^3 - t)/48 over tie groups.
    _, counts = np.unique(np.abs(nonzero), return_counts=True)
    variance -= float(np.sum(counts**3 - counts)) / 48.0
    if variance <= 0:
        return WilcoxonResult(w_plus, 1.0, n)
    deviation = w_plus - mean
    # Continuity correction shrinks |deviation| by 0.5.
    corrected = abs(deviation) - 0.5
    corrected = max(corrected, 0.0)
    z = corrected / math.sqrt(variance)
    p_value = 2.0 * (1.0 - _standard_normal_cdf(z))
    return WilcoxonResult(w_plus, min(p_value, 1.0), n)


def _standard_normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
