"""From-scratch ML model pool (Table 2 of the REIN paper).

REIN evaluates cleaning strategies through the downstream performance of 12
classifiers, 11 regressors, 6 clustering algorithms, and 2 AutoML systems.
scikit-learn is not available in this environment, so every model here is a
faithful numpy reimplementation with the same algorithmic behaviour (and thus
the same sensitivity to dirty data) as the original.
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, ClustererMixin, RegressorMixin, clone
from repro.ml.boosting import (
    AdaBoostClassifier,
    AdaBoostRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)
from repro.ml.cluster import (
    AffinityPropagation,
    AgglomerativeClustering,
    Birch,
    GaussianMixture,
    KMeans,
    Optics,
)
from repro.ml.forest import IsolationForest, RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import (
    BayesianRidgeRegressor,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    RansacRegressor,
    RidgeClassifier,
    RidgeRegressor,
    SGDClassifier,
)
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.neighbors import KNNClassifier, KNNRegressor
from repro.ml.noise_aware import LabelSmoothingClassifier, PruneAndRetrainClassifier
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "AdaBoostClassifier",
    "AdaBoostRegressor",
    "AffinityPropagation",
    "AgglomerativeClustering",
    "BaseEstimator",
    "BayesianRidgeRegressor",
    "Birch",
    "ClassifierMixin",
    "ClustererMixin",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GaussianMixture",
    "GaussianNB",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "IsolationForest",
    "KMeans",
    "KNNClassifier",
    "KNNRegressor",
    "LabelSmoothingClassifier",
    "PruneAndRetrainClassifier",
    "LinearRegression",
    "LinearSVC",
    "LogisticRegression",
    "MLPClassifier",
    "MLPRegressor",
    "MultinomialNB",
    "Optics",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "RansacRegressor",
    "RidgeClassifier",
    "RidgeRegressor",
    "SGDClassifier",
    "clone",
]
