"""Frozen pre-vectorization reference kernels (equivalence oracles).

This module preserves the *original* scalar implementations of the hot
ML kernels exactly as they were before the vectorization pass:

- a CART builder whose ``_best_split`` re-argsorts every candidate
  feature at every node;
- per-row recursive tree prediction;
- naive O(n*m*d) pairwise squared distances by full broadcasting.

They exist for two reasons and must not be "improved":

1. the property suite proves the vectorized kernels in
   :mod:`repro.ml.tree` and :mod:`repro.ml.neighbors` produce *exactly*
   the same trees and predictions (and distances to 1e-12) as these;
2. the kernel microbenchmarks (``benchmarks/test_kernel_speed.py``)
   measure speedups against them, so the committed ``BENCH_kernels.json``
   numbers stay comparable PR over PR.

``tools/check_hot_loops.py`` forbids these patterns elsewhere under
``src/repro/ml/``; this file is the documented allowlist entry.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_arrays
from repro.ml.tree import _Node, _resolve_max_features


class _ReferenceTreeBuilder:
    """The original recursive CART builder (per-node argsort)."""

    def __init__(
        self,
        task: str,
        max_depth: Optional[int],
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: Union[str, int, None],
        rng: np.random.Generator,
        n_classes: int = 0,
    ) -> None:
        self.task = task
        self.max_depth = max_depth if max_depth is not None else 10**9
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.n_classes = n_classes

    def _leaf_value(self, targets: np.ndarray) -> np.ndarray:
        if self.task == "classification":
            counts = np.bincount(targets.astype(int), minlength=self.n_classes)
            return counts / max(counts.sum(), 1)
        return np.array([targets.mean() if len(targets) else 0.0])

    def _node_impurity(self, targets: np.ndarray) -> float:
        if self.task == "classification":
            counts = np.bincount(targets.astype(int), minlength=self.n_classes)
            p = counts / max(counts.sum(), 1)
            return float(1.0 - np.sum(p * p))
        return float(targets.var()) if len(targets) else 0.0

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray
    ) -> Optional[Tuple[int, float, float]]:
        """Return (feature, threshold, impurity_decrease) or None."""
        n_samples, n_features = features.shape
        k = _resolve_max_features(self.max_features, n_features)
        candidates = (
            np.arange(n_features)
            if k == n_features
            else self.rng.choice(n_features, size=k, replace=False)
        )
        parent_impurity = self._node_impurity(targets)
        best: Optional[Tuple[int, float, float]] = None
        min_leaf = self.min_samples_leaf
        for feature in candidates:
            order = np.argsort(features[:, feature], kind="stable")
            values = features[order, feature]
            sorted_targets = targets[order]
            boundaries = np.flatnonzero(values[1:] > values[:-1]) + 1
            if len(boundaries) == 0:
                continue
            valid = boundaries[
                (boundaries >= min_leaf) & (boundaries <= n_samples - min_leaf)
            ]
            if len(valid) == 0:
                continue
            if self.task == "classification":
                onehot = np.zeros((n_samples, self.n_classes))
                onehot[np.arange(n_samples), sorted_targets.astype(int)] = 1.0
                left_counts = np.cumsum(onehot, axis=0)
                total = left_counts[-1]
                left = left_counts[valid - 1]
                right = total - left
                n_left = valid.astype(np.float64)
                n_right = n_samples - n_left
                gini_left = 1.0 - np.sum((left / n_left[:, None]) ** 2, axis=1)
                gini_right = 1.0 - np.sum((right / n_right[:, None]) ** 2, axis=1)
                child = (n_left * gini_left + n_right * gini_right) / n_samples
            else:
                prefix = np.cumsum(sorted_targets, dtype=np.float64)
                prefix_sq = np.cumsum(sorted_targets**2, dtype=np.float64)
                n_left = valid.astype(np.float64)
                n_right = n_samples - n_left
                sum_left = prefix[valid - 1]
                sum_right = prefix[-1] - sum_left
                sq_left = prefix_sq[valid - 1]
                sq_right = prefix_sq[-1] - sq_left
                var_left = sq_left / n_left - (sum_left / n_left) ** 2
                var_right = sq_right / n_right - (sum_right / n_right) ** 2
                child = (n_left * var_left + n_right * var_right) / n_samples
            decrease = parent_impurity - child
            pos = int(np.argmax(decrease))
            if decrease[pos] > 1e-12:
                split_at = valid[pos]
                low, high = values[split_at - 1], values[split_at]
                threshold = 0.5 * (low + high)
                # Same degenerate-midpoint guard as the vectorized
                # builder (rounding to ``high`` / overflow to inf would
                # recurse forever on an unchanged node); applied to both
                # sides identically so trees stay bit-identical.
                if not (low <= threshold < high):
                    threshold = low
                if best is None or decrease[pos] > best[2]:
                    best = (int(feature), float(threshold), float(decrease[pos]))
        return best

    def build(
        self, features: np.ndarray, targets: np.ndarray, depth: int = 0
    ) -> _Node:
        node = _Node(prediction=self._leaf_value(targets))
        if (
            depth >= self.max_depth
            or len(targets) < self.min_samples_split
            or self._node_impurity(targets) < 1e-12
        ):
            return node
        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold, _ = split
        goes_left = features[:, feature] <= threshold
        node.feature, node.threshold = feature, threshold
        node.left = self.build(features[goes_left], targets[goes_left], depth + 1)
        node.right = self.build(features[~goes_left], targets[~goes_left], depth + 1)
        return node


def reference_predict_node(node: _Node, row: np.ndarray) -> np.ndarray:
    """The original per-row iterative descent."""
    while not node.is_leaf:
        node = node.left if row[node.feature] <= node.threshold else node.right
    return node.prediction


class ReferenceDecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """The original CART classifier: scalar build, per-row predict."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "ReferenceDecisionTreeClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        if sample_weight is not None:
            rng = np.random.default_rng(self.seed)
            probabilities = np.asarray(sample_weight, dtype=np.float64)
            probabilities = probabilities / probabilities.sum()
            idx = rng.choice(len(features), size=len(features), p=probabilities)
            features, encoded = features[idx], encoded[idx]
        builder = _ReferenceTreeBuilder(
            "classification",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.seed),
            n_classes=len(self.classes_),
        )
        self.root_ = builder.build(features, encoded)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("root_")
        features, _ = check_arrays(features)
        return np.vstack(
            [reference_predict_node(self.root_, row) for row in features]
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.predict_proba(features), axis=1))


class ReferenceDecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """The original CART regressor: scalar build, per-row predict."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None

    def fit(
        self, features: np.ndarray, targets: np.ndarray
    ) -> "ReferenceDecisionTreeRegressor":
        features, targets = check_arrays(features, targets)
        builder = _ReferenceTreeBuilder(
            "regression",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.seed),
        )
        self.root_ = builder.build(features, targets.astype(np.float64))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("root_")
        features, _ = check_arrays(features)
        return np.array(
            [reference_predict_node(self.root_, row)[0] for row in features]
        )


def reference_pairwise_sq_distances(
    queries: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Naive squared Euclidean distances by full (n, m, d) broadcasting."""
    deltas = queries[:, None, :] - reference[None, :, :]
    return np.sum(deltas * deltas, axis=2)
