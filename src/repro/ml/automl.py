"""AutoML systems: an Auto-Sklearn analogue and a TPOT analogue.

REIN evaluates two AutoML algorithms to see whether fully automated pipelines
can compensate for dirty or badly repaired data.  Both systems here search
jointly over preprocessing and model/hyperparameter choices drawn from the
:mod:`repro.ml.model_zoo` registry:

- :class:`AutoLearn` (Auto-Sklearn analogue): TPE-guided search over a
  portfolio of (preprocessor, model, hyperparameters) configurations with a
  holdout objective.
- :class:`TPotLite` (TPOT analogue): a small genetic algorithm that evolves
  pipeline genomes via mutation and crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.splits import train_test_split
from repro.ml.base import BaseEstimator, check_arrays
from repro.ml.model_zoo import CLASSIFICATION, REGRESSION, ModelSpec, specs_for_task


# ----------------------------------------------------------------------
# Preprocessing operators the pipelines can include
# ----------------------------------------------------------------------
class _IdentityOp:
    name = "identity"

    def fit(self, features: np.ndarray) -> "_IdentityOp":
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        return features


class _PCAOp:
    """Dimensionality reduction via truncated SVD on centred features."""

    name = "pca"

    def __init__(self, n_components: int = 5) -> None:
        self.n_components = n_components
        self._mean: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "_PCAOp":
        self._mean = features.mean(axis=0)
        centred = features - self._mean
        _, _, vt = np.linalg.svd(centred, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self._components = vt[:k]
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        return (features - self._mean) @ self._components.T


class _VarianceSelectOp:
    """Keep the top-k highest-variance features."""

    name = "variance_select"

    def __init__(self, k: int = 10) -> None:
        self.k = k
        self._keep: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "_VarianceSelectOp":
        variances = features.var(axis=0)
        k = min(self.k, features.shape[1])
        self._keep = np.argsort(variances)[::-1][:k]
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        return features[:, self._keep]


def _make_preprocessor(kind: str, rng: np.random.Generator, n_features: int):
    if kind == "identity":
        return _IdentityOp()
    if kind == "pca":
        return _PCAOp(n_components=int(rng.integers(2, max(3, n_features))))
    if kind == "variance_select":
        return _VarianceSelectOp(k=int(rng.integers(2, max(3, n_features + 1))))
    raise ValueError(f"unknown preprocessor {kind!r}")


_PREPROCESSORS = ("identity", "pca", "variance_select")


@dataclass
class PipelineGenome:
    """One candidate pipeline: preprocessor kind + model spec + params."""

    preprocessor: str
    spec: ModelSpec
    params: Dict[str, Any]


class _FittedPipeline:
    """A fitted (preprocessor, model) pair."""

    def __init__(self, preprocessor, model) -> None:
        self.preprocessor = preprocessor
        self.model = model

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.model.predict(self.preprocessor.transform(features))

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        return self.model.score(self.preprocessor.transform(features), targets)


class _AutoMLBase(BaseEstimator):
    """Shared holdout-evaluation machinery for both AutoML systems."""

    def __init__(self, task: str, time_budget: int, seed: int) -> None:
        if task not in (CLASSIFICATION, REGRESSION):
            raise ValueError("AutoML supports classification or regression")
        if time_budget < 1:
            raise ValueError("time_budget must be >= 1 evaluations")
        self.task = task
        self.time_budget = time_budget
        self.seed = seed
        self.best_pipeline_: Optional[_FittedPipeline] = None
        self.best_genome_: Optional[PipelineGenome] = None
        self.best_score_: float = -np.inf
        self.history_: List[Tuple[PipelineGenome, float]] = []

    def _random_genome(self, rng: np.random.Generator) -> PipelineGenome:
        specs = specs_for_task(self.task)
        spec = specs[int(rng.integers(len(specs)))]
        params = spec.space.sample(rng)
        preprocessor = _PREPROCESSORS[int(rng.integers(len(_PREPROCESSORS)))]
        return PipelineGenome(preprocessor, spec, params)

    def _evaluate(
        self,
        genome: PipelineGenome,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_valid: np.ndarray,
        y_valid: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[float, Optional[_FittedPipeline]]:
        try:
            preprocessor = _make_preprocessor(
                genome.preprocessor, rng, x_train.shape[1]
            ).fit(x_train)
            model = genome.spec.build(**genome.params)
            model.fit(preprocessor.transform(x_train), y_train)
            pipeline = _FittedPipeline(preprocessor, model)
            return pipeline.score(x_valid, y_valid), pipeline
        except (ValueError, np.linalg.LinAlgError, RuntimeError):
            return -np.inf, None

    def _record(self, genome: PipelineGenome, score: float, pipeline) -> None:
        self.history_.append((genome, score))
        if pipeline is not None and score > self.best_score_:
            self.best_score_ = score
            self.best_genome_ = genome
            self.best_pipeline_ = pipeline

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("best_pipeline_")
        features, _ = check_arrays(features)
        return self.best_pipeline_.predict(features)

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        self._require_fitted("best_pipeline_")
        return self.best_pipeline_.score(features, targets)


class AutoLearn(_AutoMLBase):
    """Auto-Sklearn analogue: portfolio + adaptive search with holdout.

    The first third of the budget samples random pipelines (the "portfolio"
    phase); the remainder mutates the best genome found so far, which mimics
    Auto-Sklearn's Bayesian-optimisation refinement.
    """

    def __init__(self, task: str = CLASSIFICATION, time_budget: int = 15, seed: int = 0):
        super().__init__(task, time_budget, seed)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "AutoLearn":
        features, targets = check_arrays(features, targets)
        rng = np.random.default_rng(self.seed)
        stratify = targets if self.task == CLASSIFICATION else None
        train_idx, valid_idx = train_test_split(
            len(features), 0.25, rng=rng, stratify=stratify
        )
        x_train, y_train = features[train_idx], targets[train_idx]
        x_valid, y_valid = features[valid_idx], targets[valid_idx]
        n_random = max(3, self.time_budget // 3)
        for step in range(self.time_budget):
            if step < n_random or self.best_genome_ is None:
                genome = self._random_genome(rng)
            else:
                genome = _mutate(self.best_genome_, rng, self.task)
            score, pipeline = self._evaluate(
                genome, x_train, y_train, x_valid, y_valid, rng
            )
            self._record(genome, score, pipeline)
        if self.best_pipeline_ is None:
            raise RuntimeError("AutoLearn found no working pipeline")
        return self


def _mutate(
    genome: PipelineGenome, rng: np.random.Generator, task: str
) -> PipelineGenome:
    """Return a perturbed copy of a pipeline genome."""
    choice = rng.uniform()
    if choice < 0.2:
        # Swap the preprocessor.
        preprocessor = _PREPROCESSORS[int(rng.integers(len(_PREPROCESSORS)))]
        return PipelineGenome(preprocessor, genome.spec, dict(genome.params))
    if choice < 0.4:
        # Swap the model entirely.
        specs = specs_for_task(task)
        spec = specs[int(rng.integers(len(specs)))]
        return PipelineGenome(genome.preprocessor, spec, spec.space.sample(rng))
    # Perturb the hyperparameters near the current values.
    params = genome.spec.space.sample_near(genome.params, rng)
    return PipelineGenome(genome.preprocessor, genome.spec, params)


def _crossover(
    a: PipelineGenome, b: PipelineGenome, rng: np.random.Generator
) -> PipelineGenome:
    """Combine two genomes: preprocessor from one, model from the other."""
    if rng.uniform() < 0.5:
        return PipelineGenome(a.preprocessor, b.spec, dict(b.params))
    return PipelineGenome(b.preprocessor, a.spec, dict(a.params))


class TPotLite(_AutoMLBase):
    """TPOT analogue: genetic programming over pipeline genomes.

    Maintains a small population, selects by holdout fitness, and produces
    offspring by crossover + mutation for a fixed number of generations.
    ``time_budget`` caps the total number of pipeline evaluations.
    """

    def __init__(
        self,
        task: str = CLASSIFICATION,
        population_size: int = 6,
        generations: int = 3,
        seed: int = 0,
    ):
        super().__init__(task, population_size * (generations + 1), seed)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        self.population_size = population_size
        self.generations = generations

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "TPotLite":
        features, targets = check_arrays(features, targets)
        rng = np.random.default_rng(self.seed)
        stratify = targets if self.task == CLASSIFICATION else None
        train_idx, valid_idx = train_test_split(
            len(features), 0.25, rng=rng, stratify=stratify
        )
        x_train, y_train = features[train_idx], targets[train_idx]
        x_valid, y_valid = features[valid_idx], targets[valid_idx]

        population = [
            self._random_genome(rng) for _ in range(self.population_size)
        ]
        scored: List[Tuple[PipelineGenome, float]] = []
        for genome in population:
            score, pipeline = self._evaluate(
                genome, x_train, y_train, x_valid, y_valid, rng
            )
            self._record(genome, score, pipeline)
            scored.append((genome, score))
        for _ in range(self.generations):
            scored.sort(key=lambda pair: pair[1], reverse=True)
            parents = [g for g, _ in scored[: max(2, self.population_size // 2)]]
            offspring: List[PipelineGenome] = []
            while len(offspring) < self.population_size:
                a = parents[int(rng.integers(len(parents)))]
                b = parents[int(rng.integers(len(parents)))]
                child = _crossover(a, b, rng)
                if rng.uniform() < 0.7:
                    child = _mutate(child, rng, self.task)
                offspring.append(child)
            scored = []
            for genome in offspring:
                score, pipeline = self._evaluate(
                    genome, x_train, y_train, x_valid, y_valid, rng
                )
                self._record(genome, score, pipeline)
                scored.append((genome, score))
        if self.best_pipeline_ is None:
            raise RuntimeError("TPotLite found no working pipeline")
        return self
