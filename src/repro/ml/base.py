"""Estimator protocol shared by every model in the pool.

Models follow the familiar fit/predict contract.  Constructor arguments are
hyperparameters; :func:`clone` rebuilds an unfitted copy from them, which the
tuning and AutoML layers rely on.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Optional, Tuple, TypeVar

import numpy as np

EstimatorT = TypeVar("EstimatorT", bound="BaseEstimator")


def check_arrays(
    features: np.ndarray, targets: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Validate and canonicalize a feature matrix (and optional targets)."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if np.isnan(features).any():
        raise ValueError("features contain NaN; encode/impute before fitting")
    if targets is not None:
        targets = np.asarray(targets)
        if targets.ndim != 1:
            raise ValueError("targets must be 1-D")
        if len(targets) != len(features):
            raise ValueError(
                f"{len(features)} rows but {len(targets)} targets"
            )
    return features, targets


class BaseEstimator:
    """Base class: hyperparameter introspection and cloning."""

    def get_params(self) -> Dict[str, Any]:
        """Return constructor hyperparameters by introspection."""
        signature = inspect.signature(type(self).__init__)
        params = {}
        for name in signature.parameters:
            if name in ("self", "args", "kwargs"):
                continue
            params[name] = getattr(self, name)
        return params

    def set_params(self: EstimatorT, **params: Any) -> EstimatorT:
        valid = set(self.get_params())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no hyperparameter {name!r}"
                )
            setattr(self, name, value)
        return self

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise RuntimeError(
                f"{type(self).__name__} used before fit()"
            )

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: EstimatorT) -> EstimatorT:
    """Return an unfitted copy with identical hyperparameters."""
    return type(estimator)(**estimator.get_params())


class ClassifierMixin:
    """Adds class bookkeeping and accuracy scoring to classifiers."""

    classes_: Optional[np.ndarray] = None

    def _encode_labels(self, targets: np.ndarray) -> np.ndarray:
        """Record classes_ and return labels as indices into it."""
        classes, encoded = np.unique(targets, return_inverse=True)
        self.classes_ = classes
        return encoded

    def _decode_labels(self, indices: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return self.classes_[indices]

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean accuracy."""
        predictions = self.predict(features)  # type: ignore[attr-defined]
        return float(np.mean(np.asarray(predictions) == np.asarray(targets)))


class RegressorMixin:
    """Adds R^2 scoring to regressors."""

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        predictions = np.asarray(self.predict(features))  # type: ignore[attr-defined]
        targets = np.asarray(targets, dtype=np.float64)
        residual = float(np.sum((targets - predictions) ** 2))
        total = float(np.sum((targets - targets.mean()) ** 2))
        if total == 0.0:
            return 0.0 if residual > 0 else 1.0
        return 1.0 - residual / total


class ClustererMixin:
    """Marker for clustering estimators (fit_predict interface)."""

    labels_: Optional[np.ndarray] = None

    def fit_predict(self, features: np.ndarray) -> np.ndarray:
        self.fit(features)  # type: ignore[attr-defined]
        assert self.labels_ is not None
        return self.labels_


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(values, dtype=np.float64)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_vals = np.exp(values[~positive])
    out[~positive] = exp_vals / (1.0 + exp_vals)
    return out


def add_intercept(features: np.ndarray) -> np.ndarray:
    """Append a constant-1 column."""
    return np.hstack([features, np.ones((len(features), 1))])
