"""Boosting ensembles: AdaBoost (SAMME / R2) and gradient boosting.

Gradient boosting with shrinkage and subsampling stands in for XGBoost in
Table 2 -- it is the same additive-trees-on-gradients algorithm, minus the
second-order and systems-level optimisations, so its sensitivity to dirty
data matches.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_arrays,
    sigmoid,
    softmax,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class AdaBoostClassifier(BaseEstimator, ClassifierMixin):
    """Multiclass AdaBoost (SAMME) over depth-1..k CART stumps."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 1,
        learning_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.seed = seed
        self.estimators_: Optional[List[Tuple[DecisionTreeClassifier, float]]] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "AdaBoostClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        n_samples = len(features)
        n_classes = len(self.classes_)
        weights = np.full(n_samples, 1.0 / n_samples)
        self.estimators_ = []
        for t in range(self.n_estimators):
            stump = DecisionTreeClassifier(
                max_depth=self.max_depth, seed=self.seed * 7919 + t
            )
            stump.fit(features, encoded, sample_weight=weights)
            predictions = stump.predict(features)
            wrong = predictions != encoded
            error = float(np.sum(weights[wrong]))
            if error >= 1.0 - 1.0 / n_classes:
                continue  # worse than chance: skip this round
            error = max(error, 1e-10)
            alpha = self.learning_rate * (
                np.log((1 - error) / error) + np.log(n_classes - 1)
            )
            self.estimators_.append((stump, alpha))
            weights = weights * np.exp(alpha * wrong)
            weights /= weights.sum()
            if error < 1e-9:
                break
        if not self.estimators_:
            fallback = DecisionTreeClassifier(max_depth=self.max_depth, seed=self.seed)
            fallback.fit(features, encoded)
            self.estimators_ = [(fallback, 1.0)]
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("estimators_")
        features, _ = check_arrays(features)
        n_classes = len(self.classes_)
        scores = np.zeros((len(features), n_classes))
        for stump, alpha in self.estimators_:
            predictions = stump.predict(features).astype(int)
            scores[np.arange(len(features)), predictions] += alpha
        return scores

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.decision_function(features), axis=1))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return softmax(self.decision_function(features))


class AdaBoostRegressor(BaseEstimator, RegressorMixin):
    """AdaBoost.R2 (Drucker) with linear loss and weighted-median output."""

    def __init__(
        self, n_estimators: int = 30, max_depth: int = 3, seed: int = 0
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.estimators_: Optional[List[Tuple[DecisionTreeRegressor, float]]] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "AdaBoostRegressor":
        features, targets = check_arrays(features, targets)
        targets = targets.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        n_samples = len(features)
        weights = np.full(n_samples, 1.0 / n_samples)
        self.estimators_ = []
        for t in range(self.n_estimators):
            idx = rng.choice(n_samples, size=n_samples, p=weights)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, seed=self.seed * 7919 + t
            )
            tree.fit(features[idx], targets[idx])
            errors = np.abs(tree.predict(features) - targets)
            max_error = errors.max()
            if max_error <= 1e-12:
                self.estimators_.append((tree, 1.0))
                break
            losses = errors / max_error
            avg_loss = float(np.sum(weights * losses))
            if avg_loss >= 0.5:
                if not self.estimators_:
                    self.estimators_.append((tree, 1e-3))
                break
            beta = avg_loss / (1 - avg_loss)
            self.estimators_.append((tree, np.log(1.0 / max(beta, 1e-10))))
            weights = weights * beta ** (1 - losses)
            weights /= weights.sum()
        if not self.estimators_:
            fallback = DecisionTreeRegressor(max_depth=self.max_depth, seed=self.seed)
            fallback.fit(features, targets)
            self.estimators_ = [(fallback, 1.0)]
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("estimators_")
        features, _ = check_arrays(features)
        all_predictions = np.vstack(
            [tree.predict(features) for tree, _ in self.estimators_]
        )
        alphas = np.array([alpha for _, alpha in self.estimators_])
        # Weighted median across estimators, per sample.
        order = np.argsort(all_predictions, axis=0)
        sorted_alpha = alphas[order]
        cum = np.cumsum(sorted_alpha, axis=0)
        half = 0.5 * alphas.sum()
        pick = np.argmax(cum >= half, axis=0)
        return all_predictions[order[pick, np.arange(features.shape[0])],
                               np.arange(features.shape[0])]


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Least-squares gradient boosting with shrinkage and row subsampling."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self.init_: float = 0.0
        self.trees_: Optional[List[DecisionTreeRegressor]] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        features, targets = check_arrays(features, targets)
        targets = targets.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        self.init_ = float(targets.mean())
        current = np.full(len(targets), self.init_)
        self.trees_ = []
        n_sub = max(2, int(self.subsample * len(features)))
        for t in range(self.n_estimators):
            residuals = targets - current
            idx = (
                np.arange(len(features))
                if self.subsample >= 1.0
                else rng.choice(len(features), size=n_sub, replace=False)
            )
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, seed=self.seed * 7919 + t
            )
            tree.fit(features[idx], residuals[idx])
            current += self.learning_rate * tree.predict(features)
            self.trees_.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        features, _ = check_arrays(features)
        out = np.full(len(features), self.init_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(features)
        return out


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Gradient boosting for classification.

    Binary problems use logistic loss; multiclass uses one-vs-rest logistic
    boosting (a K-output additive model on per-class residuals).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self.init_: Optional[np.ndarray] = None
        self.trees_: Optional[List[List[DecisionTreeRegressor]]] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        n_samples = len(features)
        onehot = np.zeros((n_samples, n_classes))
        onehot[np.arange(n_samples), encoded] = 1.0
        prior = onehot.mean(axis=0).clip(1e-6, 1 - 1e-6)
        self.init_ = np.log(prior / (1 - prior))
        logits = np.tile(self.init_, (n_samples, 1))
        self.trees_ = []
        n_sub = max(2, int(self.subsample * n_samples))
        for t in range(self.n_estimators):
            probabilities = sigmoid(logits)
            stage: List[DecisionTreeRegressor] = []
            idx = (
                np.arange(n_samples)
                if self.subsample >= 1.0
                else rng.choice(n_samples, size=n_sub, replace=False)
            )
            for k in range(n_classes):
                residual = onehot[:, k] - probabilities[:, k]
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    seed=self.seed * 7919 + t * n_classes + k,
                )
                tree.fit(features[idx], residual[idx])
                logits[:, k] += self.learning_rate * tree.predict(features)
                stage.append(tree)
            self.trees_.append(stage)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        features, _ = check_arrays(features)
        logits = np.tile(self.init_, (len(features), 1))
        for stage in self.trees_:
            for k, tree in enumerate(stage):
                logits[:, k] += self.learning_rate * tree.predict(features)
        return logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        probabilities = sigmoid(self.decision_function(features))
        totals = probabilities.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return probabilities / totals

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.decision_function(features), axis=1))
