"""Clustering algorithms: K-Means, GMM, affinity propagation, agglomerative,
OPTICS, and BIRCH (Table 2's unsupervised column)."""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.ml.base import BaseEstimator, ClustererMixin, check_arrays
from repro.ml.neighbors import _pairwise_sq_distances


class KMeans(BaseEstimator, ClustererMixin):
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(
        self,
        n_clusters: int = 3,
        max_iter: int = 100,
        n_init: int = 3,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.n_init = n_init
        self.tol = tol
        self.seed = seed
        self.centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf

    def _init_centers(
        self, features: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n_samples = len(features)
        centers = [features[rng.integers(n_samples)]]
        for _ in range(1, self.n_clusters):
            distances = np.min(
                _pairwise_sq_distances(features, np.vstack(centers)), axis=1
            )
            total = distances.sum()
            if total <= 0:
                centers.append(features[rng.integers(n_samples)])
                continue
            probabilities = distances / total
            centers.append(features[rng.choice(n_samples, p=probabilities)])
        return np.vstack(centers)

    def _single_run(
        self, features: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        centers = self._init_centers(features, rng)
        labels = np.zeros(len(features), dtype=np.int64)
        for _ in range(self.max_iter):
            distances = _pairwise_sq_distances(features, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = features[labels == k]
                if len(members):
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centers - centers)))
            centers = new_centers
            if shift < self.tol:
                break
        inertia = float(
            np.sum(np.min(_pairwise_sq_distances(features, centers), axis=1))
        )
        return centers, labels, inertia

    def fit(self, features: np.ndarray) -> "KMeans":
        features, _ = check_arrays(features)
        if len(features) < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        rng = np.random.default_rng(self.seed)
        best: Optional[Tuple[np.ndarray, np.ndarray, float]] = None
        for _ in range(self.n_init):
            run = self._single_run(features, rng)
            if best is None or run[2] < best[2]:
                best = run
        self.centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("centers_")
        features, _ = check_arrays(features)
        return np.argmin(_pairwise_sq_distances(features, self.centers_), axis=1)


class GaussianMixture(BaseEstimator, ClustererMixin):
    """Diagonal-covariance Gaussian mixture fit with EM."""

    def __init__(
        self,
        n_components: int = 3,
        max_iter: int = 100,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.seed = seed
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.log_likelihood_: float = -np.inf

    def _log_prob(self, features: np.ndarray) -> np.ndarray:
        """Per-sample, per-component weighted log density."""
        n_samples = len(features)
        log_probs = np.empty((n_samples, self.n_components))
        for k in range(self.n_components):
            var = self.variances_[k]
            diff = features - self.means_[k]
            log_probs[:, k] = (
                np.log(self.weights_[k] + 1e-300)
                - 0.5 * np.sum(np.log(2.0 * np.pi * var))
                - 0.5 * np.sum(diff**2 / var, axis=1)
            )
        return log_probs

    def fit(self, features: np.ndarray) -> "GaussianMixture":
        features, _ = check_arrays(features)
        if len(features) < self.n_components:
            raise ValueError("fewer samples than components")
        # Initialize from a cheap K-Means run.
        kmeans = KMeans(self.n_components, n_init=1, seed=self.seed).fit(features)
        n_features = features.shape[1]
        self.means_ = kmeans.centers_.copy()
        self.variances_ = np.empty((self.n_components, n_features))
        self.weights_ = np.empty(self.n_components)
        global_var = features.var(axis=0) + self.reg_covar
        for k in range(self.n_components):
            members = features[kmeans.labels_ == k]
            self.weights_[k] = max(len(members), 1) / len(features)
            self.variances_[k] = (
                members.var(axis=0) + self.reg_covar if len(members) > 1 else global_var
            )
        previous = -np.inf
        for _ in range(self.max_iter):
            log_probs = self._log_prob(features)
            log_norm = np.logaddexp.reduce(log_probs, axis=1)
            responsibilities = np.exp(log_probs - log_norm[:, None])
            likelihood = float(log_norm.mean())
            if abs(likelihood - previous) < self.tol:
                break
            previous = likelihood
            counts = responsibilities.sum(axis=0) + 1e-10
            self.weights_ = counts / len(features)
            self.means_ = (responsibilities.T @ features) / counts[:, None]
            for k in range(self.n_components):
                diff = features - self.means_[k]
                self.variances_[k] = (
                    responsibilities[:, k] @ (diff**2) / counts[k] + self.reg_covar
                )
        self.log_likelihood_ = previous
        self.labels_ = np.argmax(self._log_prob(features), axis=1)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("means_")
        features, _ = check_arrays(features)
        return np.argmax(self._log_prob(features), axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("means_")
        features, _ = check_arrays(features)
        log_probs = self._log_prob(features)
        log_norm = np.logaddexp.reduce(log_probs, axis=1)
        return np.exp(log_probs - log_norm[:, None])


class AffinityPropagation(BaseEstimator, ClustererMixin):
    """Frey & Dueck's message-passing exemplar clustering."""

    def __init__(
        self,
        damping: float = 0.7,
        max_iter: int = 200,
        convergence_iter: int = 15,
        preference: Optional[float] = None,
    ) -> None:
        if not 0.5 <= damping < 1.0:
            raise ValueError("damping must be in [0.5, 1)")
        self.damping = damping
        self.max_iter = max_iter
        self.convergence_iter = convergence_iter
        self.preference = preference
        self.labels_: Optional[np.ndarray] = None
        self.exemplars_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "AffinityPropagation":
        features, _ = check_arrays(features)
        n_samples = len(features)
        similarity = -_pairwise_sq_distances(features, features)
        preference = (
            self.preference
            if self.preference is not None
            else float(np.median(similarity))
        )
        np.fill_diagonal(similarity, preference)
        responsibility = np.zeros_like(similarity)
        availability = np.zeros_like(similarity)
        stable = 0
        previous_exemplars: Optional[np.ndarray] = None
        for _ in range(self.max_iter):
            # Responsibility update.
            combined = availability + similarity
            first_max = combined.max(axis=1)
            first_arg = combined.argmax(axis=1)
            combined[np.arange(n_samples), first_arg] = -np.inf
            second_max = combined.max(axis=1)
            new_resp = similarity - first_max[:, None]
            new_resp[np.arange(n_samples), first_arg] = (
                similarity[np.arange(n_samples), first_arg] - second_max
            )
            responsibility = (
                self.damping * responsibility + (1 - self.damping) * new_resp
            )
            # Availability update.
            clipped = np.maximum(responsibility, 0.0)
            np.fill_diagonal(clipped, np.diag(responsibility))
            column_sums = clipped.sum(axis=0)
            new_avail = np.minimum(0.0, column_sums[None, :] - clipped)
            diag = column_sums - np.diag(clipped)
            np.fill_diagonal(new_avail, diag)
            availability = (
                self.damping * availability + (1 - self.damping) * new_avail
            )
            exemplars = np.flatnonzero(
                np.diag(responsibility) + np.diag(availability) > 0
            )
            if previous_exemplars is not None and np.array_equal(
                exemplars, previous_exemplars
            ):
                stable += 1
                if stable >= self.convergence_iter:
                    break
            else:
                stable = 0
            previous_exemplars = exemplars
        if previous_exemplars is None or len(previous_exemplars) == 0:
            previous_exemplars = np.array([int(np.argmax(np.diag(similarity)))])
        self.exemplars_ = previous_exemplars
        assignment = np.argmax(similarity[:, previous_exemplars], axis=1)
        assignment[previous_exemplars] = np.arange(len(previous_exemplars))
        self.labels_ = assignment
        return self


class AgglomerativeClustering(BaseEstimator, ClustererMixin):
    """Bottom-up hierarchical clustering (average linkage by default).

    A straightforward O(n^2 log n) heap-based implementation using the
    Lance-Williams update, adequate for REIN's sampled clustering workloads.
    """

    def __init__(self, n_clusters: int = 3, linkage: str = "average") -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if linkage not in ("average", "single", "complete"):
            raise ValueError("linkage must be average/single/complete")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.labels_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "AgglomerativeClustering":
        features, _ = check_arrays(features)
        n_samples = len(features)
        if n_samples < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        distances = np.sqrt(_pairwise_sq_distances(features, features))
        active = {i: [i] for i in range(n_samples)}
        dist = {
            (i, j): float(distances[i, j])
            for i in range(n_samples)
            for j in range(i + 1, n_samples)
        }
        heap = [(d, i, j) for (i, j), d in dist.items()]
        heapq.heapify(heap)
        next_id = n_samples
        merged = {}
        while len(active) > self.n_clusters and heap:
            d, i, j = heapq.heappop(heap)
            if i not in active or j not in active:
                continue
            members = active.pop(i) + active.pop(j)
            size_i, size_j = len(merged.get(i, [i])), len(merged.get(j, [j]))
            new_id = next_id
            next_id += 1
            for k in list(active):
                d_ik = dist.pop(tuple(sorted((i, k))), None)
                d_jk = dist.pop(tuple(sorted((j, k))), None)
                if d_ik is None or d_jk is None:
                    continue
                if self.linkage == "single":
                    d_new = min(d_ik, d_jk)
                elif self.linkage == "complete":
                    d_new = max(d_ik, d_jk)
                else:
                    ni = len(active.get(i, [])) or size_i
                    nj = len(active.get(j, [])) or size_j
                    ni = max(ni, 1)
                    nj = max(nj, 1)
                    d_new = (ni * d_ik + nj * d_jk) / (ni + nj)
                key = tuple(sorted((new_id, k)))
                dist[key] = d_new
                heapq.heappush(heap, (d_new, key[0], key[1]))
            active[new_id] = members
            merged[new_id] = members
        labels = np.empty(n_samples, dtype=np.int64)
        for label, (_, members) in enumerate(sorted(active.items())):
            labels[members] = label
        self.labels_ = labels
        return self


class Optics(BaseEstimator, ClustererMixin):
    """OPTICS density-based ordering with DBSCAN-style cluster extraction.

    Computes core distances and reachability in the standard OPTICS order,
    then extracts clusters by thresholding reachability at ``eps`` (the
    common `cluster_method="dbscan"` extraction).  Label -1 marks noise.
    """

    def __init__(
        self, min_samples: int = 5, eps: Optional[float] = None
    ) -> None:
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.min_samples = min_samples
        self.eps = eps
        self.labels_: Optional[np.ndarray] = None
        self.reachability_: Optional[np.ndarray] = None
        self.ordering_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "Optics":
        features, _ = check_arrays(features)
        n_samples = len(features)
        distances = np.sqrt(_pairwise_sq_distances(features, features))
        k = min(self.min_samples, n_samples)
        core_distance = np.sort(distances, axis=1)[:, k - 1]
        reachability = np.full(n_samples, np.inf)
        processed = np.zeros(n_samples, dtype=bool)
        ordering: List[int] = []
        for start in range(n_samples):
            if processed[start]:
                continue
            seeds: List[Tuple[float, int]] = [(0.0, start)]
            while seeds:
                _, point = heapq.heappop(seeds)
                if processed[point]:
                    continue
                processed[point] = True
                ordering.append(point)
                new_reach = np.maximum(core_distance[point], distances[point])
                for neighbor in np.flatnonzero(~processed):
                    if new_reach[neighbor] < reachability[neighbor]:
                        reachability[neighbor] = new_reach[neighbor]
                        heapq.heappush(
                            seeds, (reachability[neighbor], int(neighbor))
                        )
        self.ordering_ = np.array(ordering)
        self.reachability_ = reachability
        eps = self.eps
        if eps is None:
            finite = reachability[np.isfinite(reachability)]
            eps = float(np.quantile(finite, 0.9)) if len(finite) else 1.0
        labels = np.full(n_samples, -1, dtype=np.int64)
        current = -1
        fresh_cluster = True
        for point in ordering:
            if reachability[point] > eps:
                if core_distance[point] <= eps:
                    current += 1
                    labels[point] = current
                    fresh_cluster = False
                else:
                    fresh_cluster = True
            else:
                if fresh_cluster:
                    current += 1
                    fresh_cluster = False
                labels[point] = current
        self.labels_ = labels
        return self


class _CFNode:
    """A clustering-feature entry: running count, linear sum, square sum."""

    __slots__ = ("count", "linear_sum", "square_sum")

    def __init__(self, row: np.ndarray) -> None:
        self.count = 1
        self.linear_sum = row.copy()
        self.square_sum = float(row @ row)

    @property
    def centroid(self) -> np.ndarray:
        return self.linear_sum / self.count

    @property
    def radius(self) -> float:
        centroid = self.centroid
        value = self.square_sum / self.count - float(centroid @ centroid)
        return float(np.sqrt(max(value, 0.0)))

    def absorb(self, row: np.ndarray) -> None:
        self.count += 1
        self.linear_sum += row
        self.square_sum += float(row @ row)


class Birch(BaseEstimator, ClustererMixin):
    """BIRCH: incremental CF-entry construction + global clustering.

    Streams rows into clustering-feature entries under a radius threshold,
    then clusters the entry centroids with agglomerative clustering and maps
    every row to its entry's global label -- the standard two-phase BIRCH.
    """

    def __init__(self, n_clusters: int = 3, threshold: float = 0.5) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.n_clusters = n_clusters
        self.threshold = threshold
        self.labels_: Optional[np.ndarray] = None
        self.subcluster_centers_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "Birch":
        features, _ = check_arrays(features)
        entries: List[_CFNode] = []
        assignment = np.empty(len(features), dtype=np.int64)
        for i, row in enumerate(features):
            best_idx, best_distance = -1, np.inf
            for j, entry in enumerate(entries):
                distance = float(np.linalg.norm(row - entry.centroid))
                if distance < best_distance:
                    best_idx, best_distance = j, distance
            if best_idx >= 0 and best_distance <= self.threshold:
                entries[best_idx].absorb(row)
                assignment[i] = best_idx
            else:
                entries.append(_CFNode(row))
                assignment[i] = len(entries) - 1
        centers = np.vstack([e.centroid for e in entries])
        self.subcluster_centers_ = centers
        if len(entries) <= self.n_clusters:
            self.labels_ = assignment
            return self
        global_clusterer = AgglomerativeClustering(self.n_clusters)
        entry_labels = global_clusterer.fit(centers).labels_
        self.labels_ = entry_labels[assignment]
        return self
