"""Tree ensembles: random forest (classifier/regressor) and isolation forest.

The isolation forest lives here rather than in :mod:`repro.detectors` because
it is a generic model; the IF outlier *detector* of Table 1 wraps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_arrays
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bagged CART trees with sqrt-feature subsampling and soft voting."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: Optional[List[DecisionTreeClassifier]] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        rng = np.random.default_rng(self.seed)
        n_samples = len(features)
        self.trees_ = []
        for t in range(self.n_estimators):
            idx = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=self.seed * 1000 + t,
            )
            tree.fit(features[idx], encoded[idx])
            self.trees_.append(tree)
        return self

    def _predict_proba_rows(self, features: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        votes = np.zeros((len(features), n_classes))
        for tree in self.trees_:
            proba = tree.predict_proba(features)
            # Per-tree class indexing follows the encoded labels it saw;
            # trees were trained on indices into self.classes_, so tree
            # classes_ are a subset of range(n_classes).
            for j, cls in enumerate(tree.classes_):
                votes[:, int(cls)] += proba[:, j]
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return votes / totals

    def predict_proba(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        self._require_fitted("trees_")
        features, _ = check_arrays(features)
        if block_rows is None:
            return self._predict_proba_rows(features)
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        n = len(features)
        out = np.empty((n, len(self.classes_)), dtype=np.float64)
        # Each row's votes are independent, so blocking bounds the
        # transient per-tree probability matrices at one block of rows
        # while leaving the output byte-identical.
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            out[start:stop] = self._predict_proba_rows(features[start:stop])
        return out

    def predict(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        return self._decode_labels(
            np.argmax(self.predict_proba(features, block_rows), axis=1)
        )


class RandomForestRegressor(BaseEstimator, RegressorMixin):
    """Bagged CART regression trees (mean aggregation)."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: Optional[List[DecisionTreeRegressor]] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        features, targets = check_arrays(features, targets)
        targets = targets.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        n_samples = len(features)
        self.trees_ = []
        for t in range(self.n_estimators):
            idx = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=self.seed * 1000 + t,
            )
            tree.fit(features[idx], targets[idx])
            self.trees_.append(tree)
        return self

    def _predict_mean_rows(self, features: np.ndarray) -> np.ndarray:
        # Sequential accumulation in tree order: each output element sees
        # the same addition order whatever the row-batch width, unlike
        # ``vstack(...).mean(axis=0)`` whose reduction order varies with
        # the inner axis length -- which would break blocked/unblocked
        # byte-identity at the last ulp.
        total = np.zeros(len(features), dtype=np.float64)
        for tree in self.trees_:
            total += tree.predict(features)
        return total / len(self.trees_)

    def predict(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        self._require_fitted("trees_")
        features, _ = check_arrays(features)
        if block_rows is None:
            return self._predict_mean_rows(features)
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        n = len(features)
        out = np.empty(n, dtype=np.float64)
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            out[start:stop] = self._predict_mean_rows(features[start:stop])
        return out


# ----------------------------------------------------------------------
# Isolation forest
# ----------------------------------------------------------------------
@dataclass
class _IsoNode:
    feature: int = -1
    threshold: float = 0.0
    size: int = 0
    left: Optional["_IsoNode"] = None
    right: Optional["_IsoNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _average_path_length(n: float) -> float:
    """Expected unsuccessful-search path length in a BST of n nodes (c(n))."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


def _build_iso_tree(
    features: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator
) -> _IsoNode:
    n_samples = len(features)
    if depth >= max_depth or n_samples <= 1:
        return _IsoNode(size=n_samples)
    # Pick a random feature with spread; give up after a few tries.
    for _ in range(5):
        feature = int(rng.integers(0, features.shape[1]))
        lo, hi = features[:, feature].min(), features[:, feature].max()
        if hi > lo:
            break
    else:
        return _IsoNode(size=n_samples)
    threshold = float(rng.uniform(lo, hi))
    goes_left = features[:, feature] <= threshold
    node = _IsoNode(feature=feature, threshold=threshold, size=n_samples)
    node.left = _build_iso_tree(features[goes_left], depth + 1, max_depth, rng)
    node.right = _build_iso_tree(features[~goes_left], depth + 1, max_depth, rng)
    return node


def _iso_path_length(node: _IsoNode, row: np.ndarray) -> float:
    depth = 0.0
    while not node.is_leaf:
        node = node.left if row[node.feature] <= node.threshold else node.right
        depth += 1.0
    return depth + _average_path_length(node.size)


def _flatten_iso_tree(root: _IsoNode):
    """Linearize an isolation tree for batched routing.

    Returns (feature, threshold, left, right, path_value) arrays where
    ``path_value[i]`` for a leaf is its depth plus ``c(size)`` -- the
    full per-row contribution -- so scoring a batch is just routing every
    row to its leaf and gathering.
    """
    feature: List[int] = []
    threshold: List[float] = []
    left: List[int] = []
    right: List[int] = []
    path_value: List[float] = []
    stack = [(root, 0)]
    order: List[_IsoNode] = []
    depths: List[int] = []
    indices = {id(root): 0}
    while stack:
        node, depth = stack.pop()
        order.append(node)
        depths.append(depth)
        if not node.is_leaf:
            for child in (node.right, node.left):
                indices[id(child)] = len(indices)
                stack.append((child, depth + 1))
    ranked = sorted(range(len(order)), key=lambda i: indices[id(order[i])])
    for i in ranked:
        node, depth = order[i], depths[i]
        if node.is_leaf:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            path_value.append(depth + _average_path_length(node.size))
        else:
            feature.append(node.feature)
            threshold.append(node.threshold)
            left.append(indices[id(node.left)])
            right.append(indices[id(node.right)])
            path_value.append(0.0)
    return (
        np.asarray(feature, dtype=np.int64),
        np.asarray(threshold, dtype=np.float64),
        np.asarray(left, dtype=np.int64),
        np.asarray(right, dtype=np.int64),
        np.asarray(path_value, dtype=np.float64),
    )


class IsolationForest(BaseEstimator):
    """Isolation forest anomaly detector (Liu & Zhou).

    Outliers isolate in fewer random splits, hence shorter average path
    lengths; anomaly scores follow the paper's ``2^(-E[h]/c(psi))`` formula.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self.seed = seed
        self.trees_: Optional[List[_IsoNode]] = None
        self._flat_trees_: Optional[list] = None
        self.subsample_size_: int = 0
        self.threshold_: float = 0.5

    def fit(self, features: np.ndarray) -> "IsolationForest":
        features, _ = check_arrays(features)
        if features.shape[1] == 0:
            raise ValueError("isolation forest needs at least one feature")
        rng = np.random.default_rng(self.seed)
        n_samples = len(features)
        psi = min(self.max_samples, n_samples)
        max_depth = int(np.ceil(np.log2(max(psi, 2))))
        self.subsample_size_ = psi
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = rng.choice(n_samples, size=psi, replace=False)
            self.trees_.append(_build_iso_tree(features[idx], 0, max_depth, rng))
        self._flat_trees_ = [_flatten_iso_tree(tree) for tree in self.trees_]
        scores = self.score_samples(features)
        self.threshold_ = float(
            np.quantile(scores, 1.0 - self.contamination)
        )
        return self

    def _score_rows(self, features: np.ndarray, c_norm: float) -> np.ndarray:
        n = len(features)
        total_path = np.zeros(n)
        for feature, threshold, left, right, path_value in self._flat_trees_:
            at = np.zeros(n, dtype=np.int64)
            active = np.flatnonzero(feature[at] >= 0)
            while active.size:
                nodes = at[active]
                goes_left = features[active, feature[nodes]] <= threshold[nodes]
                at[active] = np.where(goes_left, left[nodes], right[nodes])
                active = active[feature[at[active]] >= 0]
            total_path += path_value[at]
        mean_path = total_path / max(len(self._flat_trees_), 1)
        return 2.0 ** (-mean_path / c_norm)

    def score_samples(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        """Anomaly scores in (0, 1); higher means more anomalous."""
        self._require_fitted("trees_")
        features, _ = check_arrays(features)
        c_norm = _average_path_length(float(self.subsample_size_)) or 1.0
        if self._flat_trees_ is None:  # unpickled from an older snapshot
            self._flat_trees_ = [_flatten_iso_tree(tree) for tree in self.trees_]
        if block_rows is None:
            return self._score_rows(features, c_norm)
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        n = len(features)
        out = np.empty(n, dtype=np.float64)
        # Rows isolate independently, so scoring block-by-block bounds
        # the routing state per slice and stays byte-identical.
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            out[start:stop] = self._score_rows(features[start:stop], c_norm)
        return out

    def predict(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        """Return +1 for inliers, -1 for outliers (sklearn convention)."""
        scores = self.score_samples(features, block_rows=block_rows)
        return np.where(scores > self.threshold_, -1, 1)
