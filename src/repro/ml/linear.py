"""Linear models: regression, ridge, Bayesian ridge, RANSAC, logistic
regression, SGD classifier, linear SVC, and a ridge classifier.

These correspond to the Logit / Linear SVC / SGD / Ridge / Linear Regression /
BRidge / RANSAC rows of Table 2 in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    add_intercept,
    check_arrays,
    clone,
    softmax,
)


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via numpy lstsq."""

    def __init__(self) -> None:
        self.coef_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegression":
        features, targets = check_arrays(features, targets)
        design = add_intercept(features)
        self.coef_, *_ = np.linalg.lstsq(design, targets.astype(np.float64), rcond=None)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return add_intercept(features) @ self.coef_


class RidgeRegressor(BaseEstimator, RegressorMixin):
    """L2-regularized least squares (closed form)."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegressor":
        features, targets = check_arrays(features, targets)
        design = add_intercept(features)
        n_params = design.shape[1]
        penalty = self.alpha * np.eye(n_params)
        penalty[-1, -1] = 0.0  # do not penalize the intercept
        gram = design.T @ design + penalty
        self.coef_ = np.linalg.solve(gram, design.T @ targets.astype(np.float64))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return add_intercept(features) @ self.coef_


class BayesianRidgeRegressor(BaseEstimator, RegressorMixin):
    """Bayesian ridge regression with evidence-maximization updates.

    Iteratively re-estimates the noise precision ``alpha`` and weight
    precision ``lambda`` (MacKay's fixed-point updates), as in
    scikit-learn's BayesianRidge.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-4) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.alpha_: float = 1.0
        self.lambda_: float = 1.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "BayesianRidgeRegressor":
        features, targets = check_arrays(features, targets)
        targets = targets.astype(np.float64)
        design = add_intercept(features)
        n_samples, n_params = design.shape
        gram = design.T @ design
        xty = design.T @ targets
        eigenvalues = np.linalg.eigvalsh(gram)
        alpha, lam = 1.0, 1.0
        coef = np.zeros(n_params)
        for _ in range(self.max_iter):
            posterior = np.linalg.solve(alpha * gram + lam * np.eye(n_params), alpha * xty)
            gamma = float(np.sum(alpha * eigenvalues / (alpha * eigenvalues + lam)))
            residual = float(np.sum((targets - design @ posterior) ** 2))
            weight_norm = float(posterior @ posterior)
            new_lam = max(gamma, 1e-10) / max(weight_norm, 1e-10)
            new_alpha = max(n_samples - gamma, 1e-10) / max(residual, 1e-10)
            converged = (
                abs(new_lam - lam) < self.tol * max(lam, 1e-10)
                and abs(new_alpha - alpha) < self.tol * max(alpha, 1e-10)
            )
            alpha, lam, coef = new_alpha, new_lam, posterior
            if converged:
                break
        self.alpha_, self.lambda_, self.coef_ = alpha, lam, coef
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return add_intercept(features) @ self.coef_


class RansacRegressor(BaseEstimator, RegressorMixin):
    """RANSAC: robust regression by consensus over random minimal samples.

    Repeatedly fits the base regressor on a small random subset, counts
    inliers within ``residual_threshold`` (MAD-scaled by default), and keeps
    the model with the largest consensus set, refit on its inliers.
    """

    def __init__(
        self,
        base: Optional[RegressorMixin] = None,
        min_samples: int = 10,
        max_trials: int = 30,
        residual_threshold: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.base = base
        self.min_samples = min_samples
        self.max_trials = max_trials
        self.residual_threshold = residual_threshold
        self.seed = seed
        self.estimator_: Optional[RegressorMixin] = None
        self.inlier_mask_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RansacRegressor":
        features, targets = check_arrays(features, targets)
        targets = targets.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        base = self.base if self.base is not None else LinearRegression()
        n_samples = len(features)
        min_samples = min(max(self.min_samples, features.shape[1] + 1), n_samples)
        threshold = self.residual_threshold
        if threshold is None:
            median = np.median(targets)
            threshold = float(np.median(np.abs(targets - median))) or 1.0
        best_inliers: Optional[np.ndarray] = None
        best_count = -1
        for _ in range(self.max_trials):
            subset = rng.choice(n_samples, size=min_samples, replace=False)
            candidate = clone(base)  # type: ignore[type-var]
            try:
                candidate.fit(features[subset], targets[subset])
            except (np.linalg.LinAlgError, ValueError):
                continue
            residuals = np.abs(candidate.predict(features) - targets)
            inliers = residuals <= threshold
            count = int(inliers.sum())
            if count > best_count:
                best_count, best_inliers = count, inliers
        if best_inliers is None or best_count < min_samples:
            best_inliers = np.ones(n_samples, dtype=bool)
        final = clone(base)  # type: ignore[type-var]
        final.fit(features[best_inliers], targets[best_inliers])
        self.estimator_, self.inlier_mask_ = final, best_inliers
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("estimator_")
        return self.estimator_.predict(features)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression trained with full-batch gradient
    descent plus L2 regularization."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iter: int = 300,
        l2: float = 1e-3,
        tol: float = 1e-6,
    ) -> None:
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LogisticRegression":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        n_classes = len(self.classes_)
        design = add_intercept(features)
        n_samples, n_params = design.shape
        onehot = np.zeros((n_samples, n_classes))
        onehot[np.arange(n_samples), encoded] = 1.0
        weights = np.zeros((n_params, n_classes))
        previous_loss = np.inf
        for _ in range(self.max_iter):
            probabilities = softmax(design @ weights)
            gradient = design.T @ (probabilities - onehot) / n_samples
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
            loss = -float(
                np.mean(np.log(probabilities[np.arange(n_samples), encoded] + 1e-12))
            )
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.coef_ = weights
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return softmax(add_intercept(features) @ self.coef_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.predict_proba(features), axis=1))


class SGDClassifier(BaseEstimator, ClassifierMixin):
    """Linear classifier trained by stochastic gradient descent.

    Supports hinge (linear SVM) and log (logistic) losses with one-vs-rest
    multiclass handling, matching sklearn's ``SGDClassifier`` behaviour.
    """

    def __init__(
        self,
        loss: str = "hinge",
        learning_rate: float = 0.05,
        epochs: int = 20,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if loss not in ("hinge", "log"):
            raise ValueError("loss must be 'hinge' or 'log'")
        self.loss = loss
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None

    def _fit_binary(
        self,
        design: np.ndarray,
        signs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n_samples, n_params = design.shape
        weights = np.zeros(n_params)
        step = self.learning_rate
        for epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            for i in order:
                margin = signs[i] * (design[i] @ weights)
                if self.loss == "hinge":
                    grad = -signs[i] * design[i] if margin < 1 else 0.0
                else:
                    p = 1.0 / (1.0 + np.exp(np.clip(margin, -500, 500)))
                    grad = -signs[i] * p * design[i]
                weights -= step * (grad + self.l2 * weights)
            step = self.learning_rate / (1 + epoch)
        return weights

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SGDClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        design = add_intercept(features)
        rng = np.random.default_rng(self.seed)
        n_classes = len(self.classes_)
        if n_classes == 2:
            signs = np.where(encoded == 1, 1.0, -1.0)
            weights = self._fit_binary(design, signs, rng)
            self.coef_ = np.column_stack([-weights, weights])
        else:
            columns = []
            for k in range(n_classes):
                signs = np.where(encoded == k, 1.0, -1.0)
                columns.append(self._fit_binary(design, signs, rng))
            self.coef_ = np.column_stack(columns)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return add_intercept(features) @ self.coef_

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.decision_function(features), axis=1))


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear support vector classifier (hinge loss, batch Pegasos solver).

    One-vs-rest for multiclass, like sklearn's LinearSVC.  The Pegasos update
    (step size 1/(lambda*t) plus a projection onto the 1/sqrt(lambda) ball)
    gives reliable convergence without learning-rate tuning.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 500) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.coef_: Optional[np.ndarray] = None

    def _fit_binary(self, design: np.ndarray, signs: np.ndarray) -> np.ndarray:
        n_samples, n_params = design.shape
        lam = 1.0 / (self.C * n_samples)
        weights = np.zeros(n_params)
        radius = 1.0 / np.sqrt(lam)
        for t in range(1, self.max_iter + 1):
            margins = signs * (design @ weights)
            violating = margins < 1
            step = 1.0 / (lam * t)
            gradient = lam * weights
            if violating.any():
                gradient = gradient - (
                    design[violating].T @ signs[violating]
                ) / n_samples
            weights = weights - step * gradient
            norm = np.linalg.norm(weights)
            if norm > radius:
                weights *= radius / norm
        return weights

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearSVC":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        design = add_intercept(features)
        n_classes = len(self.classes_)
        if n_classes == 2:
            signs = np.where(encoded == 1, 1.0, -1.0)
            weights = self._fit_binary(design, signs)
            self.coef_ = np.column_stack([-weights, weights])
        else:
            columns = [
                self._fit_binary(design, np.where(encoded == k, 1.0, -1.0))
                for k in range(n_classes)
            ]
            self.coef_ = np.column_stack(columns)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return add_intercept(features) @ self.coef_

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.decision_function(features), axis=1))


class RidgeClassifier(BaseEstimator, ClassifierMixin):
    """Classification via ridge regression on one-hot targets.

    This mirrors sklearn's RidgeClassifier (the "Ridge" classifier row of
    Table 2): each class is regressed against +-1 and the argmax wins.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        design = add_intercept(features)
        n_classes = len(self.classes_)
        signs = -np.ones((len(design), n_classes))
        signs[np.arange(len(design)), encoded] = 1.0
        n_params = design.shape[1]
        penalty = self.alpha * np.eye(n_params)
        penalty[-1, -1] = 0.0
        gram = design.T @ design + penalty
        self.coef_ = np.linalg.solve(gram, design.T @ signs)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return add_intercept(features) @ self.coef_

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.decision_function(features), axis=1))
