"""Multi-layer perceptron classifier and regressor.

A compact feed-forward network (ReLU hidden layers, Adam optimizer,
mini-batch training) — the "MLP" row of Table 2 and the learning core of the
DataWig-analogue imputer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_arrays, softmax


class _AdamState:
    """Per-parameter Adam moment buffers."""

    def __init__(self, shapes: Sequence[Tuple[int, ...]]) -> None:
        self.m = [np.zeros(s) for s in shapes]
        self.v = [np.zeros(s) for s in shapes]
        self.t = 0

    def step(
        self,
        params: List[np.ndarray],
        grads: List[np.ndarray],
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.t += 1
        for i, (p, g) in enumerate(zip(params, grads)):
            self.m[i] = beta1 * self.m[i] + (1 - beta1) * g
            self.v[i] = beta2 * self.v[i] + (1 - beta2) * g * g
            m_hat = self.m[i] / (1 - beta1**self.t)
            v_hat = self.v[i] / (1 - beta2**self.t)
            p -= lr * m_hat / (np.sqrt(v_hat) + eps)


class _MLPCore:
    """Weights + forward/backward passes shared by both MLP heads."""

    def __init__(
        self,
        n_inputs: int,
        hidden: Sequence[int],
        n_outputs: int,
        rng: np.random.Generator,
    ) -> None:
        sizes = [n_inputs, *hidden, n_outputs]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / max(fan_in, 1))
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    def forward(self, inputs: np.ndarray) -> List[np.ndarray]:
        """Return activations per layer (last one is the raw output)."""
        activations = [inputs]
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = activations[-1] @ w + b
            if i < len(self.weights) - 1:
                z = np.maximum(z, 0.0)  # ReLU
            activations.append(z)
        return activations

    def backward(
        self, activations: List[np.ndarray], output_grad: np.ndarray, l2: float
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        weight_grads: List[np.ndarray] = [np.zeros_like(w) for w in self.weights]
        bias_grads: List[np.ndarray] = [np.zeros_like(b) for b in self.biases]
        delta = output_grad
        for i in reversed(range(len(self.weights))):
            weight_grads[i] = activations[i].T @ delta / len(delta) + l2 * self.weights[i]
            bias_grads[i] = delta.mean(axis=0)
            if i > 0:
                delta = (delta @ self.weights[i].T) * (activations[i] > 0)
        return weight_grads, bias_grads

    @property
    def params(self) -> List[np.ndarray]:
        return self.weights + self.biases


class _MLPBase(BaseEstimator):
    def __init__(
        self,
        hidden: Sequence[int] = (32,),
        learning_rate: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 64,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.hidden = tuple(hidden)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.core_: Optional[_MLPCore] = None

    def _train(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        n_outputs: int,
        output_grad_fn,
    ) -> None:
        rng = np.random.default_rng(self.seed)
        self.core_ = _MLPCore(features.shape[1], self.hidden, n_outputs, rng)
        adam = _AdamState([p.shape for p in self.core_.params])
        n_samples = len(features)
        batch = min(self.batch_size, n_samples)
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                activations = self.core_.forward(features[idx])
                grad = output_grad_fn(activations[-1], targets[idx])
                weight_grads, bias_grads = self.core_.backward(
                    activations, grad, self.l2
                )
                adam.step(
                    self.core_.params,
                    weight_grads + bias_grads,
                    self.learning_rate,
                )

    def _raw_output(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("core_")
        features, _ = check_arrays(features)
        return self.core_.forward(features)[-1]


class MLPClassifier(_MLPBase, ClassifierMixin):
    """Softmax-output MLP trained with cross-entropy."""

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        n_classes = len(self.classes_)
        onehot_all = np.zeros((len(encoded), n_classes))
        onehot_all[np.arange(len(encoded)), encoded] = 1.0

        def grad_fn(logits: np.ndarray, onehot: np.ndarray) -> np.ndarray:
            return softmax(logits) - onehot

        # _train indexes targets per batch; pass one-hot rows as "targets".
        self._train(features, onehot_all, n_classes, grad_fn)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return softmax(self._raw_output(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self._raw_output(features), axis=1))


class MLPRegressor(_MLPBase, RegressorMixin):
    """Linear-output MLP trained with squared error on standardized targets."""

    def __init__(
        self,
        hidden: Sequence[int] = (32,),
        learning_rate: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 64,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        super().__init__(hidden, learning_rate, epochs, batch_size, l2, seed)
        self._target_mean = 0.0
        self._target_std = 1.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        features, targets = check_arrays(features, targets)
        targets = targets.astype(np.float64)
        self._target_mean = float(targets.mean())
        self._target_std = float(targets.std()) or 1.0
        scaled = (targets - self._target_mean) / self._target_std

        def grad_fn(outputs: np.ndarray, batch_targets: np.ndarray) -> np.ndarray:
            return outputs - batch_targets[:, None]

        self._train(features, scaled, 1, grad_fn)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        raw = self._raw_output(features)[:, 0]
        return raw * self._target_std + self._target_mean
