"""Model registry: the named model pool of Table 2.

Each entry carries a factory, its hyperparameter search space (what REIN
hands to Optuna), and the task it serves.  The benchmark controller and the
AutoML systems both draw from this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.ml.boosting import (
    AdaBoostClassifier,
    AdaBoostRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)
from repro.ml.cluster import (
    AffinityPropagation,
    AgglomerativeClustering,
    Birch,
    GaussianMixture,
    KMeans,
    Optics,
)
from repro.ml.linear import (
    BayesianRidgeRegressor,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    RansacRegressor,
    RidgeClassifier,
    RidgeRegressor,
    SGDClassifier,
)
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.neighbors import KNNClassifier, KNNRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.tuning.search import Categorical, Float, Integer, SearchSpace

CLASSIFICATION = "classification"
REGRESSION = "regression"
CLUSTERING = "clustering"


@dataclass(frozen=True)
class ModelSpec:
    """A registered model: paper name, factory, search space, task."""

    name: str
    task: str
    factory: Callable[..., Any]
    space: SearchSpace

    def build(self, **params: Any) -> Any:
        """Instantiate the model, dropping placeholder dimensions."""
        real = {k: v for k, v in params.items() if not k.startswith("_")}
        return self.factory(**real)


def _spec(name: str, task: str, factory: Callable[..., Any], dims: Dict) -> ModelSpec:
    return ModelSpec(name, task, factory, SearchSpace(dims))


CLASSIFIERS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        _spec("Logit", CLASSIFICATION, LogisticRegression, {
            "learning_rate": Float(0.05, 1.0, log=True),
            "l2": Float(1e-5, 1e-1, log=True),
        }),
        _spec("DT", CLASSIFICATION, DecisionTreeClassifier, {
            "max_depth": Integer(2, 15),
            "min_samples_leaf": Integer(1, 10),
        }),
        _spec("RF", CLASSIFICATION, RandomForestClassifier, {
            "n_estimators": Integer(10, 50),
            "max_depth": Integer(3, 15),
        }),
        _spec("SVC", CLASSIFICATION, LinearSVC, {
            "C": Float(0.01, 10.0, log=True),
        }),
        _spec("SGD", CLASSIFICATION, SGDClassifier, {
            "loss": Categorical(["hinge", "log"]),
            "learning_rate": Float(0.005, 0.2, log=True),
            "l2": Float(1e-6, 1e-2, log=True),
        }),
        _spec("KNN", CLASSIFICATION, KNNClassifier, {
            "n_neighbors": Integer(1, 25),
        }),
        _spec("AdaB", CLASSIFICATION, AdaBoostClassifier, {
            "n_estimators": Integer(10, 50),
            "max_depth": Integer(1, 3),
        }),
        _spec("GNB", CLASSIFICATION, GaussianNB, {
            "var_smoothing": Float(1e-12, 1e-6, log=True),
        }),
        _spec("MultinomialNB", CLASSIFICATION, MultinomialNB, {
            "alpha": Float(0.01, 10.0, log=True),
        }),
        _spec("XGB", CLASSIFICATION, GradientBoostingClassifier, {
            "n_estimators": Integer(10, 60),
            "learning_rate": Float(0.03, 0.5, log=True),
            "max_depth": Integer(2, 6),
        }),
        _spec("Ridge", CLASSIFICATION, RidgeClassifier, {
            "alpha": Float(0.01, 100.0, log=True),
        }),
        _spec("MLP", CLASSIFICATION, MLPClassifier, {
            "hidden": Categorical([(16,), (32,), (32, 16)]),
            "learning_rate": Float(1e-4, 1e-2, log=True),
            "epochs": Integer(20, 80),
        }),
    ]
}

REGRESSORS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        _spec("LinReg", REGRESSION, LinearRegression, {
            # OLS has no hyperparameters; keep a dummy dimension so the
            # tuning interface stays uniform.
            "_dummy": Categorical([0]),
        }),
        _spec("BRidge", REGRESSION, BayesianRidgeRegressor, {
            "max_iter": Integer(50, 200),
        }),
        _spec("RANSAC", REGRESSION, RansacRegressor, {
            "max_trials": Integer(10, 60),
            "min_samples": Integer(5, 30),
        }),
        _spec("DT", REGRESSION, DecisionTreeRegressor, {
            "max_depth": Integer(2, 15),
            "min_samples_leaf": Integer(1, 10),
        }),
        _spec("RF", REGRESSION, RandomForestRegressor, {
            "n_estimators": Integer(10, 50),
            "max_depth": Integer(3, 15),
        }),
        _spec("KNN", REGRESSION, KNNRegressor, {
            "n_neighbors": Integer(1, 25),
        }),
        _spec("AdaB", REGRESSION, AdaBoostRegressor, {
            "n_estimators": Integer(10, 50),
            "max_depth": Integer(2, 5),
        }),
        _spec("XGB", REGRESSION, GradientBoostingRegressor, {
            "n_estimators": Integer(10, 80),
            "learning_rate": Float(0.03, 0.5, log=True),
            "max_depth": Integer(2, 6),
        }),
        _spec("Ridge", REGRESSION, RidgeRegressor, {
            "alpha": Float(0.01, 100.0, log=True),
        }),
        _spec("MLP", REGRESSION, MLPRegressor, {
            "hidden": Categorical([(16,), (32,), (32, 16)]),
            "learning_rate": Float(1e-4, 1e-2, log=True),
            "epochs": Integer(40, 200),
        }),
        # sklearn's SGDRegressor analogue: ridge fitted by closed form is
        # already covered; the paper's 11th regressor slot is SGD-free, we
        # include elastic behaviour through BRidge + Ridge.
        _spec("Lasso-like", REGRESSION, RidgeRegressor, {
            "alpha": Float(0.1, 1000.0, log=True),
        }),
    ]
}

CLUSTERERS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        _spec("KMeans", CLUSTERING, KMeans, {
            "n_clusters": Integer(2, 10),
        }),
        _spec("GMM", CLUSTERING, GaussianMixture, {
            "n_components": Integer(2, 10),
        }),
        _spec("AP", CLUSTERING, AffinityPropagation, {
            "damping": Float(0.5, 0.95),
        }),
        _spec("HC", CLUSTERING, AgglomerativeClustering, {
            "n_clusters": Integer(2, 10),
            "linkage": Categorical(["average", "single", "complete"]),
        }),
        _spec("OPTICS", CLUSTERING, Optics, {
            "min_samples": Integer(3, 15),
        }),
        _spec("BIRCH", CLUSTERING, Birch, {
            "n_clusters": Integer(2, 10),
            "threshold": Float(0.1, 2.0),
        }),
    ]
}


def specs_for_task(task: str) -> List[ModelSpec]:
    """All registered model specs for a task."""
    if task == CLASSIFICATION:
        return list(CLASSIFIERS.values())
    if task == REGRESSION:
        return list(REGRESSORS.values())
    if task == CLUSTERING:
        return list(CLUSTERERS.values())
    raise ValueError(f"unknown task {task!r}")


def get_spec(task: str, name: str) -> ModelSpec:
    """Look up one model spec by task and paper name."""
    registry = {
        CLASSIFICATION: CLASSIFIERS,
        REGRESSION: REGRESSORS,
        CLUSTERING: CLUSTERERS,
    }.get(task)
    if registry is None:
        raise ValueError(f"unknown task {task!r}")
    if name not in registry:
        raise KeyError(f"no {task} model named {name!r}")
    return registry[name]


def build_model(task: str, name: str, **overrides: Any) -> Any:
    """Instantiate a registered model with default or overridden params."""
    return get_spec(task, name).build(**overrides)
