"""Naive Bayes classifiers: Gaussian and Multinomial."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, check_arrays


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Gaussian naive Bayes with per-class diagonal covariance."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.theta_: Optional[np.ndarray] = None  # (n_classes, n_features)
        self.var_: Optional[np.ndarray] = None
        self.priors_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GaussianNB":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        n_classes = len(self.classes_)
        n_features = features.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.priors_ = np.zeros(n_classes)
        epsilon = self.var_smoothing * float(features.var(axis=0).max() or 1.0)
        for k in range(n_classes):
            members = features[encoded == k]
            self.priors_[k] = len(members) / len(features)
            if len(members):
                self.theta_[k] = members.mean(axis=0)
                self.var_[k] = members.var(axis=0) + epsilon
            else:
                self.var_[k] = epsilon
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("theta_")
        features, _ = check_arrays(features)
        n_classes = len(self.classes_)
        jll = np.empty((len(features), n_classes))
        for k in range(n_classes):
            prior = np.log(self.priors_[k] + 1e-12)
            log_pdf = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[k])
                + (features - self.theta_[k]) ** 2 / self.var_[k],
                axis=1,
            )
            jll[:, k] = prior + log_pdf
        return jll

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(features)
        jll -= jll.max(axis=1, keepdims=True)
        probabilities = np.exp(jll)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(
            np.argmax(self._joint_log_likelihood(features), axis=1)
        )


class MultinomialNB(BaseEstimator, ClassifierMixin):
    """Multinomial naive Bayes with Laplace smoothing.

    Expects non-negative features (counts / one-hot); negative inputs are
    shifted to zero per feature, which lets it run on standardized matrices
    the way REIN's pipeline feeds every model the same encoding.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.feature_log_prob_: Optional[np.ndarray] = None
        self.class_log_prior_: Optional[np.ndarray] = None
        self._shift: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MultinomialNB":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        self._shift = np.minimum(features.min(axis=0), 0.0)
        counts = features - self._shift
        n_classes = len(self.classes_)
        n_features = features.shape[1]
        class_counts = np.zeros(n_classes)
        feature_counts = np.zeros((n_classes, n_features))
        for k in range(n_classes):
            members = counts[encoded == k]
            class_counts[k] = len(members)
            feature_counts[k] = members.sum(axis=0)
        smoothed = feature_counts + self.alpha
        self.feature_log_prob_ = np.log(
            smoothed / smoothed.sum(axis=1, keepdims=True)
        )
        self.class_log_prior_ = np.log(
            (class_counts + 1e-12) / (class_counts.sum() + 1e-12)
        )
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("feature_log_prob_")
        features, _ = check_arrays(features)
        counts = np.maximum(features - self._shift, 0.0)
        return counts @ self.feature_log_prob_.T + self.class_log_prior_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(features)
        jll -= jll.max(axis=1, keepdims=True)
        probabilities = np.exp(jll)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(
            np.argmax(self._joint_log_likelihood(features), axis=1)
        )
