"""K-nearest-neighbour classifier and regressor (brute-force, blocked).

The distance kernel uses the expansion trick ``|q|^2 + |r|^2 - 2 q.r``
with reference norms precomputed once at fit and the cross term computed
as one GEMM per (query-chunk, reference-block) pair into a preallocated
output buffer -- blocking both sides bounds peak memory at
``chunk_size * block_size`` floats regardless of training-set size while
keeping every flop inside BLAS.  Voting and averaging are fully
vectorized (``np.add.at`` scatter; no per-row Python work).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_arrays


def _pairwise_sq_distances(
    queries: np.ndarray,
    reference: np.ndarray,
    r_norms: Optional[np.ndarray] = None,
    block_size: int = 2048,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Squared Euclidean distances via the blocked expansion trick.

    ``r_norms`` (precomputed ``sum(reference**2, axis=1)``) and ``out``
    (a reusable ``(len(queries), len(reference))`` buffer) let repeated
    callers avoid per-call allocations; both are optional.
    """
    if r_norms is None:
        r_norms = np.sum(reference**2, axis=1)
    q_norms = np.sum(queries**2, axis=1)[:, None]
    if out is None:
        out = np.empty((len(queries), len(reference)))
    for start in range(0, len(reference), block_size):
        stop = min(start + block_size, len(reference))
        block = out[:, start:stop]
        np.matmul(queries, reference[start:stop].T, out=block)
        block *= -2.0
        block += q_norms
        block += r_norms[None, start:stop]
    np.maximum(out, 0.0, out=out)
    return out


class _KNNBase(BaseEstimator):
    def __init__(self, n_neighbors: int = 5, chunk_size: int = 512) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.chunk_size = chunk_size
        self._features: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._ref_norms: Optional[np.ndarray] = None

    def _store(self, features: np.ndarray, targets: np.ndarray) -> None:
        self._features = features
        self._targets = targets
        self._ref_norms = np.sum(features**2, axis=1)

    def _neighbor_indices(
        self, queries: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        self._require_fitted("_features")
        queries, _ = check_arrays(queries)
        k = min(self.n_neighbors, len(self._features))
        if self._ref_norms is None:  # unpickled from an older snapshot
            self._ref_norms = np.sum(self._features**2, axis=1)
        # Queries already stream in fixed-size chunks; ``block_rows``
        # overrides the chunk width for one call so inference obeys the
        # suite-wide block size.  Each query row's neighbour set depends
        # only on that row, so any chunking yields identical output.
        chunk_size = self.chunk_size if block_rows is None else block_rows
        if chunk_size < 1:
            raise ValueError(f"block_rows must be >= 1, got {chunk_size}")
        out = np.empty((len(queries), k), dtype=np.int64)
        scratch = np.empty(
            (min(chunk_size, len(queries)), len(self._features))
        )
        for start in range(0, len(queries), chunk_size):
            chunk = queries[start : start + chunk_size]
            distances = _pairwise_sq_distances(
                chunk,
                self._features,
                r_norms=self._ref_norms,
                out=scratch[: len(chunk)],
            )
            out[start : start + len(chunk)] = np.argpartition(
                distances, kth=k - 1, axis=1
            )[:, :k]
        return out


class KNNClassifier(_KNNBase, ClassifierMixin):
    """Majority-vote KNN classification."""

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KNNClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        self._store(features, encoded)
        return self

    def predict_proba(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        neighbors = self._neighbor_indices(features, block_rows=block_rows)
        n_classes = len(self.classes_)
        n, k = neighbors.shape
        votes = np.zeros((n, n_classes))
        labels = self._targets[neighbors]
        np.add.at(votes, (np.repeat(np.arange(n), k), labels.ravel()), 1.0)
        # Every row holds exactly k votes, so this equals per-row
        # counts / counts.sum() from the scalar formulation.
        votes /= k
        return votes

    def predict(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        return self._decode_labels(
            np.argmax(self.predict_proba(features, block_rows), axis=1)
        )


class KNNRegressor(_KNNBase, RegressorMixin):
    """Mean-of-neighbours KNN regression."""

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KNNRegressor":
        features, targets = check_arrays(features, targets)
        self._store(features, targets.astype(np.float64))
        return self

    def predict(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        neighbors = self._neighbor_indices(features, block_rows=block_rows)
        return self._targets[neighbors].mean(axis=1)
