"""K-nearest-neighbour classifier and regressor (brute-force, chunked)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_arrays


def _pairwise_sq_distances(queries: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, computed with the expansion trick."""
    q_norms = np.sum(queries**2, axis=1)[:, None]
    r_norms = np.sum(reference**2, axis=1)[None, :]
    distances = q_norms + r_norms - 2.0 * queries @ reference.T
    np.maximum(distances, 0.0, out=distances)
    return distances


class _KNNBase(BaseEstimator):
    def __init__(self, n_neighbors: int = 5, chunk_size: int = 512) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.chunk_size = chunk_size
        self._features: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def _store(self, features: np.ndarray, targets: np.ndarray) -> None:
        self._features = features
        self._targets = targets

    def _neighbor_indices(self, queries: np.ndarray) -> np.ndarray:
        self._require_fitted("_features")
        queries, _ = check_arrays(queries)
        k = min(self.n_neighbors, len(self._features))
        out = np.empty((len(queries), k), dtype=np.int64)
        for start in range(0, len(queries), self.chunk_size):
            chunk = queries[start : start + self.chunk_size]
            distances = _pairwise_sq_distances(chunk, self._features)
            out[start : start + len(chunk)] = np.argpartition(
                distances, kth=k - 1, axis=1
            )[:, :k]
        return out


class KNNClassifier(_KNNBase, ClassifierMixin):
    """Majority-vote KNN classification."""

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KNNClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        self._store(features, encoded)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        neighbors = self._neighbor_indices(features)
        n_classes = len(self.classes_)
        votes = np.zeros((len(features), n_classes))
        for i, idx in enumerate(neighbors):
            counts = np.bincount(self._targets[idx], minlength=n_classes)
            votes[i] = counts / counts.sum()
        return votes

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.predict_proba(features), axis=1))


class KNNRegressor(_KNNBase, RegressorMixin):
    """Mean-of-neighbours KNN regression."""

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KNNRegressor":
        features, targets = check_arrays(features, targets)
        self._store(features, targets.astype(np.float64))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        neighbors = self._neighbor_indices(features)
        return self._targets[neighbors].mean(axis=1)
