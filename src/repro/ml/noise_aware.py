"""Noise-aware learning for class errors (actionable suggestion #3).

Section 6.5 recommends "advanced techniques to combat class errors, e.g.,
CleanLab, data valuation, label smoothing, and noise-aware learning".  This
module provides two such model-side defences that complement the data-side
CleanLab detector/repair:

- :class:`LabelSmoothingClassifier`: logistic regression trained against
  smoothed targets ``(1-eps)*onehot + eps/K`` -- over-confident fitting of
  (possibly wrong) hard labels is tempered;
- :class:`PruneAndRetrainClassifier`: confident-learning-style wrapper that
  estimates out-of-sample probabilities with k-fold models, prunes the
  samples whose given label looks confidently wrong, and retrains the base
  classifier on the kept subset.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dataset.splits import kfold_indices
from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    add_intercept,
    check_arrays,
    clone,
    softmax,
)
from repro.ml.linear import LogisticRegression


class LabelSmoothingClassifier(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression with label smoothing.

    Args:
        epsilon: smoothing mass spread uniformly over classes; 0 recovers
            plain logistic regression.
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        learning_rate: float = 0.5,
        max_iter: int = 300,
        l2: float = 1e-3,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.coef_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LabelSmoothingClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        n_classes = len(self.classes_)
        design = add_intercept(features)
        n_samples, n_params = design.shape
        smoothed = np.full(
            (n_samples, n_classes), self.epsilon / max(n_classes, 1)
        )
        smoothed[np.arange(n_samples), encoded] += 1.0 - self.epsilon
        weights = np.zeros((n_params, n_classes))
        for _ in range(self.max_iter):
            probabilities = softmax(design @ weights)
            gradient = design.T @ (probabilities - smoothed) / n_samples
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
        self.coef_ = weights
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        features, _ = check_arrays(features)
        return softmax(add_intercept(features) @ self.coef_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.predict_proba(features), axis=1))


class PruneAndRetrainClassifier(BaseEstimator, ClassifierMixin):
    """Confident-learning wrapper: prune likely-mislabeled samples, retrain.

    Args:
        base: the classifier to train on the pruned data (must expose
            ``predict_proba``); defaults to logistic regression.
        n_folds: folds for the out-of-sample probability estimates.
    """

    def __init__(self, base: Optional[object] = None, n_folds: int = 4, seed: int = 0):
        if n_folds < 2:
            raise ValueError("n_folds must be >= 2")
        self.base = base
        self.n_folds = n_folds
        self.seed = seed
        self.model_: Optional[object] = None
        self.kept_fraction_: float = 1.0

    def _base(self):
        return clone(self.base) if self.base is not None else LogisticRegression()

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "PruneAndRetrainClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        n_classes = len(self.classes_)
        n_samples = len(features)
        if n_samples < self.n_folds * 2 or n_classes < 2:
            self.model_ = self._base()
            self.model_.fit(features, encoded)
            return self
        probabilities = np.zeros((n_samples, n_classes))
        filled = np.zeros(n_samples, dtype=bool)
        for train_idx, test_idx in kfold_indices(
            n_samples, self.n_folds, seed=self.seed
        ):
            if len(np.unique(encoded[train_idx])) < 2:
                continue
            model = self._base()
            model.fit(features[train_idx], encoded[train_idx])
            fold = model.predict_proba(features[test_idx])
            for local, cls in enumerate(model.classes_):
                probabilities[test_idx, int(cls)] = fold[:, local]
            filled[test_idx] = True
        if not filled.all():
            self.model_ = self._base()
            self.model_.fit(features, encoded)
            return self
        thresholds = np.full(n_classes, 1.1)
        for cls in range(n_classes):
            members = encoded == cls
            if members.any():
                thresholds[cls] = probabilities[members, cls].mean()
        keep = np.ones(n_samples, dtype=bool)
        for i in range(n_samples):
            confident = [
                cls for cls in range(n_classes)
                if probabilities[i, cls] >= thresholds[cls]
            ]
            if confident:
                best = max(confident, key=lambda cls: probabilities[i, cls])
                if best != encoded[i]:
                    keep[i] = False
        # Never prune a class out of existence.
        for cls in range(n_classes):
            members = encoded == cls
            if members.any() and not (keep & members).any():
                keep |= members
        self.kept_fraction_ = float(keep.mean())
        self.model_ = self._base()
        self.model_.fit(features[keep], encoded[keep])
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("model_")
        features, _ = check_arrays(features)
        inner = self.model_.predict(features)
        return self._decode_labels(np.asarray(inner, dtype=int))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("model_")
        features, _ = check_arrays(features)
        inner = self.model_.predict_proba(features)
        n_classes = len(self.classes_)
        out = np.zeros((len(features), n_classes))
        for local, cls in enumerate(self.model_.classes_):
            out[:, int(cls)] = inner[:, local]
        return out
