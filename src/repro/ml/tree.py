"""CART decision trees (classifier and regressor).

Greedy binary trees with Gini impurity (classification) or variance
reduction (regression), supporting depth/leaf-size limits and per-split
feature subsampling so the forest and boosting ensembles can reuse them.

Hot-path layout (see ``benchmarks/test_kernel_speed.py`` for measured
speedups against the frozen scalar kernels in :mod:`repro.ml._reference`):

- **Fit** presorts every feature column *once* at the root
  (``np.argsort(features, axis=0)``) and threads the per-feature sorted
  row indices down the recursion, partitioning them stably at each
  split -- so ``_best_split`` never sorts again and scans each candidate
  feature with prefix-sum impurity updates in O(n) instead of
  O(n log n).  The class one-hot matrix is likewise built once and
  gathered per node.
- **Predict** flattens the fitted tree into parallel node arrays and
  routes all query rows down the tree iteratively, level by level, with
  no Python-level per-row work; a depth-0 tree short-circuits to a tiled
  leaf value.

Both paths are bit-for-bit equivalent to the reference implementation:
node statistics are computed over rows in ascending original order (the
exact order the scalar builder saw), and stable presorting partitions to
the same tie order as the per-node stable argsort it replaces.  The
property suite asserts this exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_arrays


@dataclass
class _Node:
    """A tree node; leaves carry a prediction, internal nodes a split."""

    prediction: np.ndarray  # class distribution or [mean]
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _resolve_max_features(max_features: Union[str, int, None], n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, (int, np.integer)):
        if max_features < 1:
            raise ValueError("max_features must be >= 1")
        return min(int(max_features), n_features)
    raise ValueError(f"unsupported max_features {max_features!r}")


class _TreeBuilder:
    """Shared recursive CART builder, parameterized by task.

    The builder holds the full feature/target arrays; each node is a set
    of row indices carried in two synchronized forms -- ``rows`` in
    ascending original order (for order-sensitive node statistics) and
    ``order``, an ``(n_features, n_node)`` matrix whose row ``j`` lists
    the node's rows sorted by feature ``j`` (stable, ties in ascending
    row order, inherited from the single root argsort).
    """

    def __init__(
        self,
        task: str,
        max_depth: Optional[int],
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: Union[str, int, None],
        rng: np.random.Generator,
        n_classes: int = 0,
    ) -> None:
        self.task = task
        self.max_depth = max_depth if max_depth is not None else 10**9
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.n_classes = n_classes
        self._features: Optional[np.ndarray] = None
        self._features_t: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._onehot: Optional[np.ndarray] = None
        self._in_left: Optional[np.ndarray] = None

    def _leaf_value(self, targets: np.ndarray) -> np.ndarray:
        if self.task == "classification":
            counts = np.bincount(targets.astype(int), minlength=self.n_classes)
            return counts / max(counts.sum(), 1)
        return np.array([targets.mean() if len(targets) else 0.0])

    def _node_impurity(self, targets: np.ndarray) -> float:
        if self.task == "classification":
            counts = np.bincount(targets.astype(int), minlength=self.n_classes)
            p = counts / max(counts.sum(), 1)
            return float(1.0 - np.sum(p * p))
        return float(targets.var()) if len(targets) else 0.0

    def _best_split(
        self, order: np.ndarray, parent_impurity: float
    ) -> Optional[Tuple[int, float, float]]:
        """Return (feature, threshold, impurity_decrease) or None.

        ``order`` supplies each candidate feature's rows presorted, so
        the whole node is scanned in one shot: every candidate feature's
        impurity curve is a prefix-sum row of a single (c, n[, k])
        gather -- no per-node sorting and no per-feature Python loop.

        Elementwise operations and the class-axis reductions are applied
        in the same order as the scalar reference, and ties resolve
        identically (first-best position within a feature, first-best
        feature across candidates), so the chosen split is exactly the
        reference's.
        """
        n_samples = order.shape[1]
        n_features = self._features.shape[1]
        k = _resolve_max_features(self.max_features, n_features)
        candidates = (
            np.arange(n_features)
            if k == n_features
            else self.rng.choice(n_features, size=k, replace=False)
        )
        min_leaf = self.min_samples_leaf
        # ``order`` is feature-major (d, n): each candidate's presorted
        # rows are a contiguous row, so every per-feature op below is a
        # cache-friendly sweep.
        sub_order = order if k == n_features else order[candidates]
        values = self._features_t[candidates[:, None], sub_order]  # (c, n)
        # Valid split positions p in 1..n-1 per feature: a boundary
        # between distinct adjacent values, with both children >= min_leaf.
        positions = np.arange(1, n_samples)
        valid = (
            (values[:, 1:] > values[:, :-1])
            & (positions >= min_leaf)
            & (positions <= n_samples - min_leaf)
        )
        # Flatten the valid (feature, position) pairs -- row-major
        # nonzero is already feature-major. The impurity curve is then
        # evaluated ONLY at candidate splits (one-hot columns contribute
        # a single entry each), and the first flat maximum is exactly
        # the reference's winner: earliest candidate feature, earliest
        # position within it.
        at_feature, at_position = np.nonzero(valid)
        if len(at_feature) == 0:
            return None
        n_left = (at_position + 1).astype(np.float64)
        n_right = n_samples - n_left
        if self.task == "classification":
            left_counts = np.cumsum(self._onehot[sub_order], axis=1)
            total = left_counts[:, -1]
            left = left_counts[at_feature, at_position]
            right = total[at_feature] - left
            gini_left = 1.0 - ((left / n_left[:, None]) ** 2).sum(axis=1)
            gini_right = 1.0 - ((right / n_right[:, None]) ** 2).sum(axis=1)
            child = (n_left * gini_left + n_right * gini_right) / n_samples
        else:
            sorted_targets = self._targets[sub_order]
            prefix = np.cumsum(sorted_targets, axis=1, dtype=np.float64)
            prefix_sq = np.cumsum(
                sorted_targets**2, axis=1, dtype=np.float64
            )
            sum_left = prefix[at_feature, at_position]
            sum_right = prefix[at_feature, -1] - sum_left
            sq_left = prefix_sq[at_feature, at_position]
            sq_right = prefix_sq[at_feature, -1] - sq_left
            var_left = sq_left / n_left - (sum_left / n_left) ** 2
            var_right = sq_right / n_right - (sum_right / n_right) ** 2
            child = (n_left * var_left + n_right * var_right) / n_samples
        decrease = parent_impurity - child
        flat = int(np.argmax(decrease))
        best_decrease = float(decrease[flat])
        if best_decrease <= 1e-12:
            return None
        winner = int(at_feature[flat])
        split_at = int(at_position[flat]) + 1
        winner_values = values[winner]
        low, high = winner_values[split_at - 1], winner_values[split_at]
        threshold = 0.5 * (low + high)
        # The midpoint can round up to ``high`` for adjacent subnormals
        # or overflow to +/-inf for huge magnitudes; either way ``<=``
        # routing would send every row to one child and the builder
        # would recurse on an unchanged node forever.  ``low`` itself is
        # always an exact separator.
        if not (low <= threshold < high):
            threshold = low
        return int(candidates[winner]), float(threshold), best_decrease

    def build(self, features: np.ndarray, targets: np.ndarray) -> _Node:
        """Build the tree: one presort at the root, then recurse."""
        n_samples = len(features)
        self._features = features
        # Feature-major copy: per-feature value gathers read contiguous
        # memory instead of stride-d columns.
        self._features_t = np.ascontiguousarray(features.T)
        self._targets = targets
        if self.task == "classification" and n_samples:
            onehot = np.zeros((n_samples, self.n_classes))
            onehot[np.arange(n_samples), targets.astype(int)] = 1.0
            self._onehot = onehot
        self._in_left = np.zeros(n_samples, dtype=bool)
        rows = np.arange(n_samples)
        # Presort once, then keep the order table feature-major (d, n)
        # so each feature's presorted rows stay contiguous in memory.
        order = (
            np.ascontiguousarray(
                np.argsort(features, axis=0, kind="stable").T
            )
            if n_samples
            else np.zeros((features.shape[1], 0), dtype=np.int64)
        )
        return self._build(rows, order, 0)

    def _build(self, rows: np.ndarray, order: np.ndarray, depth: int) -> _Node:
        node_targets = self._targets[rows]
        node = _Node(prediction=self._leaf_value(node_targets))
        if (
            depth >= self.max_depth
            or len(node_targets) < self.min_samples_split
        ):
            return node
        impurity = self._node_impurity(node_targets)
        if impurity < 1e-12:
            return node
        split = self._best_split(order, impurity)
        if split is None:
            return node
        feature, threshold, _ = split
        node.feature, node.threshold = feature, threshold
        goes_left = self._features_t[feature, rows] <= threshold
        left_rows, right_rows = rows[goes_left], rows[~goes_left]
        # Partition every feature's presorted rows by left-membership;
        # boolean gathers keep the stable tie order without re-sorting.
        self._in_left[left_rows] = True
        selected = self._in_left[order]
        n_features = order.shape[0]
        left_order = order[selected].reshape(n_features, len(left_rows))
        right_order = order[~selected].reshape(n_features, len(right_rows))
        self._in_left[left_rows] = False
        node.left = self._build(left_rows, left_order, depth + 1)
        node.right = self._build(right_rows, right_order, depth + 1)
        return node


def _predict_node(node: _Node, row: np.ndarray) -> np.ndarray:
    """Single-row descent (kept for spot checks; batch paths use
    :func:`_predict_batch`)."""
    while not node.is_leaf:
        node = node.left if row[node.feature] <= node.threshold else node.right
    return node.prediction


def _tree_depth(node: _Node) -> int:
    if node.is_leaf:
        return 0
    return 1 + max(_tree_depth(node.left), _tree_depth(node.right))


#: Flattened tree: (feature, threshold, left, right, predictions) arrays.
#: ``feature[i] == -1`` marks a leaf; predictions is (n_nodes, pred_dim).
FlatTree = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _flatten_tree(root: _Node) -> FlatTree:
    """Linearize a node tree into parallel arrays for batched routing."""
    feature: List[int] = []
    threshold: List[float] = []
    left: List[int] = []
    right: List[int] = []
    predictions: List[np.ndarray] = []
    stack = [root]
    indices = {id(root): 0}
    nodes: List[_Node] = []
    while stack:
        node = stack.pop()
        nodes.append(node)
        if not node.is_leaf:
            for child in (node.right, node.left):
                indices[id(child)] = len(indices)
                stack.append(child)
    # Re-walk in discovery order so child indices are already assigned.
    by_index = sorted(nodes, key=lambda n: indices[id(n)])
    for node in by_index:
        predictions.append(node.prediction)
        if node.is_leaf:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
        else:
            feature.append(node.feature)
            threshold.append(node.threshold)
            left.append(indices[id(node.left)])
            right.append(indices[id(node.right)])
    return (
        np.asarray(feature, dtype=np.int64),
        np.asarray(threshold, dtype=np.float64),
        np.asarray(left, dtype=np.int64),
        np.asarray(right, dtype=np.int64),
        np.vstack(predictions),
    )


def _predict_batch(
    flat: FlatTree,
    features: np.ndarray,
    block_rows: Optional[int] = None,
) -> np.ndarray:
    """Route all rows down a flattened tree; returns (n, pred_dim).

    With ``block_rows`` set, rows are routed in fixed-size slices into a
    preallocated output so peak transient memory is bounded by one block
    of routing state.  Each row's descent is independent, so the blocked
    result is byte-identical to the single-pass one.
    """
    if block_rows is not None:
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        predictions = flat[4]
        n = len(features)
        out = np.empty((n, predictions.shape[1]), dtype=predictions.dtype)
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            out[start:stop] = _route_rows(flat, features[start:stop])
        return out
    return _route_rows(flat, features)


def _route_rows(flat: FlatTree, features: np.ndarray) -> np.ndarray:
    """Single-pass iterative routing of a row batch down a flat tree.

    Routing decisions are the same ``row[feature] <= threshold``
    comparisons the per-row descent makes, so leaf assignment -- and
    therefore the output -- is exactly equal.
    """
    feature, threshold, left, right, predictions = flat
    n = len(features)
    if len(feature) == 1 or n == 0:
        # Depth-0 tree (or empty query): tile the root leaf value
        # instead of routing -- the leaf-only fast path.
        return np.repeat(predictions[:1], n, axis=0)
    at = np.zeros(n, dtype=np.int64)
    active = np.flatnonzero(feature[at] >= 0)
    while active.size:
        nodes = at[active]
        goes_left = (
            features[active, feature[nodes]] <= threshold[nodes]
        )
        at[active] = np.where(goes_left, left[nodes], right[nodes])
        active = active[feature[at[active]] >= 0]
    return predictions[at]


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classification tree (Gini impurity)."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None
        self._flat: Optional[FlatTree] = None

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "DecisionTreeClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        if sample_weight is not None:
            # Weighted fitting via resampling, adequate for AdaBoost's needs.
            rng = np.random.default_rng(self.seed)
            probabilities = np.asarray(sample_weight, dtype=np.float64)
            probabilities = probabilities / probabilities.sum()
            idx = rng.choice(len(features), size=len(features), p=probabilities)
            features, encoded = features[idx], encoded[idx]
        builder = _TreeBuilder(
            "classification",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.seed),
            n_classes=len(self.classes_),
        )
        self.root_ = builder.build(features, encoded)
        self._flat = _flatten_tree(self.root_)
        return self

    def predict_proba(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        self._require_fitted("root_")
        features, _ = check_arrays(features)
        if self._flat is None:  # e.g. unpickled from an older snapshot
            self._flat = _flatten_tree(self.root_)
        return _predict_batch(self._flat, features, block_rows=block_rows)

    def predict(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        return self._decode_labels(
            np.argmax(self.predict_proba(features, block_rows), axis=1)
        )

    @property
    def depth(self) -> int:
        self._require_fitted("root_")
        return _tree_depth(self.root_)


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regression tree (variance reduction)."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None
        self._flat: Optional[FlatTree] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features, targets = check_arrays(features, targets)
        builder = _TreeBuilder(
            "regression",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.seed),
        )
        self.root_ = builder.build(features, targets.astype(np.float64))
        self._flat = _flatten_tree(self.root_)
        return self

    def predict(
        self, features: np.ndarray, block_rows: Optional[int] = None
    ) -> np.ndarray:
        self._require_fitted("root_")
        features, _ = check_arrays(features)
        if self._flat is None:
            self._flat = _flatten_tree(self.root_)
        return _predict_batch(self._flat, features, block_rows=block_rows)[:, 0]

    @property
    def depth(self) -> int:
        self._require_fitted("root_")
        return _tree_depth(self.root_)
