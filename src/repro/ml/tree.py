"""CART decision trees (classifier and regressor).

Greedy binary trees with Gini impurity (classification) or variance
reduction (regression), supporting depth/leaf-size limits and per-split
feature subsampling so the forest and boosting ensembles can reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_arrays


@dataclass
class _Node:
    """A tree node; leaves carry a prediction, internal nodes a split."""

    prediction: np.ndarray  # class distribution or [mean]
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _resolve_max_features(max_features: Union[str, int, None], n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, (int, np.integer)):
        if max_features < 1:
            raise ValueError("max_features must be >= 1")
        return min(int(max_features), n_features)
    raise ValueError(f"unsupported max_features {max_features!r}")


class _TreeBuilder:
    """Shared recursive CART builder, parameterized by task."""

    def __init__(
        self,
        task: str,
        max_depth: Optional[int],
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: Union[str, int, None],
        rng: np.random.Generator,
        n_classes: int = 0,
    ) -> None:
        self.task = task
        self.max_depth = max_depth if max_depth is not None else 10**9
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.n_classes = n_classes

    def _leaf_value(self, targets: np.ndarray) -> np.ndarray:
        if self.task == "classification":
            counts = np.bincount(targets.astype(int), minlength=self.n_classes)
            return counts / max(counts.sum(), 1)
        return np.array([targets.mean() if len(targets) else 0.0])

    def _node_impurity(self, targets: np.ndarray) -> float:
        if self.task == "classification":
            counts = np.bincount(targets.astype(int), minlength=self.n_classes)
            p = counts / max(counts.sum(), 1)
            return float(1.0 - np.sum(p * p))
        return float(targets.var()) if len(targets) else 0.0

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray
    ) -> Optional[Tuple[int, float, float]]:
        """Return (feature, threshold, impurity_decrease) or None."""
        n_samples, n_features = features.shape
        k = _resolve_max_features(self.max_features, n_features)
        candidates = (
            np.arange(n_features)
            if k == n_features
            else self.rng.choice(n_features, size=k, replace=False)
        )
        parent_impurity = self._node_impurity(targets)
        best: Optional[Tuple[int, float, float]] = None
        min_leaf = self.min_samples_leaf
        for feature in candidates:
            order = np.argsort(features[:, feature], kind="stable")
            values = features[order, feature]
            sorted_targets = targets[order]
            # Split positions: boundaries between distinct adjacent values.
            boundaries = np.flatnonzero(values[1:] > values[:-1]) + 1
            if len(boundaries) == 0:
                continue
            valid = boundaries[
                (boundaries >= min_leaf) & (boundaries <= n_samples - min_leaf)
            ]
            if len(valid) == 0:
                continue
            if self.task == "classification":
                onehot = np.zeros((n_samples, self.n_classes))
                onehot[np.arange(n_samples), sorted_targets.astype(int)] = 1.0
                left_counts = np.cumsum(onehot, axis=0)
                total = left_counts[-1]
                left = left_counts[valid - 1]
                right = total - left
                n_left = valid.astype(np.float64)
                n_right = n_samples - n_left
                gini_left = 1.0 - np.sum(
                    (left / n_left[:, None]) ** 2, axis=1
                )
                gini_right = 1.0 - np.sum(
                    (right / n_right[:, None]) ** 2, axis=1
                )
                child = (n_left * gini_left + n_right * gini_right) / n_samples
            else:
                prefix = np.cumsum(sorted_targets, dtype=np.float64)
                prefix_sq = np.cumsum(sorted_targets**2, dtype=np.float64)
                n_left = valid.astype(np.float64)
                n_right = n_samples - n_left
                sum_left = prefix[valid - 1]
                sum_right = prefix[-1] - sum_left
                sq_left = prefix_sq[valid - 1]
                sq_right = prefix_sq[-1] - sq_left
                var_left = sq_left / n_left - (sum_left / n_left) ** 2
                var_right = sq_right / n_right - (sum_right / n_right) ** 2
                child = (n_left * var_left + n_right * var_right) / n_samples
            decrease = parent_impurity - child
            pos = int(np.argmax(decrease))
            if decrease[pos] > 1e-12:
                split_at = valid[pos]
                threshold = 0.5 * (values[split_at - 1] + values[split_at])
                if best is None or decrease[pos] > best[2]:
                    best = (int(feature), float(threshold), float(decrease[pos]))
        return best

    def build(
        self, features: np.ndarray, targets: np.ndarray, depth: int = 0
    ) -> _Node:
        node = _Node(prediction=self._leaf_value(targets))
        if (
            depth >= self.max_depth
            or len(targets) < self.min_samples_split
            or self._node_impurity(targets) < 1e-12
        ):
            return node
        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold, _ = split
        goes_left = features[:, feature] <= threshold
        node.feature, node.threshold = feature, threshold
        node.left = self.build(features[goes_left], targets[goes_left], depth + 1)
        node.right = self.build(features[~goes_left], targets[~goes_left], depth + 1)
        return node


def _predict_node(node: _Node, row: np.ndarray) -> np.ndarray:
    while not node.is_leaf:
        node = node.left if row[node.feature] <= node.threshold else node.right
    return node.prediction


def _tree_depth(node: _Node) -> int:
    if node.is_leaf:
        return 0
    return 1 + max(_tree_depth(node.left), _tree_depth(node.right))


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classification tree (Gini impurity)."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "DecisionTreeClassifier":
        features, targets = check_arrays(features, targets)
        encoded = self._encode_labels(targets)
        if sample_weight is not None:
            # Weighted fitting via resampling, adequate for AdaBoost's needs.
            rng = np.random.default_rng(self.seed)
            probabilities = np.asarray(sample_weight, dtype=np.float64)
            probabilities = probabilities / probabilities.sum()
            idx = rng.choice(len(features), size=len(features), p=probabilities)
            features, encoded = features[idx], encoded[idx]
        builder = _TreeBuilder(
            "classification",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.seed),
            n_classes=len(self.classes_),
        )
        self.root_ = builder.build(features, encoded)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("root_")
        features, _ = check_arrays(features)
        return np.vstack([_predict_node(self.root_, row) for row in features])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._decode_labels(np.argmax(self.predict_proba(features), axis=1))

    @property
    def depth(self) -> int:
        self._require_fitted("root_")
        return _tree_depth(self.root_)


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regression tree (variance reduction)."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features, targets = check_arrays(features, targets)
        builder = _TreeBuilder(
            "regression",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.seed),
        )
        self.root_ = builder.build(features, targets.astype(np.float64))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("root_")
        features, _ = check_arrays(features)
        return np.array([_predict_node(self.root_, row)[0] for row in features])

    @property
    def depth(self) -> int:
        self._require_fitted("root_")
        return _tree_depth(self.root_)
