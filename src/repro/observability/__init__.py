"""Observability: spans, metrics, and the structured run ledger.

REIN's headline artifacts are runtime panels and scalability curves, so
the benchmark engine must be able to answer "where did the time go,
which workers stalled, which circuit breakers tripped when" for any
suite run -- serial or sharded.  This package supplies that layer:

- **spans** (:mod:`repro.observability.trace`): hierarchical timed
  regions (suite -> stage -> unit -> attempt) on monotonic clocks, with
  worker-side buffers shipped back through the parallel engine's
  single-writer merge so the tree is complete for any worker count;
- **metrics** (:mod:`repro.observability.metrics`): a process-mergeable
  registry of counters, gauges, and fixed-bucket histograms (units
  executed, retries, quarantine trips, checkpoint commits, queue-wait vs
  compute time);
- **ledger** (:mod:`repro.observability.ledger`): an append-only,
  schema-versioned JSONL event log written alongside the SQLite
  checkpoint store -- run/stage/unit lifecycle, taxonomy failure
  records, breaker state changes, and the finished span tree;
- **export** (:mod:`repro.observability.export`): Chrome trace-event
  JSON (``repro trace``), plain-text summaries via
  :mod:`repro.reporting`, and ``BENCH_*.json`` perf snapshots.

The determinism contract: telemetry is an *observer*.  Instrumented code
asks :func:`current_telemetry` and does nothing when it is ``None``
(zero-cost-when-off), and nothing telemetry-shaped ever enters a unit
payload or the checkpoint store, so suite outputs are byte-identical
with telemetry enabled or disabled, serial or pooled
(``tests/test_observability.py`` proves it).
"""

from repro.observability.export import (
    BENCH_SCHEMA_VERSION,
    chrome_trace,
    chrome_trace_from_ledger,
    render_metrics_summary,
    runtimes_from_ledger,
    write_bench_snapshot,
)
from repro.observability.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    read_ledger,
)
from repro.observability.memory import (
    AllocationProbe,
    peak_rss_bytes,
    traced_allocation,
)
from repro.observability.metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MaxGauge,
    MetricsRegistry,
)
from repro.observability.telemetry import (
    Telemetry,
    current_telemetry,
    install_telemetry,
    telemetry_scope,
)
from repro.observability.trace import Span, Tracer

__all__ = [
    "AllocationProbe",
    "BENCH_SCHEMA_VERSION",
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "MaxGauge",
    "MetricsRegistry",
    "RunLedger",
    "Span",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "chrome_trace_from_ledger",
    "current_telemetry",
    "install_telemetry",
    "peak_rss_bytes",
    "read_ledger",
    "render_metrics_summary",
    "runtimes_from_ledger",
    "telemetry_scope",
    "traced_allocation",
    "write_bench_snapshot",
]
