"""Exporters: Chrome trace JSON, text summaries, and BENCH snapshots.

Three ways out of the observability layer:

- :func:`chrome_trace` / :func:`chrome_trace_from_ledger` render a span
  buffer (or a ledger's ``span`` events) as Chrome trace-event JSON --
  load the output in ``chrome://tracing`` or Perfetto to see the suite
  timeline, one lane per process;
- :func:`render_metrics_summary` and :func:`runtimes_from_ledger` feed
  the plain-text reporting layer (:mod:`repro.reporting`);
- :func:`write_bench_snapshot` emits the machine-readable ``BENCH_*.json``
  perf artifacts that track the repo's performance trajectory PR over PR.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.observability.ledger import SPAN, UNIT_FINALIZED, read_ledger
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Span
from repro.reporting import render_table

#: Schema version of the BENCH_*.json perf snapshots.
BENCH_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(span_payloads: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Render span payloads as a Chrome trace-event JSON object.

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond timestamps; each recording process (the driver plus each
    pool worker) gets its own ``tid`` lane, assigned deterministically by
    sorted worker label.  Spans still open when the buffer was exported
    are emitted with zero duration and ``"open": true`` in ``args``.
    """
    workers = sorted(
        {str(p.get("worker", "")) for p in span_payloads} - {""}
    )
    lanes = {"": 0}
    lanes.update({worker: i + 1 for i, worker in enumerate(workers)})
    events: List[Dict[str, Any]] = []
    for payload in span_payloads:
        span = Span.from_payload(dict(payload))
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.open:
            args["open"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": 0.0 if span.open else span.duration_seconds * 1e6,
                "pid": 0,
                "tid": lanes[str(span.worker)],
                "args": args,
            }
        )
    thread_names = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": label or "driver"},
        }
        for label, tid in sorted(lanes.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": thread_names + events, "displayTimeUnit": "ms"}


def chrome_trace_from_ledger(path: Union[str, Path]) -> Dict[str, Any]:
    """Chrome trace built from a ledger's ``span`` events."""
    payloads = [record["span"] for record in read_ledger(path, event=SPAN)]
    return chrome_trace(payloads)


# ----------------------------------------------------------------------
# Text summaries (repro.reporting)
# ----------------------------------------------------------------------
def render_metrics_summary(
    metrics: MetricsRegistry, title: str = "telemetry"
) -> str:
    """Counters and histogram aggregates as aligned text tables."""
    blocks: List[str] = []
    counter_rows = metrics.counter_rows()
    if counter_rows:
        blocks.append(
            render_table(
                ["counter", "value"], counter_rows, title=f"{title}: counters"
            )
        )
    max_gauge_rows = metrics.max_gauge_rows()
    if max_gauge_rows:
        blocks.append(
            render_table(
                ["max_gauge", "peak"],
                max_gauge_rows,
                title=f"{title}: max gauges",
            )
        )
    histogram_rows = metrics.histogram_rows()
    if histogram_rows:
        blocks.append(
            render_table(
                ["histogram", "count", "total_s", "mean_s"],
                histogram_rows,
                title=f"{title}: histograms",
            )
        )
    if not blocks:
        return f"{title}: no metrics recorded"
    return "\n\n".join(blocks)


def runtimes_from_ledger(path: Union[str, Path]) -> Dict[str, float]:
    """Total per-method runtime from ``unit_finalized`` events.

    The feed for Figure-2-style runtime panels: every finalized unit
    contributes its honest elapsed seconds (failed units included -- a
    tool that burned five minutes before crashing burned them) keyed by
    its circuit-breaker method name.
    """
    totals: Dict[str, float] = {}
    for record in read_ledger(path, event=UNIT_FINALIZED):
        method = record.get("method") or "?"
        runtime = record.get("runtime_seconds")
        if runtime is None:
            continue
        totals[method] = totals.get(method, 0.0) + float(runtime)
    return totals


# ----------------------------------------------------------------------
# BENCH_*.json perf snapshots
# ----------------------------------------------------------------------
def write_bench_snapshot(
    path: Union[str, Path],
    name: str,
    numbers: Mapping[str, Any],
    context: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Write one machine-readable perf snapshot.

    ``numbers`` are the measured quantities (wall-clock, speedup, ...);
    ``context`` records the configuration that produced them (workers,
    unit counts) so later PRs compare like with like.  The file is
    standard JSON, sorted keys, one snapshot per file.
    """
    snapshot: Dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": name,
        "numbers": dict(numbers),
        "context": dict(context or {}),
    }
    with open(str(path), "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, sort_keys=True, indent=2, allow_nan=False)
        fh.write("\n")
    return snapshot
