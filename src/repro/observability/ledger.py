"""The run ledger: an append-only, schema-versioned JSONL event log.

Every structured thing that happens during a suite run -- run started /
finished, stage boundaries, unit finalizations, failure records from the
resilience taxonomy, circuit-breaker state changes, checkpoint commits,
and the finished span tree -- lands here as one JSON object per line.
The ledger is written *only* by the driver process (the same
single-writer discipline the checkpoint store uses), is strictly
append-only (resumed runs append a new ``run_started`` after the old
events), and every event carries the schema version so future readers
can refuse files they do not understand instead of misparsing them.

Wall-clock timestamps (``wall``) are ISO-8601 UTC and exist purely for
humans correlating a run with the outside world; every duration in an
event comes from monotonic clocks upstream.  NaN scores are encoded as
``null`` (the checkpoint store's convention) so each line is standard
JSON.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.repository.store import sanitize_payload

#: Bump when an event's shape changes incompatibly.  Readers accept
#: exactly this version and raise otherwise.
LEDGER_SCHEMA_VERSION = 1

# Event types emitted by the suite (documented here as the schema's
# vocabulary; the ledger accepts any event string).
RUN_STARTED = "run_started"
RUN_FINISHED = "run_finished"
STAGE_STARTED = "stage_started"
STAGE_FINISHED = "stage_finished"
UNIT_FINALIZED = "unit_finalized"
FAILURE = "failure"
BREAKER_OPEN = "breaker_open"
CHECKPOINT_COMMIT = "checkpoint_commit"
SPAN = "span"
METRICS = "metrics"


class RunLedger:
    """Append-only JSONL writer for one run's event stream.

    Events are flushed line by line so a killed run leaves a readable
    prefix; the file handle is opened in append mode so resumed runs
    extend the history instead of rewriting it.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._seq = 0

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record as written."""
        if self._fh is None:
            raise ValueError("ledger is closed")
        record: Dict[str, Any] = {
            "schema": LEDGER_SCHEMA_VERSION,
            "seq": self._seq,
            "event": event,
            "wall": datetime.now(timezone.utc).isoformat(
                timespec="microseconds"
            ),
        }
        record.update(sanitize_payload(fields))
        self._fh.write(
            json.dumps(record, sort_keys=True, allow_nan=False) + "\n"
        )
        self._fh.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_ledger(
    path: Union[str, Path], event: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Parse a ledger file, optionally filtered to one event type.

    Raises :class:`ValueError` for lines whose schema version this
    reader does not understand -- refusing is safer than misparsing a
    future format -- and for lines that are not JSON objects.
    """
    events: List[Dict[str, Any]] = []
    with open(str(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: ledger lines must be JSON objects"
                )
            version = record.get("schema")
            if version != LEDGER_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{lineno}: unsupported ledger schema "
                    f"{version!r} (this reader understands "
                    f"{LEDGER_SCHEMA_VERSION})"
                )
            if event is None or record.get("event") == event:
                events.append(record)
    return events
