"""Peak-memory readings for the scalability story (Fig 3d-e).

Two complementary probes:

- :func:`peak_rss_bytes` -- the OS-reported resident-set high-water
  mark for the whole process (``ru_maxrss``).  Cheap and always-on, but
  *process-monotone*: it never decreases, so within one process a later
  sweep point inherits the peak of everything before it.  Good for "did
  this run ever exceed X"; useless for comparing sweep points.
- :func:`traced_allocation` -- a ``tracemalloc`` bracket measuring the
  peak *Python-allocated* bytes inside a ``with`` block, reset at
  entry.  This is what the scale benchmark uses to compare blocked vs
  unblocked inference at different row counts: each measurement starts
  from a clean peak, so sweep points are independent.

Both feed :meth:`Telemetry.gauge_max` / the ``max_gauges`` section of a
metrics snapshot, which merges by maximum so the recorded peak is
completion-order independent across workers.
"""

from __future__ import annotations

import sys
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


def peak_rss_bytes() -> float:
    """Process-lifetime peak resident set size in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to bytes.  Returns 0.0 where the ``resource`` module is missing
    (non-POSIX platforms) so callers can record it unconditionally.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return float(peak)
    return float(peak) * 1024.0


@dataclass
class AllocationProbe:
    """Mutable result handle yielded by :func:`traced_allocation`.

    ``peak_bytes`` is populated when the ``with`` block exits; reading
    it earlier gives the running peak so far.
    """

    peak_bytes: float = 0.0

    def sample(self) -> float:
        """Running peak inside the block (also updates ``peak_bytes``)."""
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = max(self.peak_bytes, float(peak))
        return self.peak_bytes


@contextmanager
def traced_allocation() -> Iterator[AllocationProbe]:
    """Measure peak Python allocation inside the block.

    Starts tracemalloc if it is not already running (and stops it again
    on exit in that case); when a caller already traces, only the peak
    counter is reset so nested brackets stay independent without
    tearing down the outer trace.
    """
    probe = AllocationProbe()
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    try:
        yield probe
    finally:
        probe.sample()
        if started_here:
            tracemalloc.stop()
