"""Process-mergeable counters, gauges, and fixed-bucket histograms.

The registry is the numeric side of the observability layer: counters
for discrete suite events (units executed, retries spent, quarantine
trips, checkpoint commits), gauges for point-in-time readings, and
histograms with *fixed* bucket boundaries for durations (queue-wait vs
compute time).  Fixed buckets are what make the registry mergeable:
worker processes ship :meth:`MetricsRegistry.snapshot` dicts back with
their unit results and the driver folds them in with
:meth:`MetricsRegistry.merge` -- addition for counters and bucket
counts, last-write for gauges, maximum for max-gauges (high-water
marks like peak memory) -- so the merged totals are independent of
completion order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram boundaries for durations in seconds.  Sub-ms to
#: minutes covers everything from a no-op detector to a hung tool hitting
#: its deadline; values above the last boundary land in the overflow
#: bucket.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


class Counter:
    """A monotonically increasing integer."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time float reading (last write wins on merge)."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class MaxGauge:
    """A high-water-mark float reading (maximum wins on merge).

    Peak-memory readings need this: a last-write gauge would let a
    worker that finished *later* with a *smaller* peak overwrite the
    true high-water mark, making the merged value depend on completion
    order.  Max-merge is commutative and idempotent, so the merged peak
    is identical for any executor and any completion order.
    """

    def __init__(self) -> None:
        self.value = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-boundary histogram: counts per bucket plus sum and count.

    ``boundaries`` are the inclusive upper edges of each bucket; one
    extra overflow bucket catches everything above the last edge, so
    ``len(counts) == len(boundaries) + 1``.
    """

    def __init__(self, boundaries: Sequence[float] = DURATION_BUCKETS) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                "histogram boundaries must be non-empty, unique, ascending"
            )
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += float(value)
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics, created on first use, snapshot/merge round-trippable."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._max_gauges: Dict[str, MaxGauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Access (create-on-demand)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def max_gauge(self, name: str) -> MaxGauge:
        if name not in self._max_gauges:
            self._max_gauges[name] = MaxGauge()
        return self._max_gauges[name]

    def histogram(
        self, name: str, boundaries: Sequence[float] = DURATION_BUCKETS
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            existing = Histogram(boundaries)
            self._histograms[name] = existing
        elif existing.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} already registered with different "
                f"boundaries {existing.boundaries}"
            )
        return existing

    # ------------------------------------------------------------------
    # Snapshot / merge (the process-transport surface)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON view of every metric (worker transport + export)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "max_gauges": {
                name: g.value for name, g in sorted(self._max_gauges.items())
            },
            "histograms": {
                name: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram bucket counts add; gauges take the
        snapshot's value (last write wins); max-gauges keep the larger
        value (maximum wins).  Histograms with mismatched boundaries
        are a programming error and raise.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, value in snapshot.get("max_gauges", {}).items():
            self.max_gauge(name).record(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["boundaries"])
            if list(histogram.boundaries) != [
                float(b) for b in data["boundaries"]
            ]:
                raise ValueError(
                    f"cannot merge histogram {name!r}: boundary mismatch"
                )
            for i, count in enumerate(data["counts"]):
                histogram.counts[i] += int(count)
            histogram.total += float(data["total"])
            histogram.count += int(data["count"])

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def reset(self) -> None:
        """Drop every metric (worker buffers reset after each drain)."""
        self._counters.clear()
        self._gauges.clear()
        self._max_gauges.clear()
        self._histograms.clear()

    @property
    def empty(self) -> bool:
        return not (
            self._counters
            or self._gauges
            or self._max_gauges
            or self._histograms
        )

    # ------------------------------------------------------------------
    # Rendering support
    # ------------------------------------------------------------------
    def counter_rows(self) -> List[List[Any]]:
        return [[name, c.value] for name, c in sorted(self._counters.items())]

    def max_gauge_rows(self) -> List[List[Any]]:
        return [
            [name, g.value] for name, g in sorted(self._max_gauges.items())
        ]

    def histogram_rows(self) -> List[List[Any]]:
        rows: List[List[Any]] = []
        for name, h in sorted(self._histograms.items()):
            rows.append([name, h.count, h.total, h.mean])
        return rows
