"""The telemetry facade and the zero-cost-when-off current-telemetry hook.

One :class:`Telemetry` bundles the three observability surfaces -- a
span :class:`~repro.observability.trace.Tracer`, a
:class:`~repro.observability.metrics.MetricsRegistry`, and (driver-side
only) a :class:`~repro.observability.ledger.RunLedger` -- so the rest of
the codebase threads a single optional object.

Instrumented code never imports a concrete telemetry instance; it asks
:func:`current_telemetry` and does nothing when the answer is ``None``.
That is the whole zero-cost contract: with no telemetry installed, the
per-unit overhead is one module-global read and one ``is None`` branch,
and -- more importantly -- *nothing* telemetry-shaped can reach the unit
payloads or the checkpoint store, so suite outputs are byte-identical
with telemetry enabled or disabled (tier-1 proves this).

Worker processes install their own ledger-less telemetry
(:func:`install_telemetry` at pool initialization); after each unit the
engine ships :meth:`Telemetry.drain_transport` back with the result and
the driver absorbs it at finalization, in canonical unit order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.observability.ledger import (
    BREAKER_OPEN,
    FAILURE,
    METRICS,
    SPAN,
    STAGE_FINISHED,
    STAGE_STARTED,
    RunLedger,
)
from repro.observability.memory import peak_rss_bytes
from repro.observability.metrics import DURATION_BUCKETS, MetricsRegistry
from repro.observability.trace import STAGE, Tracer


class Telemetry:
    """Tracer + metrics + (optional) ledger behind one handle."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        ledger: Optional[RunLedger] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.tracer = tracer or Tracer(clock=clock)
        self.metrics = metrics or MetricsRegistry()
        self.ledger = ledger

    # ------------------------------------------------------------------
    # Recording shorthands
    # ------------------------------------------------------------------
    def span(self, name: str, category: str, **attrs: Any):
        """Context manager: one timed span on the tracer."""
        return self.tracer.span(name, category, **attrs)

    def count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float, boundaries=DURATION_BUCKETS) -> None:
        self.metrics.histogram(name, boundaries).observe(value)

    def gauge_max(self, name: str, value: float) -> None:
        """High-water-mark reading (peak memory); maximum wins on merge."""
        self.metrics.max_gauge(name).record(value)

    def event(self, event: str, **fields: Any) -> None:
        """Ledger event; silently dropped when no ledger is attached
        (worker processes and ledger-less runs)."""
        if self.ledger is not None:
            self.ledger.emit(event, **fields)

    # ------------------------------------------------------------------
    # Worker transport
    # ------------------------------------------------------------------
    def drain_transport(self) -> Optional[Dict[str, Any]]:
        """Finished spans + metrics since the last drain (worker side)."""
        spans = self.tracer.drain()
        metrics = None if self.metrics.empty else self.metrics.snapshot()
        self.metrics.reset()
        if not spans and metrics is None:
            return None
        return {"spans": spans, "metrics": metrics}

    def absorb_transport(self, transport: Optional[Dict[str, Any]]) -> None:
        """Fold one worker transport in (driver side, canonical order).

        Shipped spans are re-parented under the driver's innermost open
        span (the stage span during a suite) and re-numbered in shipping
        order, so the merged tree is deterministic for any worker count.
        """
        if not transport:
            return
        self.tracer.adopt(
            transport.get("spans") or [], parent_id=self.tracer.current_id()
        )
        if transport.get("metrics"):
            self.metrics.merge(transport["metrics"])

    # ------------------------------------------------------------------
    # Structured suite events
    # ------------------------------------------------------------------
    def record_failure(self, record: Any) -> None:
        """Ledger entry for one taxonomy FailureRecord."""
        self.event(FAILURE, record=record.to_payload())

    def record_breaker_open(self, method: str, reason: str) -> None:
        self.count("breaker.opens")
        self.event(BREAKER_OPEN, method=method, reason=reason)

    @contextmanager
    def stage(self, stage_name: str, **attrs: Any) -> Iterator[None]:
        """Span + ledger bracket around one suite stage.

        Also books the process peak-RSS high-water mark at stage exit
        (``memory.peak_rss_bytes`` max-gauge + the stage-finished event)
        so scalability runs get a memory reading for free.
        """
        self.event(STAGE_STARTED, stage=stage_name, **attrs)
        with self.span(stage_name, STAGE, **attrs) as span:
            yield
        peak = peak_rss_bytes()
        self.gauge_max("memory.peak_rss_bytes", peak)
        self.event(
            STAGE_FINISHED,
            stage=stage_name,
            duration_seconds=span.duration_seconds,
            peak_rss_bytes=peak,
            **attrs,
        )

    def flush_to_ledger(self) -> None:
        """Write the finished span tree and metrics snapshot as events.

        Called once when a run ends; ``repro trace`` rebuilds the Chrome
        trace from exactly these ``span`` events.
        """
        if self.ledger is None:
            return
        for payload in self.tracer.to_payloads():
            self.ledger.emit(SPAN, span=payload)
        self.ledger.emit(METRICS, metrics=self.metrics.snapshot())


# ----------------------------------------------------------------------
# The process-wide current-telemetry hook
# ----------------------------------------------------------------------
_ACTIVE: List[Telemetry] = []


def current_telemetry() -> Optional[Telemetry]:
    """The innermost installed telemetry, or None (the fast path)."""
    return _ACTIVE[-1] if _ACTIVE else None


def install_telemetry(telemetry: Telemetry) -> None:
    """Install permanently (pool workers; the process owns its stack)."""
    _ACTIVE.append(telemetry)


@contextmanager
def telemetry_scope(telemetry: Optional[Telemetry]) -> Iterator[Optional[Telemetry]]:
    """Install ``telemetry`` for the duration of a block; None is a no-op.

    Re-entrant: installing the already-current telemetry again is
    harmless, so suite functions can scope the telemetry they were
    handed without caring whether the CLI already did.
    """
    if telemetry is None:
        yield None
        return
    _ACTIVE.append(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.pop()
