"""Hierarchical execution spans on monotonic clocks.

A :class:`Span` is one timed region of suite work.  Spans nest --
``suite -> stage -> unit -> attempt`` -- and every span records its
parent, so a completed buffer reconstructs the full execution tree.
Durations always come from a monotonic clock (``time.perf_counter`` by
default, or any injected callable such as the chaos suite's step
clocks); wall-clock epochs never enter a duration
(``tools/check_clocks.py`` enforces this repo-wide).

The :class:`Tracer` is deliberately process-local.  Worker processes
record spans into their own tracer, :meth:`Tracer.drain` ships the
finished spans back through the parallel engine's result queue as plain
payload dicts, and the driver -- the single writer --
:meth:`Tracer.adopt`\\ s them in canonical unit order, remapping span ids
deterministically and re-parenting worker roots under the driver's
currently open span.  The merged tree is therefore complete and
structurally identical for any worker count; only the raw timestamps
(which live on each process's own clock) vary run to run.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Span categories, outermost to innermost.
SUITE = "suite"
STAGE = "stage"
UNIT = "unit"
ATTEMPT = "attempt"
#: One cleaning-kernel invocation (detector/constraint/repair hot path);
#: nests under whatever suite/stage/unit span is currently open.
KERNEL = "kernel"
#: Data-plane plumbing: packing a stage context into shared-memory
#: segments (driver side) and attaching it (worker side).
DATAPLANE = "dataplane"

CATEGORIES = (SUITE, STAGE, UNIT, ATTEMPT, KERNEL, DATAPLANE)


@dataclass
class Span:
    """One timed region of suite work.

    ``start`` / ``end`` are readings of the owning tracer's monotonic
    clock; ``end`` is NaN while the span is open.  ``worker`` is ``""``
    for spans recorded by the driver process and a worker label (e.g.
    ``"worker-12345"``) for spans adopted from a pool worker -- exporters
    use it to assign trace lanes, and it reminds readers that the
    timestamps live on that process's own clock.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start: float
    end: float = math.nan
    worker: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return math.isnan(self.end)

    @property
    def duration_seconds(self) -> float:
        return self.end - self.start

    def to_payload(self) -> Dict[str, Any]:
        """Canonical JSON payload (transport + ledger form)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end if not math.isnan(self.end) else None,
            "worker": self.worker,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            name=payload["name"],
            category=payload["category"],
            start=payload["start"],
            end=payload["end"] if payload["end"] is not None else math.nan,
            worker=payload.get("worker", ""),
            attrs=dict(payload.get("attrs", {})),
        )


class Tracer:
    """Process-local span recorder with deterministic merge support.

    ``begin``/``finish`` maintain an explicit open-span stack, so spans
    recorded between a parent's begin and finish nest under it without
    any caller bookkeeping; :meth:`span` is the context-manager form.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        worker: str = "",
    ) -> None:
        self.clock = clock or time.perf_counter
        self.worker = worker
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, category: str, **attrs: Any) -> Span:
        """Open a span nested under the currently open span (if any)."""
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start=self.clock(),
            worker=self.worker,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> Span:
        """Close a span (and any deeper spans left open by a crash)."""
        end = self.clock()
        while self._stack:
            current = self._stack.pop()
            current.end = end
            if current is span:
                break
        else:
            span.end = end  # foreign/double finish: close it regardless
        return span

    @contextmanager
    def span(self, name: str, category: str, **attrs: Any) -> Iterator[Span]:
        opened = self.begin(name, category, **attrs)
        try:
            yield opened
        finally:
            self.finish(opened)

    def current_id(self) -> Optional[int]:
        """Id of the innermost open span (adoption parent), or None."""
        return self._stack[-1].span_id if self._stack else None

    # ------------------------------------------------------------------
    # Transport (worker -> driver)
    # ------------------------------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Ship every *finished* span as payloads and drop them locally.

        Worker processes call this after each unit so the payloads ride
        the pool's result queue alongside the unit payload.  Open spans
        stay buffered (they belong to a unit still in flight).
        """
        finished = [s for s in self.spans if not s.open]
        self.spans = [s for s in self.spans if s.open]
        return [s.to_payload() for s in finished]

    def adopt(
        self,
        payloads: List[Dict[str, Any]],
        parent_id: Optional[int] = None,
    ) -> List[Span]:
        """Merge shipped spans into this tracer, deterministically.

        Ids are remapped to this tracer's sequence in payload order, so
        adopting the same payloads in the same (canonical) order always
        yields the same ids; roots are re-parented under ``parent_id``
        (typically :meth:`current_id` -- the open stage span).
        """
        id_map: Dict[int, int] = {}
        adopted: List[Span] = []
        for payload in payloads:
            span = Span.from_payload(payload)
            id_map[span.span_id] = self._next_id
            span.span_id = self._next_id
            self._next_id += 1
            if span.parent_id in id_map:
                span.parent_id = id_map[span.parent_id]
            else:
                span.parent_id = parent_id
            self.spans.append(span)
            adopted.append(span)
        return adopted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def children_of(self, span_id: Optional[int]) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def to_payloads(self) -> List[Dict[str, Any]]:
        """Every recorded span, finished or open, as payloads."""
        return [s.to_payload() for s in self.spans]
