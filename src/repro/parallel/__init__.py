"""Parallel execution engine for the benchmark unit grid.

REIN's evaluation is a Cartesian grid -- datasets x detectors x repairs
x models x scenarios x seeds -- whose units are independent given their
seeds.  This package shards that grid across worker processes and merges
the results deterministically: a run with ``--workers N`` produces
payloads identical to the serial run, for any N and any completion
order.

Layers:

- :mod:`repro.parallel.plan` -- :class:`UnitSpec` / :class:`StageAdapter`
  / :class:`ExecutionPlan`: the declarative, picklable description of one
  suite stage's unit grid;
- :mod:`repro.parallel.engine` -- :class:`SerialExecutor` (reference and
  default), :class:`ShuffledExecutor` (order-chaos testing aid),
  :class:`ProcessPoolExecutor` (N workers over a result queue), and
  :func:`execute_plan`, the single-writer driver that replays
  circuit-breaker bookkeeping in canonical order and batches checkpoint
  commits.

The benchmark runner (:mod:`repro.benchmark.runner`) builds the plans;
callers opt into parallelism by passing ``executor=`` to the suite
functions or ``--workers N`` on the CLI.
"""

from repro.parallel.engine import (
    ProcessPoolExecutor,
    SerialExecutor,
    ShuffledExecutor,
    WorkerCrashError,
    adaptive_chunk_size,
    block_spans,
    block_unit_key,
    execute_plan,
    execute_plan_blocked,
    make_executor,
    null_sleep,
)
from repro.parallel.plan import ExecutionPlan, StageAdapter, UnitSpec

__all__ = [
    "ExecutionPlan",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "ShuffledExecutor",
    "StageAdapter",
    "UnitSpec",
    "WorkerCrashError",
    "adaptive_chunk_size",
    "block_spans",
    "block_unit_key",
    "execute_plan",
    "execute_plan_blocked",
    "make_executor",
    "null_sleep",
]
