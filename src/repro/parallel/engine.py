"""Executors and the deterministic plan driver.

The contract every executor honours: given the plan's *pending* units
(those not already checkpointed), produce ``(index, run)`` pairs in any
completion order.  :func:`execute_plan` then merges them back in the
plan's canonical order, replaying circuit-breaker bookkeeping unit by
unit -- so the merged output is identical to a serial run regardless of
worker count or completion order.

Three executors:

- :class:`SerialExecutor` -- in-process, canonical order; the reference
  implementation and the default everywhere.
- :class:`ShuffledExecutor` -- in-process but completes units in a
  seeded scrambled order; a testing aid that exercises the merge logic's
  order-independence without paying for real processes.
- :class:`ProcessPoolExecutor` -- shards units across N worker
  processes via :mod:`multiprocessing`; unit payloads (the same JSON
  payloads the checkpoint layer stores) travel back over the pool's
  result queue and the parent -- the single writer -- drains it,
  finalizing units in canonical order and batching checkpoint commits.

The pool dispatches through the shared-memory data plane
(:mod:`repro.dataplane`): the stage's ``shared`` context is packed once
into named segments plus a small pickled shell (tables are *not*
pickled per worker), workers attach the segments read-only, and results
come back as canonical-JSON payload frames -- byte-for-byte the text
the checkpoint layer would store -- batched by an adaptive
``chunk_size``.  Segment lifetime is owned by the driver: a
``finally`` around dispatch closes and unlinks every segment on normal
teardown, interrupts, and worker crashes alike (a SIGKILLed worker is
detected mid-run and surfaces as :class:`WorkerCrashError`; resume from
the checkpoint store re-runs only what was lost).

Determinism notes for ``ProcessPoolExecutor``: unit *results* are
deterministic because every unit re-derives its randomness from explicit
seeds; wall-clock runtimes inside payloads are only reproducible when an
injectable clock (e.g. the chaos suite's step clock) is threaded through
the suite, exactly as in serial runs.  The plan's ``shared`` context and
every ``clock`` / ``sleep`` callable must be picklable; the default
``fork`` start method additionally preserves the parent's string-hash
seed so set iteration order inside tools matches the parent process
(suite payloads canonicalize their collections, so ``spawn`` runs are
byte-identical too -- tier-1 asserts it across both start methods).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.cache.store import current_cache, install_cache
from repro.dataplane.segments import SegmentManager
from repro.dataplane.ship import SharedShipment, attach_shipment, pack_shared
from repro.observability.telemetry import (
    Telemetry,
    current_telemetry,
    install_telemetry,
)
from repro.observability.trace import DATAPLANE, Tracer
from repro.parallel.plan import ExecutionPlan, UnitSpec


def null_sleep(seconds: float) -> None:
    """A picklable no-op sleep for deterministic (and parallel) tests."""


class WorkerCrashError(RuntimeError):
    """A pool worker died (SIGKILL, OOM, ...) with results outstanding.

    ``multiprocessing.Pool`` silently replaces dead workers but never
    re-runs the tasks they held, so the dispatch round would hang; the
    driver detects the replacement, aborts the round, and flushes the
    checkpoint store -- resuming the run re-executes only the lost
    units.
    """


# ----------------------------------------------------------------------
# Worker-process plumbing (module-level so everything pickles by name)
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def _init_worker(
    adapter: Any,
    shipment: SharedShipment,
    telemetry: bool = False,
    cache_spec: Optional[Dict[str, Any]] = None,
) -> None:
    """Pool initializer: attach the stage context once per worker.

    The shared context arrives as a :class:`SharedShipment` -- a small
    pickled shell plus segment names -- and is rebuilt here by attaching
    every named segment read-only (zero-copy buffer views; see
    :mod:`repro.dataplane.ship`).  Workers never unlink: segment names
    belong to the driver.

    With ``telemetry`` on, the worker gets its own ledger-less
    :class:`Telemetry` (spans + metrics only): instrumented code inside
    the unit records into this worker-local buffer, and
    :func:`_run_unit_in_worker` drains it after every unit so the driver
    can merge it deterministically.  The ledger and the checkpoint store
    remain single-writer, driver-only surfaces.

    SIGTERM is reset to the default action: ``fork`` children inherit
    whatever handler the dispatching process installed (the service
    worker's graceful-drain handler swallows SIGTERM), and
    ``Pool.terminate()`` relies on SIGTERM actually terminating the
    children -- it holds the task-queue lock while joining them, so a
    child that shrugs the signal off deadlocks the teardown.

    With ``cache_spec`` set, the driver's artifact cache is rebuilt in
    the worker and installed process-wide.  The cache's atomic
    same-content write discipline makes this safe without coordination:
    workers may race on the same key but never publish a torn or
    divergent entry (see :mod:`repro.cache.store`).
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _WORKER_STATE["adapter"] = adapter
    worker_telemetry: Optional[Telemetry] = None
    if telemetry:
        worker_telemetry = Telemetry(
            tracer=Tracer(worker=f"worker-{os.getpid()}")
        )
        _WORKER_STATE["telemetry"] = worker_telemetry
        install_telemetry(worker_telemetry)
    if worker_telemetry is not None:
        with worker_telemetry.span(
            "dataplane:attach", DATAPLANE, segments=len(shipment.handles)
        ):
            shared = attach_shipment(shipment)
        worker_telemetry.count(
            "dataplane_segments_attached", len(shipment.handles)
        )
    else:
        shared = attach_shipment(shipment)
    _WORKER_STATE["shared"] = shared
    if cache_spec is not None:
        from repro.cache.store import ArtifactCache

        install_cache(ArtifactCache.from_spec(cache_spec))


def _encode_frame(payload: Dict[str, Any]) -> bytes:
    """One unit payload as a canonical-JSON frame.

    Key order is canonical (``sort_keys``) and the text round-trips
    through the same JSON value space the checkpoint store uses, so the
    driver's ``from_payload(json.loads(frame))`` sees exactly what a
    checkpoint resume would -- the store's bytes cannot depend on the
    transport.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def _run_unit_in_worker(
    spec: UnitSpec,
) -> Tuple[int, bytes, Optional[Dict[str, Any]]]:
    """Execute one unit in a worker; ship its canonical payload frame
    back, plus the telemetry recorded while executing it (``None`` when
    nothing was recorded, so idle spans cost no per-unit IPC)."""
    adapter = _WORKER_STATE["adapter"]
    run = adapter.execute(_WORKER_STATE["shared"], spec)
    telemetry = _WORKER_STATE.get("telemetry")
    transport = telemetry.drain_transport() if telemetry is not None else None
    return spec.index, _encode_frame(adapter.to_payload(run)), transport


def _run_chunk_in_worker(
    specs: List[UnitSpec],
) -> List[Tuple[int, bytes, Optional[Dict[str, Any]]]]:
    """Execute one dispatch chunk; frames come back batched per chunk.

    The chunking lives here, not in ``imap_unordered``'s ``chunksize``,
    because with ``chunksize > 1`` the stdlib returns a flattening
    *generator* over the iterator -- losing the ``next(timeout=)`` the
    driver's crash polling depends on.  Each unit keeps its own
    telemetry drain (``None`` when empty) so span adoption stays
    per-unit deterministic; only the IPC round trips are batched.
    """
    return [_run_unit_in_worker(spec) for spec in specs]


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class SerialExecutor:
    """In-process execution in canonical order (the reference)."""

    name = "serial"

    def run(
        self,
        plan: ExecutionPlan,
        pending: List[UnitSpec],
        should_execute: Callable[[UnitSpec], bool],
    ) -> Iterator[Tuple[int, Any]]:
        for spec in pending:
            # Checked lazily, one unit at a time, so quarantines tripped
            # by earlier units in this very plan skip later work exactly
            # like the historical inline loop did.
            if not should_execute(spec):
                continue
            yield spec.index, plan.adapter.execute(plan.shared, spec)


class ShuffledExecutor:
    """In-process execution in a seeded scrambled completion order.

    Mimics parallel dispatch semantics (the execute/skip decision for
    every unit is snapshotted up front, results complete out of order)
    without the cost of real processes -- property tests drive it with
    many seeds to prove the merge layer is order-independent.
    """

    name = "shuffled"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def run(
        self,
        plan: ExecutionPlan,
        pending: List[UnitSpec],
        should_execute: Callable[[UnitSpec], bool],
    ) -> Iterator[Tuple[int, Any]]:
        import random

        order = list(pending)
        random.Random(self.seed).shuffle(order)
        # Dispatch-time snapshot, like a pool handing out every unit
        # before any result has been merged.
        dispatched = [spec for spec in order if should_execute(spec)]
        for spec in dispatched:
            yield spec.index, plan.adapter.execute(plan.shared, spec)


def adaptive_chunk_size(n_units: int, n_workers: int) -> int:
    """Auto chunk size: ~4 chunks per worker, clamped to [1, 32].

    Small grids keep chunk 1 (every worker busy immediately, results
    stream for prompt merging); large blocked grids batch dozens of
    sub-units per IPC round trip so the result queue stops being the
    bottleneck.  The cap bounds both tail latency and the work lost
    when a worker crashes mid-chunk.
    """
    chunk, extra = divmod(n_units, n_workers * 4)
    if extra:
        chunk += 1
    return max(1, min(chunk, 32))


class ProcessPoolExecutor:
    """Shard pending units across ``workers`` OS processes.

    Units are dispatched unordered (``imap_unordered``) so fast units
    never wait behind slow ones; the driver re-establishes canonical
    order at merge time.  The pool is torn down if the consumer stops
    iterating early (e.g. the run is interrupted), terminating workers.

    Dispatch goes through the shared-memory data plane: ``plan.shared``
    is packed once (tables into segments, the rest into a small shell)
    and every worker attaches the same bytes, for ``fork`` and ``spawn``
    start methods alike.  ``chunk_size=None`` picks
    :func:`adaptive_chunk_size`; ``share_tables=False`` keeps tables
    inline in the pickled shell (the legacy behavior the speed benchmark
    measures against).  The driver polls the result stream
    (``poll_seconds``) so a worker killed mid-unit raises
    :class:`WorkerCrashError` instead of hanging the run.
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        chunk_size: Optional[int] = None,
        share_tables: bool = True,
        poll_seconds: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.start_method = start_method
        self.chunk_size = chunk_size
        self.share_tables = share_tables
        self.poll_seconds = poll_seconds

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    @staticmethod
    def _check_workers(pool, initial_pids: Set[Optional[int]]) -> None:
        """Raise when any pool worker died since dispatch began.

        ``Pool`` replaces dead workers without re-queuing their tasks,
        so a changed pid set (or a not-yet-reaped corpse) means results
        we are waiting for will never arrive.
        """
        workers = list(pool._pool)
        if {process.pid for process in workers} != initial_pids or any(
            not process.is_alive() for process in workers
        ):
            raise WorkerCrashError(
                "a pool worker died mid-dispatch; its pending units were "
                "lost (checkpointed units are safe -- resume to re-run "
                "the rest)"
            )

    def run(
        self,
        plan: ExecutionPlan,
        pending: List[UnitSpec],
        should_execute: Callable[[UnitSpec], bool],
    ) -> Iterator[Tuple[int, Any]]:
        dispatched = [spec for spec in pending if should_execute(spec)]
        if not dispatched:
            return
        n_workers = min(self.workers, len(dispatched))
        chunk = self.chunk_size or adaptive_chunk_size(
            len(dispatched), n_workers
        )
        context = self._context()
        start_method = getattr(context, "_name", self.start_method)
        telemetry = current_telemetry()
        cache = current_cache()
        cache_spec = cache.spec() if cache is not None else None
        manager = SegmentManager()
        shipped_bytes = 0
        frame_bytes = 0
        try:
            if telemetry is not None:
                with telemetry.span(
                    "dataplane:ship",
                    DATAPLANE,
                    workers=n_workers,
                    start_method=start_method,
                ):
                    shipment = pack_shared(
                        plan.shared, manager, self.share_tables
                    )
            else:
                shipment = pack_shared(plan.shared, manager, self.share_tables)
            # The shell is pickled once per worker; segments are shared.
            shipped_bytes = shipment.shipped_bytes * n_workers
            if telemetry is not None:
                telemetry.count("dataplane_bytes_shipped", shipped_bytes)
                telemetry.count(
                    "dataplane_bytes_shared", shipment.shared_bytes
                )
            chunks = [
                dispatched[start:start + chunk]
                for start in range(0, len(dispatched), chunk)
            ]
            with context.Pool(
                processes=n_workers,
                initializer=_init_worker,
                initargs=(plan.adapter, shipment, telemetry is not None,
                          cache_spec),
            ) as pool:
                results = pool.imap_unordered(
                    _run_chunk_in_worker, chunks, chunksize=1
                )
                initial_pids = {process.pid for process in pool._pool}
                remaining = len(chunks)
                while remaining:
                    try:
                        batch = results.next(timeout=self.poll_seconds)
                    except multiprocessing.TimeoutError:
                        self._check_workers(pool, initial_pids)
                        continue
                    remaining -= 1
                    for index, frame, transport in batch:
                        frame_bytes += len(frame)
                        yield (
                            index,
                            plan.adapter.from_payload(json.loads(frame)),
                            transport,
                        )
        finally:
            segments = len(manager.names)
            shared_bytes = manager.total_bytes
            manager.destroy()
            if telemetry is not None:
                telemetry.count("dataplane_bytes_shipped", frame_bytes)
                telemetry.event(
                    "dataplane_summary",
                    stage=plan.adapter.stage,
                    workers=n_workers,
                    start_method=start_method,
                    chunk_size=chunk,
                    segments=segments,
                    bytes_shared=shared_bytes,
                    bytes_shipped=shipped_bytes + frame_bytes,
                )


def make_executor(
    workers: Optional[int],
    start_method: Optional[str] = None,
    chunk_size: Optional[int] = None,
):
    """Executor for a worker count: None/1 -> serial (None), N -> pool.

    ``start_method`` and ``chunk_size`` pass straight through to
    :class:`ProcessPoolExecutor` (``None`` = platform default and
    adaptive chunking respectively).
    """
    if workers is None or workers == 1:
        return None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return ProcessPoolExecutor(
        workers, start_method=start_method, chunk_size=chunk_size
    )


# ----------------------------------------------------------------------
# The driver: deterministic merge + breaker replay + single-writer
# checkpointing
# ----------------------------------------------------------------------
def execute_plan(
    plan: ExecutionPlan,
    executor: Any = None,
    checkpoint: Any = None,
    breaker: Any = None,
    progress: Optional[Callable[[UnitSpec, Any], None]] = None,
    telemetry: Any = None,
) -> List[Any]:
    """Run a plan under any executor; return runs in canonical order.

    The driver owns everything that must be deterministic and
    single-threaded:

    - **checkpoint reads**: completed units are loaded up front and never
      dispatched (workers do not touch the store);
    - **finalization order**: executed runs buffer until their canonical
      turn, so unit ``i`` is always finalized before unit ``i+1``;
    - **circuit-breaker replay**: success/failure bookkeeping is applied
      at finalization, in canonical order -- a method whose breaker trips
      at unit ``i`` yields the exact quarantine-skip records a serial run
      would produce for every later unit of that method, even if a worker
      already executed (and therefore wastes) one of them;
    - **checkpoint writes**: the driver is the single writer draining the
      executor's result stream; ``put`` batches inside the store and the
      driver flushes once at the end (and on interruption);
    - **telemetry merge**: worker span/metric buffers ride the result
      stream and are absorbed at finalization, in canonical order -- so
      the merged trace is complete and structurally identical for any
      worker count.  Buffers of units a worker wastefully executed after
      their method's breaker opened are *dropped*, keeping merged totals
      equal to the serial run's.  ``telemetry`` defaults to the installed
      :func:`~repro.observability.current_telemetry` (None = off; the
      run's outputs are byte-identical either way).

    ``progress`` is invoked once per finalized unit, in canonical order
    (an exception it raises aborts the run like an interrupt, which the
    chaos suite uses to simulate kills at exact unit boundaries).
    """
    executor = executor or SerialExecutor()
    telemetry = telemetry if telemetry is not None else current_telemetry()
    units = plan.units
    n = len(units)
    results: List[Any] = [None] * n
    cached = [False] * n
    pending: List[UnitSpec] = []
    for spec in units:
        payload = checkpoint.get(spec.key) if checkpoint is not None else None
        if payload is not None:
            results[spec.index] = plan.adapter.from_payload(payload)
            cached[spec.index] = True
        else:
            pending.append(spec)

    def should_execute(spec: UnitSpec) -> bool:
        return not (
            breaker is not None
            and spec.method
            and breaker.is_quarantined(spec.method)
        )

    executed: Dict[int, Any] = {}
    transports: Dict[int, Any] = {}
    received_at: Dict[int, float] = {}
    state = {"next": 0}

    def checkpoint_put(spec: UnitSpec, run: Any) -> None:
        checkpoint.put(spec.key, plan.adapter.to_payload(run))
        if telemetry is not None:
            telemetry.count("checkpoint.puts")

    def book_finalized(spec: UnitSpec, run: Any, status: str) -> None:
        """Ledger + metrics for one finalized unit (telemetry on only)."""
        record = plan.adapter.failure_of(run)
        runtime = None
        if plan.adapter.runtime_of is not None:
            runtime = plan.adapter.runtime_of(run)
        if record is not None and status == "executed":
            telemetry.record_failure(record)
        telemetry.event(
            "unit_finalized",
            unit=spec.key,
            method=spec.method,
            stage=plan.adapter.stage,
            status=status,
            ok=record is None,
            runtime_seconds=runtime,
        )

    def finalize_ready() -> None:
        while state["next"] < n:
            index = state["next"]
            spec = units[index]
            status = "executed"
            if cached[index]:
                run = results[index]
                status = "cached"
                if telemetry is not None:
                    telemetry.count("units.cached")
            elif (
                breaker is not None
                and spec.method
                and breaker.is_quarantined(spec.method)
            ):
                executed.pop(index, None)  # a worker may have raced ahead
                transports.pop(index, None)  # ...its telemetry is wasted too
                run = plan.adapter.quarantine_skip(
                    plan.shared, spec, breaker.reason(spec.method)
                )
                results[index] = run
                status = "quarantine_skip"
                if telemetry is not None:
                    telemetry.count("units.quarantine_skips")
                if checkpoint is not None:
                    checkpoint_put(spec, run)
            elif index in executed:
                run = executed.pop(index)
                results[index] = run
                if telemetry is not None:
                    telemetry.absorb_transport(transports.pop(index, None))
                    telemetry.count("units.executed")
                    if index in received_at:
                        telemetry.observe(
                            "unit.merge_wait_seconds",
                            telemetry.tracer.clock() - received_at.pop(index),
                        )
                if breaker is not None and spec.method:
                    record = plan.adapter.failure_of(run)
                    if record is None:
                        breaker.record_success(spec.method)
                    else:
                        was_open = breaker.is_quarantined(spec.method)
                        breaker.record_failure(spec.method, record.describe())
                        if (
                            telemetry is not None
                            and not was_open
                            and breaker.is_quarantined(spec.method)
                        ):
                            telemetry.record_breaker_open(
                                spec.method, breaker.reason(spec.method)
                            )
                if checkpoint is not None:
                    checkpoint_put(spec, run)
            else:
                return  # waiting on an out-of-order completion
            if telemetry is not None:
                book_finalized(spec, run, status)
            state["next"] += 1
            if progress is not None:
                progress(spec, run)

    try:
        finalize_ready()
        for item in executor.run(plan, pending, should_execute):
            index, run = item[0], item[1]
            executed[index] = run
            if telemetry is not None:
                if len(item) > 2 and item[2]:
                    transports[index] = item[2]
                received_at[index] = telemetry.tracer.clock()
            finalize_ready()
        finalize_ready()
    finally:
        if checkpoint is not None:
            checkpoint.flush()
            if telemetry is not None:
                telemetry.count("checkpoint.commits")
                telemetry.event(
                    "checkpoint_commit", stage=plan.adapter.stage
                )
    if state["next"] != n:
        missing = [units[i].key for i in range(n) if results[i] is None]
        raise RuntimeError(
            f"executor finished but {len(missing)} unit(s) never completed: "
            f"{missing[:5]}"
        )
    return results


# ----------------------------------------------------------------------
# (unit x row-block) sharding
# ----------------------------------------------------------------------
def block_spans(n_rows: int, block_rows: int) -> List[Tuple[int, int]]:
    """Canonical ``[start, stop)`` row spans tiling ``n_rows`` rows.

    Every span except possibly the last covers exactly ``block_rows``
    rows.  An empty table yields one empty span so a blocked unit still
    produces exactly one run to merge.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    if n_rows < 0:
        raise ValueError(f"n_rows must be >= 0, got {n_rows}")
    if n_rows == 0:
        return [(0, 0)]
    return [
        (start, min(start + block_rows, n_rows))
        for start in range(0, n_rows, block_rows)
    ]


def block_unit_key(key: str, start: int, stop: int) -> str:
    """Checkpoint key of one row-block sub-unit of a blocked unit."""
    return f"{key}@rows{start}-{stop}"


def execute_plan_blocked(
    plan: ExecutionPlan,
    blocks: Dict[int, List[Tuple[int, int]]],
    merge_blocks: Callable[[UnitSpec, List[Any]], Any],
    executor: Any = None,
    checkpoint: Any = None,
    breaker: Any = None,
    progress: Optional[Callable[[UnitSpec, Any], None]] = None,
    telemetry: Any = None,
) -> List[Any]:
    """Run a plan in ``(unit x row-block)`` sharding mode.

    ``blocks`` maps a unit's canonical index to its row spans (from
    :func:`block_spans`); units absent from the mapping execute whole, so
    a stage can mix blockable and whole-table methods in one plan.  Each
    blocked unit is expanded into per-block sub-units whose params carry
    a ``"block": (start, stop)`` entry and whose checkpoint keys get a
    ``@rows<start>-<stop>`` suffix; the expanded plan then runs through
    the ordinary :func:`execute_plan` driver, so sub-units shard across
    workers, checkpoint individually (intra-unit resume), and replay
    circuit-breaker bookkeeping deterministically.

    The fold back to whole-unit runs happens here, in the single-writer
    driver, strictly in canonical unit order with each unit's block runs
    in canonical block order -- which is why a blocked run's merged
    output is byte-identical to the unblocked run for any executor and
    worker count.  Merged runs are checkpointed under the unit's
    *original* key, so a unit finished by an earlier run (blocked or
    not) is reused without re-expanding, and later unblocked resumes can
    consume blocked results transparently.

    ``progress`` fires once per *original* unit, after its merge, in
    canonical order.  Breaker failure counts accrue per sub-unit (one
    poisoned block counts one failure), which only makes quarantine
    trip earlier than a whole-unit run -- never later.
    """
    telemetry = telemetry if telemetry is not None else current_telemetry()
    merged: List[Any] = [None] * len(plan.units)
    # (spec, n_subunits, is_blocked); n_subunits == 0 -> checkpoint hit.
    origin: List[Tuple[UnitSpec, int, bool]] = []
    expanded: List[UnitSpec] = []
    for spec in plan.units:
        payload = checkpoint.get(spec.key) if checkpoint is not None else None
        if payload is not None:
            merged[spec.index] = plan.adapter.from_payload(payload)
            origin.append((spec, 0, False))
            if telemetry is not None:
                telemetry.count("units.cached")
            continue
        spans = blocks.get(spec.index)
        if not spans:
            expanded.append(
                UnitSpec(len(expanded), spec.key, spec.method, dict(spec.params))
            )
            origin.append((spec, 1, False))
        else:
            for start, stop in spans:
                expanded.append(
                    UnitSpec(
                        len(expanded),
                        block_unit_key(spec.key, start, stop),
                        spec.method,
                        {**spec.params, "block": (start, stop)},
                    )
                )
            origin.append((spec, len(spans), True))
    sub_plan = ExecutionPlan(plan.adapter, plan.shared, expanded)
    sub_results = execute_plan(
        sub_plan,
        executor=executor,
        checkpoint=checkpoint,
        breaker=breaker,
        telemetry=telemetry,
    )
    cursor = 0
    try:
        for spec, count, is_blocked in origin:
            if count == 0:
                run = merged[spec.index]
            else:
                group = sub_results[cursor : cursor + count]
                cursor += count
                run = merge_blocks(spec, group) if is_blocked else group[0]
                merged[spec.index] = run
                if is_blocked:
                    if checkpoint is not None:
                        checkpoint.put(spec.key, plan.adapter.to_payload(run))
                    if telemetry is not None:
                        telemetry.count("units.block_merged")
                        telemetry.event(
                            "unit_block_merged",
                            unit=spec.key,
                            method=spec.method,
                            stage=plan.adapter.stage,
                            n_blocks=count,
                        )
            if progress is not None:
                progress(spec, run)
    finally:
        if checkpoint is not None:
            checkpoint.flush()
    return merged
