"""Execution plans: the unit grid one suite stage is about to run.

A suite stage (detection, repair, scenario modeling) is a list of
independent *units* -- the same (dataset, stage, detector, repair, model,
scenario, seed) combinations the checkpoint layer keys by.  An
:class:`ExecutionPlan` captures that list declaratively:

- each :class:`UnitSpec` is a small, picklable description of one unit
  (its checkpoint key, the circuit-breaker method it belongs to, and the
  stage-specific parameters needed to execute it);
- the :class:`StageAdapter` supplies the stage's behaviour as
  module-level functions (execute a unit, serialize/deserialize its run
  object, build a quarantine-skip run, extract the failure record), so
  the whole plan can cross a process boundary;
- ``shared`` carries the per-suite context every unit needs (the
  dataset, the tool pool, guard parameters) exactly once.

Executors in :mod:`repro.parallel.engine` consume plans; the driver
:func:`~repro.parallel.engine.execute_plan` merges completed units back
into canonical order so results are identical regardless of worker count
or completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class UnitSpec:
    """One independent unit of suite work.

    Attributes:
        index: position in the plan's canonical (serial) order.
        key: the checkpoint unit key
            (:func:`repro.resilience.checkpoint.unit_key`).
        method: circuit-breaker method name this unit counts against;
            empty string opts the unit out of breaker bookkeeping.
        params: picklable stage-specific parameters (e.g. which detector
            slot to run, which (scenario, seed) pair to evaluate).
    """

    index: int
    key: str
    method: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class StageAdapter:
    """A stage's unit-level behaviour, as picklable function references.

    Every callable must be a module-level function (or classmethod) so
    the adapter can be shipped to worker processes by reference.

    Attributes:
        stage: stage name ('detection' | 'repair' | 'model').
        execute: ``(shared, spec) -> run`` -- execute one unit and return
            its native run object.  Must never raise for tool failures
            (route them through ``guarded_call``); an exception here is a
            harness bug and aborts the suite, exactly like serial code.
        to_payload: ``(run) -> dict`` -- canonical JSON payload, the same
            one the checkpoint layer stores.
        from_payload: ``(dict) -> run`` -- inverse of ``to_payload``.
        quarantine_skip: ``(shared, spec, reason) -> run`` -- build the
            run object a serial suite would record when the unit's method
            is quarantined at the moment the unit is reached.
        failure_of: ``(run) -> Optional[FailureRecord]`` -- the failure
            record driving circuit-breaker bookkeeping (None = success).
        runtime_of: optional ``(run) -> Optional[float]`` -- the unit's
            honest elapsed seconds, feeding the observability ledger's
            ``unit_finalized`` events and the runtime panels built from
            them (None = the stage has no per-unit runtime notion).
    """

    stage: str
    execute: Callable[[Any, UnitSpec], Any]
    to_payload: Callable[[Any], Dict[str, Any]]
    from_payload: Callable[[Dict[str, Any]], Any]
    quarantine_skip: Callable[[Any, UnitSpec, str], Any]
    failure_of: Callable[[Any], Optional[Any]]
    runtime_of: Optional[Callable[[Any], Optional[float]]] = None


@dataclass(frozen=True)
class ExecutionPlan:
    """A stage adapter, its shared context, and the ordered unit grid."""

    adapter: StageAdapter
    shared: Any
    units: List[UnitSpec]

    def __post_init__(self) -> None:
        for position, spec in enumerate(self.units):
            if spec.index != position:
                raise ValueError(
                    f"unit at position {position} has index {spec.index}; "
                    "plan units must be listed in canonical order"
                )

    def __len__(self) -> int:
        return len(self.units)
