"""Data profiling (the Metanome analogue of actionable suggestion #4).

Single-column statistics (types, distinctness, nulls, quantiles, shape
histograms), candidate-key discovery, and inclusion-dependency discovery --
the metadata that drives rule generation, the metadata-driven detector, and
the benchmark controller's design-time knowledge.
"""

from repro.profiling.profiler import (
    ColumnProfile,
    TableProfile,
    discover_inclusion_dependencies,
    profile_table,
)

__all__ = [
    "ColumnProfile",
    "TableProfile",
    "discover_inclusion_dependencies",
    "profile_table",
]
