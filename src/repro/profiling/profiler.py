"""Single-column profiling and multi-column dependency discovery."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.table import Table, coerce_float, is_missing


def _shape_of(text: str) -> str:
    out = []
    for ch in text:
        if ch.isdigit():
            out.append("9")
        elif ch.isalpha():
            out.append("a")
        else:
            out.append(ch)
    return "".join(out)


@dataclass
class ColumnProfile:
    """Statistics of one column.

    Attributes mirror what single-column profilers (Metanome's basic
    statistics) report, plus the dominant character shape used by the
    pattern detectors.
    """

    name: str
    declared_kind: str
    inferred_kind: str
    n_values: int
    n_missing: int
    n_distinct: int
    distinctness: float          # distinct / non-missing
    null_ratio: float
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    mean: Optional[float] = None
    std: Optional[float] = None
    quantiles: Dict[str, float] = field(default_factory=dict)
    most_common: List[Tuple[str, int]] = field(default_factory=list)
    dominant_shape: Optional[str] = None
    shape_conformity: float = 1.0   # fraction matching the dominant shape
    mean_length: float = 0.0
    is_candidate_key: bool = False

    @property
    def entropy(self) -> float:
        """Shannon entropy (bits) of the value distribution."""
        total = sum(count for _, count in self.most_common)
        if total == 0:
            return 0.0
        # most_common holds the full histogram for profiled columns.
        entropy = 0.0
        for _, count in self.most_common:
            p = count / total
            entropy -= p * math.log2(p)
        return entropy


@dataclass
class TableProfile:
    """Profiles of all columns plus table-level findings."""

    n_rows: int
    columns: Dict[str, ColumnProfile]
    candidate_keys: List[str]

    def column(self, name: str) -> ColumnProfile:
        if name not in self.columns:
            raise KeyError(f"no profiled column {name!r}")
        return self.columns[name]


def profile_column(
    table: Table, name: str, key_threshold: float = 0.99
) -> ColumnProfile:
    """Profile one column of a table."""
    raw = list(table.column(name))
    n_values = len(raw)
    non_missing = [v for v in raw if not is_missing(v)]
    n_missing = n_values - len(non_missing)
    texts = [str(v).strip() for v in non_missing]
    counts = Counter(texts)
    n_distinct = len(counts)
    distinctness = n_distinct / len(non_missing) if non_missing else 0.0
    numeric = np.array([coerce_float(v) for v in non_missing])
    finite = numeric[~np.isnan(numeric)]
    all_numeric = len(finite) == len(non_missing) and len(non_missing) > 0
    profile = ColumnProfile(
        name=name,
        declared_kind=table.schema.kind_of(name),
        inferred_kind="numerical" if all_numeric else "categorical",
        n_values=n_values,
        n_missing=n_missing,
        n_distinct=n_distinct,
        distinctness=distinctness,
        null_ratio=n_missing / n_values if n_values else 0.0,
        most_common=counts.most_common(),
        mean_length=(
            float(np.mean([len(t) for t in texts])) if texts else 0.0
        ),
        is_candidate_key=(
            len(non_missing) >= 5 and distinctness >= key_threshold
        ),
    )
    if len(finite):
        profile.min_value = float(finite.min())
        profile.max_value = float(finite.max())
        profile.mean = float(finite.mean())
        profile.std = float(finite.std())
        q = np.quantile(finite, [0.25, 0.5, 0.75])
        profile.quantiles = {"q25": float(q[0]), "q50": float(q[1]),
                             "q75": float(q[2])}
    if texts:
        shapes = Counter(_shape_of(t) for t in texts)
        dominant, dominant_count = shapes.most_common(1)[0]
        profile.dominant_shape = dominant
        profile.shape_conformity = dominant_count / len(texts)
    return profile


def profile_table(table: Table, key_threshold: float = 0.99) -> TableProfile:
    """Profile every column; report candidate keys."""
    columns = {
        name: profile_column(table, name, key_threshold)
        for name in table.column_names
    }
    candidate_keys = [
        name for name, profile in columns.items() if profile.is_candidate_key
    ]
    return TableProfile(table.n_rows, columns, candidate_keys)


def discover_inclusion_dependencies(
    table: Table,
    min_coverage: float = 1.0,
    max_domain: int = 1000,
) -> List[Tuple[str, str]]:
    """Unary inclusion dependencies: pairs (a, b) with values(a) ⊆ values(b).

    Trivial cases are skipped: identical columns of one another's direction
    are both reported (A in B and B in A means the value sets are equal),
    but a column is never reported against itself, and columns with more
    than ``max_domain`` distinct values are skipped (keys are never
    interesting IND candidates).  ``min_coverage`` < 1 allows approximate
    INDs on dirty data.
    """
    if not 0.0 < min_coverage <= 1.0:
        raise ValueError("min_coverage must be in (0, 1]")
    value_sets: Dict[str, set] = {}
    for name in table.column_names:
        values = {
            str(v).strip()
            for v in table.column(name)
            if not is_missing(v)
        }
        if 0 < len(values) <= max_domain:
            value_sets[name] = values
    findings: List[Tuple[str, str]] = []
    for a, set_a in value_sets.items():
        for b, set_b in value_sets.items():
            if a == b:
                continue
            coverage = len(set_a & set_b) / len(set_a)
            if coverage >= min_coverage:
                findings.append((a, b))
    return sorted(findings)
