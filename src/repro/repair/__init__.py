"""The 19 data repair methods of Table 1.

Generic (category I): GT, Delete, Mean/Median/Mode imputation, missForest
(mixed/separate), DataWig, MISS-DataWig, DT-MISS, Bayes-MISS, KNN-MISS,
HoloClean, OpenRefine, BARAN, CleanLab.
ML-oriented (category II): ActiveClean, BoostClean, CPClean.
"""

from typing import Dict, List, Union

from repro.repair.baran import BaranRepair
from repro.repair.base import (
    GENERIC,
    ML_ORIENTED,
    MLOrientedRepair,
    ModelRepairResult,
    RepairMethod,
    RepairResult,
    blank_detected_cells,
)
from repro.repair.holistic import CleanLabRepair, HoloCleanRepair, OpenRefineRepair
from repro.repair.imputers import (
    BayesMissRepair,
    DataWigMixRepair,
    DTMissRepair,
    KNNMissRepair,
    MissDataWigRepair,
    MissForestMixRepair,
    MissForestSepRepair,
    MLImputeRepair,
)
from repro.repair.ml_oriented import (
    ActiveCleanRepair,
    BoostCleanRepair,
    CPCleanRepair,
    FittedTabularModel,
)
from repro.repair.simple import (
    DeleteRepair,
    GroundTruthRepair,
    MeanModeImputeRepair,
    MedianModeImputeRepair,
    ModeModeImputeRepair,
)


def all_repair_methods() -> List[Union[RepairMethod, MLOrientedRepair]]:
    """Fresh instances of all 19 repair methods (Table 1 order)."""
    return [
        GroundTruthRepair(),
        DeleteRepair(),
        MeanModeImputeRepair(),
        MedianModeImputeRepair(),
        ModeModeImputeRepair(),
        MissForestMixRepair(),
        DataWigMixRepair(),
        MissForestSepRepair(),
        MissDataWigRepair(),
        DTMissRepair(),
        BayesMissRepair(),
        KNNMissRepair(),
        HoloCleanRepair(),
        OpenRefineRepair(),
        BaranRepair(),
        CleanLabRepair(),
        ActiveCleanRepair(),
        BoostCleanRepair(),
        CPCleanRepair(),
    ]


def repair_registry() -> Dict[str, Union[RepairMethod, MLOrientedRepair]]:
    """Repair methods keyed by their paper names."""
    return {method.name: method for method in all_repair_methods()}


__all__ = [
    "ActiveCleanRepair",
    "BaranRepair",
    "BayesMissRepair",
    "BoostCleanRepair",
    "CPCleanRepair",
    "CleanLabRepair",
    "DTMissRepair",
    "DataWigMixRepair",
    "DeleteRepair",
    "FittedTabularModel",
    "GENERIC",
    "GroundTruthRepair",
    "HoloCleanRepair",
    "KNNMissRepair",
    "MLImputeRepair",
    "MLOrientedRepair",
    "ML_ORIENTED",
    "MeanModeImputeRepair",
    "MedianModeImputeRepair",
    "MissDataWigRepair",
    "MissForestMixRepair",
    "MissForestSepRepair",
    "ModeModeImputeRepair",
    "ModelRepairResult",
    "OpenRefineRepair",
    "RepairMethod",
    "RepairResult",
    "all_repair_methods",
    "blank_detected_cells",
    "repair_registry",
]
