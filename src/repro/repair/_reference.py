"""Frozen pre-vectorization repair kernels (equivalence oracles).

This module preserves the *original* scalar implementations of the
repair hot paths exactly as they were before the cleaning-stage
vectorization pass (mirroring :mod:`repro.ml._reference`):

- BARAN's per-row vicinity-statistics build (an O(rows x columns^2)
  Python loop of Counter updates), its per-candidate edit-distance scan,
  and its per-detected-cell candidate scoring dict loop;
- HoloClean's per-row co-occurrence build and its per-candidate feature
  construction calls.

The frozen functions take the repair *method instance* plus the context
and detections, and run the complete original repair pipeline, so the
property suite (``tests/test_cleaning_kernels.py``) can assert the
batched rewrites in :mod:`repro.repair.baran` and
:mod:`repro.repair.holistic` produce cell-for-cell identical repaired
tables -- including score tie-breaking, which the originals resolve by
dict insertion order.  ``benchmarks/test_cleaning_speed.py`` measures
speedups against them for the committed ``BENCH_cleaning.json``.

``tools/check_hot_loops.py`` forbids these patterns elsewhere under
``src/repro/repair/``; this file is the documented allowlist entry.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table, is_missing
from repro.ml.linear import LogisticRegression
from repro.repair.base import blank_detected_cells

# ----------------------------------------------------------------------
# BARAN
# ----------------------------------------------------------------------


def reference_baran_repair(
    method, context: CleaningContext, detections: Set[Cell]
) -> Table:
    """The original BARAN ``_repair`` pipeline, verbatim."""
    from repro.repair.baran import _learn_transformations, edit_distance

    if context.clean is None:
        raise RuntimeError("BARAN needs labeled tuples (oracle/clean data)")
    table = context.dirty
    repaired = table.copy()
    detected = sorted(
        c for c in detections
        if c[1] in table.schema and 0 <= c[0] < table.n_rows
    )
    if not detected:
        return repaired
    rng = context.rng(53)

    # --- model state ------------------------------------------------
    transformations: Dict[str, object] = {}
    for error, correction in method.revision_corpus:
        for key, fn in _learn_transformations(str(error), str(correction)):
            transformations.setdefault(key, fn)
    model_weights = {"value": 2.5, "vicinity": 1.0, "domain": 0.5}

    # Vicinity statistics: (context_column, context_value, target_column)
    # -> Counter of target values, computed once over the dirty table.
    vicinity: Dict[Tuple[str, str, str], Counter] = defaultdict(Counter)
    categorical = table.schema.categorical_names
    normalized = {
        c: [
            None if is_missing(v) else str(v).strip()
            for v in table.column(c)
        ]
        for c in categorical
    }
    for i in range(table.n_rows):
        for col_a in categorical:
            a = normalized[col_a][i]
            if a is None:
                continue
            for col_b in categorical:
                if col_b == col_a:
                    continue
                b = normalized[col_b][i]
                if b is not None:
                    vicinity[(col_a, a, col_b)][b] += 1
    domain = {
        c: Counter(v for v in normalized[c] if v is not None)
        for c in categorical
    }

    def candidates_for(row: int, column: str) -> Dict[str, float]:
        scores: Dict[str, float] = defaultdict(float)
        value = table.get_cell(row, column)
        text = None if is_missing(value) else str(value).strip()
        if text is not None:
            for fn in transformations.values():
                try:
                    out = fn(text)
                except Exception:  # noqa: BLE001 - user-derived lambdas
                    continue
                if out and out != text:
                    weight = model_weights["value"]
                    if column in categorical and domain[column].get(out, 0) < 2:
                        weight *= 0.1
                    scores[out] += weight
        if column in categorical:
            column_domain = domain[column]
            if text is not None and column_domain.get(text, 0) <= 1:
                best_candidate, best_distance = None, 3
                for candidate, count in column_domain.items():
                    if count < 2 or candidate == text:
                        continue
                    distance = edit_distance(text, candidate, cutoff=2)
                    if distance < best_distance:
                        best_candidate, best_distance = candidate, distance
                if best_candidate is not None:
                    scores[best_candidate] += model_weights["value"] * (
                        2.0 - 0.5 * best_distance
                    )
            for col_a in categorical:
                if col_a == column:
                    continue
                a = normalized[col_a][row]
                if a is None:
                    continue
                counts = vicinity[(col_a, a, column)]
                total = sum(counts.values()) or 1
                for candidate, count in counts.most_common(5):
                    scores[candidate] += (
                        model_weights["vicinity"] * count / total
                    )
            total = sum(column_domain.values()) or 1
            for candidate, count in column_domain.most_common(5):
                scores[candidate] += (
                    model_weights["domain"] * count / total
                )
        return dict(scores)

    # --- incremental training on labeled tuples ----------------------
    budget = min(method.label_budget, len(detected))
    labeled_positions = rng.choice(len(detected), size=budget, replace=False)
    labeled_cells = {detected[int(p)] for p in labeled_positions}
    for row, column in sorted(labeled_cells):
        correction = context.oracle_value((row, column))
        error_value = table.get_cell(row, column)
        if not is_missing(error_value) and not is_missing(correction):
            for key, fn in _learn_transformations(
                str(error_value).strip(), str(correction).strip()
            ):
                transformations.setdefault(key, fn)
        proposals = candidates_for(row, column)
        target = None if is_missing(correction) else str(correction).strip()
        if target is not None and proposals:
            best = max(proposals, key=proposals.get)
            if best == target:
                model_weights["vicinity"] *= 1.1
            else:
                model_weights["domain"] *= 1.05
        repaired.set_cell(row, column, correction)

    # --- correct the remaining detections ----------------------------
    numeric_means: Dict[str, float] = {}
    for row, column in detected:
        if (row, column) in labeled_cells:
            continue
        value = table.get_cell(row, column)
        text = None if is_missing(value) else str(value).strip()
        proposals = candidates_for(row, column)
        current_score = proposals.pop(text, 0.0) if text is not None else 0.0
        if proposals:
            best = max(proposals, key=proposals.get)
            if text is None or proposals[best] > current_score:
                repaired.set_cell(row, column, best)
        elif table.schema.kind_of(column) == "numerical":
            if column not in numeric_means:
                values = table.as_float(column)
                finite = values[~np.isnan(values)]
                numeric_means[column] = (
                    float(finite.mean()) if len(finite) else 0.0
                )
            repaired.set_cell(row, column, numeric_means[column])
    return repaired


# ----------------------------------------------------------------------
# HoloClean
# ----------------------------------------------------------------------


def reference_holoclean_repair(
    method, context: CleaningContext, detections: Set[Cell]
) -> Table:
    """The original HoloClean ``_repair`` pipeline, verbatim."""
    table = context.dirty
    blanked = blank_detected_cells(table, detections)
    repaired = blanked.copy()
    # FD majority votes per (cell -> value).
    fd_votes: Dict[Cell, Counter] = defaultdict(Counter)
    for fd in context.fds:
        for cell, value in fd.majority_repairs(table).items():
            fd_votes[cell][str(value).strip()] += 3  # strong signal
    normalized: Dict[str, List[Optional[str]]] = {}
    for column in table.schema.categorical_names:
        normalized[column] = [
            None if is_missing(v) else str(v).strip()
            for v in blanked.column(column)
        ]
    priors = {
        column: Counter(v for v in normalized[column] if v is not None)
        for column in normalized
    }
    # Co-occurrence counts between categorical columns (on kept cells).
    cooccurrence: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
    categorical = list(normalized)
    for i in range(table.n_rows):
        for col_a in categorical:
            a = normalized[col_a][i]
            if a is None:
                continue
            for col_b in categorical:
                if col_b == col_a:
                    continue
                b = normalized[col_b][i]
                if b is not None:
                    cooccurrence[(col_a, col_b)][(a, b)] += 1

    def candidate_features(row: int, column: str, candidate: str) -> np.ndarray:
        prior = np.log(priors[column][candidate] + 1.0)
        fd_vote = float(fd_votes.get((row, column), Counter())[candidate])
        context_loglik = 0.0
        contexts = 0
        for col_b in categorical:
            if col_b == column:
                continue
            b = normalized[col_b][row]
            if b is None:
                continue
            joint = cooccurrence[(column, col_b)][(candidate, b)]
            context_loglik += np.log(joint + 1.0)
            contexts += 1
        if contexts:
            context_loglik /= contexts
        return np.array([prior, fd_vote, context_loglik, 1.0])

    weights = _reference_learn_weights(
        method, context, detections, categorical, normalized, priors,
        candidate_features,
    )
    method.learned_weights_ = weights

    numeric_means: Dict[str, float] = {}
    for row, column in sorted(detections):
        if column not in table.schema or not (0 <= row < table.n_rows):
            continue
        if table.schema.kind_of(column) == "numerical":
            if column not in numeric_means:
                values = blanked.as_float(column)
                finite = values[~np.isnan(values)]
                numeric_means[column] = (
                    float(finite.mean()) if len(finite) else 0.0
                )
            repaired.set_cell(row, column, numeric_means[column])
            continue
        candidates = [
            v for v, _ in priors[column].most_common(method.max_candidates)
        ]
        for vote_value in fd_votes.get((row, column), ()):
            if vote_value not in candidates:
                candidates.append(vote_value)
        if not candidates:
            continue
        scores = [
            float(weights @ candidate_features(row, column, candidate))
            for candidate in candidates
        ]
        repaired.set_cell(row, column, candidates[int(np.argmax(scores))])
    return repaired


def _reference_learn_weights(
    method,
    context: CleaningContext,
    detections: Set[Cell],
    categorical: List[str],
    normalized: Dict[str, List[Optional[str]]],
    priors: Dict[str, Counter],
    candidate_features,
) -> np.ndarray:
    """The original weak-supervision weight fit, verbatim."""
    if not method.learn_weights or not categorical:
        return method._FALLBACK_WEIGHTS
    rng = context.rng(83)
    detected = set(detections)
    examples: List[np.ndarray] = []
    labels: List[int] = []
    pool: List[Tuple[int, str]] = [
        (row, column)
        for column in categorical
        for row in range(context.dirty.n_rows)
        if (row, column) not in detected
        and normalized[column][row] is not None
        and len(priors[column]) >= 2
    ]
    if len(pool) > method.max_training_cells:
        picks = rng.choice(
            len(pool), size=method.max_training_cells, replace=False
        )
        pool = [pool[int(p)] for p in picks]
    for row, column in pool:
        observed = normalized[column][row]
        examples.append(candidate_features(row, column, observed))
        labels.append(1)
        alternatives = [v for v in priors[column] if v != observed]
        negative = alternatives[int(rng.integers(len(alternatives)))]
        examples.append(candidate_features(row, column, negative))
        labels.append(0)
    if len(examples) < 20:
        return method._FALLBACK_WEIGHTS
    features = np.vstack(examples)
    targets = np.array(labels)
    n_holdout = max(4, len(features) // 4)
    order = rng.permutation(len(features))
    holdout, training = order[:n_holdout], order[n_holdout:]
    model = LogisticRegression(max_iter=200, learning_rate=0.3)
    try:
        model.fit(features[training], targets[training])
    except (ValueError, np.linalg.LinAlgError):
        return method._FALLBACK_WEIGHTS
    learned = model.coef_[:, 1] - model.coef_[:, 0]
    weights = learned[:-1].copy()
    weights[-1] += learned[-1]  # merge the intercept into the bias slot
    if not np.isfinite(weights).all():
        return method._FALLBACK_WEIGHTS
    weights[1] = max(weights[1], method._FALLBACK_WEIGHTS[1])

    def holdout_accuracy(w: np.ndarray) -> float:
        scores = features[holdout] @ w
        predictions = (scores > 0).astype(int)
        return float(np.mean(predictions == targets[holdout]))

    if holdout_accuracy(weights) >= holdout_accuracy(method._FALLBACK_WEIGHTS):
        return weights
    return method._FALLBACK_WEIGHTS
