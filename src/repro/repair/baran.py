"""BARAN: holistic, configuration-free error correction (Table 1 row 15).

BARAN (Mahdavi & Abedjan) proposes correction candidates from three context
models and combines them with an incrementally updated ensemble:

- the *value* model learns string transformations from (error, correction)
  example pairs -- case changes, character deletions/replacements, affix
  stripping -- and applies them to similar errors;
- the *vicinity* model proposes values co-occurring with the row's other
  attributes (FD-style context);
- the *domain* model proposes frequent column values.

Labels: a small budget of corrected tuples (the paper's user labels; here
the ground-truth oracle) trains per-model reliability weights, updated
incrementally after every labeled tuple.  An external revision corpus
(standing in for Wikipedia page histories) can seed extra value-model pairs.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table, is_missing
from repro.repair.base import GENERIC, RepairMethod

Transformation = Callable[[str], Optional[str]]


def _learn_transformations(error: str, correction: str) -> List[Tuple[str, Transformation]]:
    """Derive reusable string transformations from one example pair."""
    transforms: List[Tuple[str, Transformation]] = []
    if error.lower() == correction.lower():
        if correction == error.lower():
            transforms.append(("lowercase", lambda s: s.lower()))
        elif correction == error.upper():
            transforms.append(("uppercase", lambda s: s.upper()))
        elif correction == error.capitalize():
            transforms.append(("capitalize", lambda s: s.capitalize()))
    if error.replace("_", " ") == correction:
        transforms.append(("underscore_to_space", lambda s: s.replace("_", " ")))
    if error.replace(" ", "") == correction.replace(" ", "") and error != correction:
        transforms.append(("normalize_spaces", lambda s: re.sub(r"\s+", " ", s).strip()))
    for suffix in (" Inc", " inc", ".", " Ltd"):
        if error == correction + suffix:
            def strip_suffix(s: str, sfx: str = suffix) -> Optional[str]:
                return s[: -len(sfx)] if s.endswith(sfx) else None
            transforms.append((f"strip{suffix!r}", strip_suffix))
    if len(error) == len(correction) + 1:
        # A single inserted character.
        for i in range(len(error)):
            if error[:i] + error[i + 1 :] == correction:
                def drop_char(s: str, pos: int = i) -> Optional[str]:
                    return s[:pos] + s[pos + 1 :] if len(s) > pos else None
                transforms.append((f"drop_at_{i}", drop_char))
                break
    if len(error) == len(correction) and error != correction:
        diffs = [i for i in range(len(error)) if error[i] != correction[i]]
        if len(diffs) == 1:
            i = diffs[0]
            wrong, right = error[i], correction[i]
            def substitute(s: str, w: str = wrong, r: str = right) -> Optional[str]:
                return s.replace(w, r) if w in s else None
            transforms.append((f"sub_{wrong}->{right}", substitute))
    if re.sub(r"[A-Za-z]", "", error) == correction and error != correction:
        # A stray letter corrupted a numeric payload ('12a.5' -> '12.5').
        transforms.append(
            ("strip_letters", lambda s: re.sub(r"[A-Za-z]", "", s) or None)
        )
    return transforms


def edit_distance(a: str, b: str, cutoff: int = 3) -> int:
    """Levenshtein distance with an early-exit cutoff."""
    if abs(len(a) - len(b)) > cutoff:
        return cutoff + 1
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            value = min(
                previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
            )
            current.append(value)
            row_min = min(row_min, value)
        if row_min > cutoff:
            return cutoff + 1
        previous = current
    return previous[-1]


class BaranRepair(RepairMethod):
    """BARAN error correction with oracle-labeled tuples.

    Args:
        label_budget: number of tuples whose corrections the oracle reveals
            (BARAN's user labels; the paper uses ~20).
        revision_corpus: optional (error, correction) pairs from an external
            source (the Wikipedia-revision analogue) that pre-train the
            value model.
    """

    name = "BARAN"
    category = GENERIC

    def __init__(
        self,
        label_budget: int = 20,
        revision_corpus: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        if label_budget < 1:
            raise ValueError("label_budget must be >= 1")
        self.label_budget = label_budget
        self.revision_corpus = list(revision_corpus or [])

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        if context.clean is None:
            raise RuntimeError("BARAN needs labeled tuples (oracle/clean data)")
        table = context.dirty
        repaired = table.copy()
        detected = sorted(
            c for c in detections
            if c[1] in table.schema and 0 <= c[0] < table.n_rows
        )
        if not detected:
            return repaired
        rng = context.rng(53)

        # --- model state ------------------------------------------------
        transformations: Dict[str, Transformation] = {}
        for error, correction in self.revision_corpus:
            for key, fn in _learn_transformations(str(error), str(correction)):
                transformations.setdefault(key, fn)
        # The value model starts dominant: a learned transformation that
        # applies exactly to the error string is far stronger evidence than
        # contextual co-occurrence (BARAN's corrector features behave the
        # same way for typo-class errors).
        model_weights = {"value": 2.5, "vicinity": 1.0, "domain": 0.5}

        # Vicinity statistics: (context_column, context_value, target_column)
        # -> Counter of target values, computed once over the dirty table.
        vicinity: Dict[Tuple[str, str, str], Counter] = defaultdict(Counter)
        categorical = table.schema.categorical_names
        normalized = {
            c: [
                None if is_missing(v) else str(v).strip()
                for v in table.column(c)
            ]
            for c in categorical
        }
        for i in range(table.n_rows):
            for col_a in categorical:
                a = normalized[col_a][i]
                if a is None:
                    continue
                for col_b in categorical:
                    if col_b == col_a:
                        continue
                    b = normalized[col_b][i]
                    if b is not None:
                        vicinity[(col_a, a, col_b)][b] += 1
        domain = {
            c: Counter(v for v in normalized[c] if v is not None)
            for c in categorical
        }

        def candidates_for(row: int, column: str) -> Dict[str, float]:
            """Candidate scores, *including* the current value's own score.

            Scoring the current value with the same vicinity/domain models
            lets the corrector leave well-supported values alone -- the
            guard that keeps detection false positives from becoming wrong
            repairs.
            """
            scores: Dict[str, float] = defaultdict(float)
            value = table.get_cell(row, column)
            text = None if is_missing(value) else str(value).strip()
            if text is not None:
                for fn in transformations.values():
                    try:
                        out = fn(text)
                    except Exception:  # noqa: BLE001 - user-derived lambdas
                        continue
                    if out and out != text:
                        weight = model_weights["value"]
                        if column in categorical and domain[column].get(out, 0) < 2:
                            # A transform whose output never occurs in the
                            # column is likely misfiring on this cell.
                            weight *= 0.1
                        scores[out] += weight
            if column in categorical:
                column_domain = domain[column]
                if text is not None and column_domain.get(text, 0) <= 1:
                    # Character-level value model: a rare payload close (by
                    # edit distance) to a *frequent* domain value is almost
                    # certainly a typo of it.
                    best_candidate, best_distance = None, 3
                    for candidate, count in column_domain.items():
                        if count < 2 or candidate == text:
                            continue
                        distance = edit_distance(text, candidate, cutoff=2)
                        if distance < best_distance:
                            best_candidate, best_distance = candidate, distance
                    if best_candidate is not None:
                        scores[best_candidate] += model_weights["value"] * (
                            2.0 - 0.5 * best_distance
                        )
                for col_a in categorical:
                    if col_a == column:
                        continue
                    a = normalized[col_a][row]
                    if a is None:
                        continue
                    counts = vicinity[(col_a, a, column)]
                    total = sum(counts.values()) or 1
                    for candidate, count in counts.most_common(5):
                        scores[candidate] += (
                            model_weights["vicinity"] * count / total
                        )
                total = sum(column_domain.values()) or 1
                for candidate, count in column_domain.most_common(5):
                    scores[candidate] += (
                        model_weights["domain"] * count / total
                    )
            return dict(scores)

        # --- incremental training on labeled tuples ----------------------
        budget = min(self.label_budget, len(detected))
        labeled_positions = rng.choice(len(detected), size=budget, replace=False)
        labeled_cells = {detected[int(p)] for p in labeled_positions}
        for row, column in sorted(labeled_cells):
            correction = context.oracle_value((row, column))
            error_value = table.get_cell(row, column)
            if not is_missing(error_value) and not is_missing(correction):
                for key, fn in _learn_transformations(
                    str(error_value).strip(), str(correction).strip()
                ):
                    transformations.setdefault(key, fn)
            # Update model reliabilities: which model would have proposed
            # the right answer?
            proposals = candidates_for(row, column)
            target = None if is_missing(correction) else str(correction).strip()
            if target is not None and proposals:
                best = max(proposals, key=proposals.get)
                if best == target:
                    model_weights["vicinity"] *= 1.1
                else:
                    model_weights["domain"] *= 1.05
            repaired.set_cell(row, column, correction)

        # --- correct the remaining detections ----------------------------
        numeric_means: Dict[str, float] = {}
        for row, column in detected:
            if (row, column) in labeled_cells:
                continue
            value = table.get_cell(row, column)
            text = None if is_missing(value) else str(value).strip()
            proposals = candidates_for(row, column)
            current_score = proposals.pop(text, 0.0) if text is not None else 0.0
            if proposals:
                best = max(proposals, key=proposals.get)
                # Leave well-supported current values alone: changing them
                # would turn a detection false positive into a wrong repair.
                if text is None or proposals[best] > current_score:
                    repaired.set_cell(row, column, best)
            elif table.schema.kind_of(column) == "numerical":
                if column not in numeric_means:
                    values = table.as_float(column)
                    finite = values[~np.isnan(values)]
                    numeric_means[column] = (
                        float(finite.mean()) if len(finite) else 0.0
                    )
                repaired.set_cell(row, column, numeric_means[column])
        return repaired
