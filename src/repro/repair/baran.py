"""BARAN: holistic, configuration-free error correction (Table 1 row 15).

BARAN (Mahdavi & Abedjan) proposes correction candidates from three context
models and combines them with an incrementally updated ensemble:

- the *value* model learns string transformations from (error, correction)
  example pairs -- case changes, character deletions/replacements, affix
  stripping -- and applies them to similar errors;
- the *vicinity* model proposes values co-occurring with the row's other
  attributes (FD-style context);
- the *domain* model proposes frequent column values.

Labels: a small budget of corrected tuples (the paper's user labels; here
the ground-truth oracle) trains per-model reliability weights, updated
incrementally after every labeled tuple.  An external revision corpus
(standing in for Wikipedia page histories) can seed extra value-model pairs.

The correction pass is batched: after the (small) labeled training loop,
every remaining detected cell in a column is scored in one numpy pass.
The candidate stream is generated segment by segment in the exact order
the scalar scorer touched its ``scores`` dict -- transformations, typo
scan, vicinity per context column, domain top-5 -- so ``np.add.at``
reproduces each cell's float accumulation sequence and ``np.minimum.at``
over stream positions reproduces dict-insertion first-touch order, the
tie-breaker of ``max(proposals, key=proposals.get)``.  The frozen scalar
pipeline lives in :func:`repro.repair._reference.reference_baran_repair`
and ``tests/test_cleaning_kernels.py`` proves the two produce identical
repaired tables.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.columnar import (
    first_occurrence_order,
    intern_values,
    normalized_column,
)
from repro.dataset.table import Cell, Table, is_missing
from repro.kernels import kernel_stage, use_reference_kernels
from repro.repair._reference import reference_baran_repair
from repro.repair.base import GENERIC, RepairMethod

Transformation = Callable[[str], Optional[str]]

#: Cells scored per numpy batch; bounds the (cells x candidates) score
#: matrix while amortizing the per-distinct candidate generation.
_SCORE_CHUNK = 1024

_NEVER = np.iinfo(np.int64).max


def _learn_transformations(error: str, correction: str) -> List[Tuple[str, Transformation]]:
    """Derive reusable string transformations from one example pair."""
    transforms: List[Tuple[str, Transformation]] = []
    if error.lower() == correction.lower():
        if correction == error.lower():
            transforms.append(("lowercase", lambda s: s.lower()))
        elif correction == error.upper():
            transforms.append(("uppercase", lambda s: s.upper()))
        elif correction == error.capitalize():
            transforms.append(("capitalize", lambda s: s.capitalize()))
    if error.replace("_", " ") == correction:
        transforms.append(("underscore_to_space", lambda s: s.replace("_", " ")))
    if error.replace(" ", "") == correction.replace(" ", "") and error != correction:
        transforms.append(("normalize_spaces", lambda s: re.sub(r"\s+", " ", s).strip()))
    for suffix in (" Inc", " inc", ".", " Ltd"):
        if error == correction + suffix:
            def strip_suffix(s: str, sfx: str = suffix) -> Optional[str]:
                return s[: -len(sfx)] if s.endswith(sfx) else None
            transforms.append((f"strip{suffix!r}", strip_suffix))
    if len(error) == len(correction) + 1:
        # A single inserted character.
        for i in range(len(error)):
            if error[:i] + error[i + 1 :] == correction:
                def drop_char(s: str, pos: int = i) -> Optional[str]:
                    return s[:pos] + s[pos + 1 :] if len(s) > pos else None
                transforms.append((f"drop_at_{i}", drop_char))
                break
    if len(error) == len(correction) and error != correction:
        diffs = [i for i in range(len(error)) if error[i] != correction[i]]
        if len(diffs) == 1:
            i = diffs[0]
            wrong, right = error[i], correction[i]
            def substitute(s: str, w: str = wrong, r: str = right) -> Optional[str]:
                return s.replace(w, r) if w in s else None
            transforms.append((f"sub_{wrong}->{right}", substitute))
    if re.sub(r"[A-Za-z]", "", error) == correction and error != correction:
        # A stray letter corrupted a numeric payload ('12a.5' -> '12.5').
        transforms.append(
            ("strip_letters", lambda s: re.sub(r"[A-Za-z]", "", s) or None)
        )
    return transforms


def edit_distance(a: str, b: str, cutoff: int = 3) -> int:
    """Levenshtein distance with an early-exit cutoff."""
    if abs(len(a) - len(b)) > cutoff:
        return cutoff + 1
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            value = min(
                previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
            )
            current.append(value)
            row_min = min(row_min, value)
        if row_min > cutoff:
            return cutoff + 1
        previous = current
    return previous[-1]


def _strip_or_none(value: object) -> Optional[str]:
    return None if is_missing(value) else str(value).strip()


def _char_matrix(strings: List[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Pad strings into an ``ord`` matrix (``-1`` pad) plus lengths."""
    lengths = np.fromiter(
        (len(s) for s in strings), np.int64, count=len(strings)
    )
    width = int(lengths.max()) if len(strings) else 0
    chars = np.full((len(strings), width), -1, dtype=np.int64)
    for k, s in enumerate(strings):
        if s:
            chars[k, : len(s)] = np.fromiter(map(ord, s), np.int64, count=len(s))
    return chars, lengths


def _edit_distances_capped(
    text: str, chars: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """``min(edit_distance(text, cand, cutoff=2) , 3)`` for all candidates.

    One banded Levenshtein DP over every candidate at once.  The inner
    ``current[j-1] + 1`` dependency is resolved with the prefix-min
    identity ``current = j + running_min(temp[k] - k)``, which is exact
    on integers.  The scalar's early exits (length band, per-row
    minimum above the cutoff) only ever produce values ``> 2``, so
    capping at 3 preserves every ``distance < best_distance`` decision
    the scalar typo scan makes.
    """
    n, width = chars.shape
    la = len(text)
    result = np.full(n, 3, dtype=np.int64)
    live = np.abs(lengths - la) <= 2
    if la == 0:
        result[live] = np.minimum(lengths[live], 3)
        return result
    if not live.any():
        return result
    cols = np.arange(width + 1, dtype=np.int64)
    previous = np.repeat(cols[None, :], n, axis=0)
    valid = cols[None, 1:] <= lengths[:, None]
    for i, ch in enumerate(text, start=1):
        cost = (chars != ord(ch)).astype(np.int64)
        stacked = np.empty((n, width + 1), dtype=np.int64)
        stacked[:, 0] = i
        if width:
            stacked[:, 1:] = np.minimum(
                previous[:, 1:] + 1, previous[:, :-1] + cost
            )
        current = (
            np.minimum.accumulate(stacked - cols[None, :], axis=1)
            + cols[None, :]
        )
        if width:
            row_min = np.minimum(
                i, np.where(valid, current[:, 1:], _NEVER).min(axis=1)
            )
        else:
            row_min = np.full(n, i, dtype=np.int64)
        live &= row_min <= 2
        if not live.any():
            return result
        previous = current
    final = previous[np.arange(n), lengths]
    result[live] = np.minimum(final[live], 3)
    return result


def _build_context_models(
    table: Table, categorical: Sequence[str]
) -> Tuple[
    Dict[str, List[Optional[str]]],
    Dict[Tuple[str, str, str], Counter],
    Dict[str, Counter],
]:
    """Vicinity and domain statistics, identical to the scalar build.

    The scalar kernel walked every row once per column pair, updating
    Counters cell by cell.  Here each column is interned once and every
    (context value, target value) pair is counted with one vectorized
    group-by per column pair; the Counters are then rebuilt in
    first-occurrence order so their key insertion order -- which
    ``most_common`` tie-breaking observes -- matches the scalar build
    exactly.
    """
    normalized = {
        c: normalized_column(table.column(c), _strip_or_none)
        for c in categorical
    }
    uids: Dict[str, np.ndarray] = {}
    distinct: Dict[str, List[str]] = {}
    for c in categorical:
        uids[c], distinct[c] = intern_values(normalized[c])
    vicinity: Dict[Tuple[str, str, str], Counter] = defaultdict(Counter)
    for col_a in categorical:
        for col_b in categorical:
            if col_b == col_a:
                continue
            both = (uids[col_a] >= 0) & (uids[col_b] >= 0)
            if not both.any():
                continue
            width = len(distinct[col_b])
            codes = uids[col_a][both] * width + uids[col_b][both]
            pair_codes, pair_counts, _, _ = first_occurrence_order(codes)
            names_a, names_b = distinct[col_a], distinct[col_b]
            for code, count in zip(pair_codes.tolist(), pair_counts.tolist()):
                key = (col_a, names_a[code // width], col_b)
                vicinity[key][names_b[code % width]] = count
    domain: Dict[str, Counter] = {}
    for c in categorical:
        present = uids[c][uids[c] >= 0]
        values, counts, _, _ = first_occurrence_order(present)
        counter: Counter = Counter()
        names = distinct[c]
        for uid, count in zip(values.tolist(), counts.tolist()):
            counter[names[uid]] = count
        domain[c] = counter
    return normalized, vicinity, domain


def _score_pending_cells(
    table: Table,
    repaired: Table,
    pending: List[Cell],
    transformations: Dict[str, Transformation],
    model_weights: Dict[str, float],
    categorical: Sequence[str],
    normalized: Dict[str, List[Optional[str]]],
    vicinity: Dict[Tuple[str, str, str], Counter],
    domain: Dict[str, Counter],
) -> None:
    """Score and correct every unlabeled detected cell, batched by column."""
    by_column: Dict[str, List[int]] = {}
    for cell_row, column in pending:
        by_column.setdefault(column, []).append(cell_row)
    numeric_means: Dict[str, float] = {}
    for column, cell_rows in by_column.items():
        _score_column(
            table, repaired, column, cell_rows, transformations,
            model_weights, categorical, normalized, vicinity, domain,
            numeric_means,
        )


def _score_column(
    table: Table,
    repaired: Table,
    column: str,
    cell_rows: List[int],
    transformations: Dict[str, Transformation],
    model_weights: Dict[str, float],
    categorical: Sequence[str],
    normalized: Dict[str, List[Optional[str]]],
    vicinity: Dict[Tuple[str, str, str], Counter],
    domain: Dict[str, Counter],
    numeric_means: Dict[str, float],
) -> None:
    is_cat = column in categorical
    if is_cat:
        texts_all = normalized[column]
        texts = [texts_all[i] for i in cell_rows]
        column_domain = domain[column]
        eligible = [c for c, count in column_domain.items() if count >= 2]
        eligible_chars, eligible_lens = _char_matrix(eligible)
        domain_total = sum(column_domain.values()) or 1
        domain_entries = [
            (cand, model_weights["domain"] * count / domain_total)
            for cand, count in column_domain.most_common(5)
        ]
    else:
        # Numeric columns only need the detected cells' texts; normalizing
        # the full column would cost O(rows) for O(detections) work.
        column_values = table.column(column)
        texts = normalized_column(
            [column_values[i] for i in cell_rows], _strip_or_none
        )
        column_domain = None
        eligible = []
        domain_entries = []
    transform_fns = list(transformations.values())
    value_weight = model_weights["value"]

    # Candidate generation is memoized per *distinct* payload/context
    # value; entry lists preserve the scalar scorer's touch order.
    transform_cache: Dict[str, List[Tuple[str, float]]] = {}
    typo_cache: Dict[str, Optional[Tuple[str, float]]] = {}
    vicinity_cache: Dict[Tuple[str, str], List[Tuple[str, float]]] = {}

    def transform_entries(text: str) -> List[Tuple[str, float]]:
        entries = transform_cache.get(text)
        if entries is None:
            entries = transform_cache[text] = []
            for fn in transform_fns:
                try:
                    out = fn(text)
                except Exception:  # noqa: BLE001 - user-derived lambdas
                    continue
                if out and out != text:
                    weight = value_weight
                    if is_cat and column_domain.get(out, 0) < 2:
                        # A transform whose output never occurs in the
                        # column is likely misfiring on this cell.
                        weight *= 0.1
                    entries.append((out, weight))
        return entries

    def typo_entry(text: str) -> Optional[Tuple[str, float]]:
        # Character-level value model: a rare payload close (by edit
        # distance) to a *frequent* domain value is almost certainly a
        # typo of it.
        if text in typo_cache:
            return typo_cache[text]
        entry = None
        if eligible:
            distances = _edit_distances_capped(
                text, eligible_chars, eligible_lens
            )
            best = int(np.argmin(distances))
            if distances[best] < 3:
                entry = (
                    eligible[best],
                    value_weight * (2.0 - 0.5 * int(distances[best])),
                )
        typo_cache[text] = entry
        return entry

    def vicinity_entries(col_a: str, context_value: str) -> List[Tuple[str, float]]:
        key = (col_a, context_value)
        entries = vicinity_cache.get(key)
        if entries is None:
            counts = vicinity.get((col_a, context_value, column))
            entries = []
            if counts:
                total = sum(counts.values()) or 1
                entries = [
                    (cand, model_weights["vicinity"] * count / total)
                    for cand, count in counts.most_common(5)
                ]
            vicinity_cache[key] = entries
        return entries

    for lo in range(0, len(cell_rows), _SCORE_CHUNK):
        _score_chunk(
            table, repaired, column, cell_rows[lo : lo + _SCORE_CHUNK],
            texts[lo : lo + _SCORE_CHUNK], is_cat, categorical, normalized,
            column_domain, transform_entries, typo_entry, vicinity_entries,
            domain_entries, numeric_means,
        )


def _score_chunk(
    table: Table,
    repaired: Table,
    column: str,
    chunk_rows: List[int],
    chunk_texts: List[Optional[str]],
    is_cat: bool,
    categorical: Sequence[str],
    normalized: Dict[str, List[Optional[str]]],
    column_domain: Optional[Counter],
    transform_entries,
    typo_entry,
    vicinity_entries,
    domain_entries: List[Tuple[str, float]],
    numeric_means: Dict[str, float],
) -> None:
    """One batched replay of the scalar ``candidates_for`` + argmax loop.

    Candidate contributions are emitted segment by segment in the exact
    order the scalar scorer added them to each cell's ``scores`` dict.
    ``np.add.at`` (unbuffered, in index order) then reproduces every
    per-slot float accumulation sequence, and the minimum stream
    position per slot reproduces dict key insertion order, so the
    argmax-with-first-max-tie-break matches ``max(proposals,
    key=proposals.get)`` bit for bit.
    """
    n_cells = len(chunk_rows)
    cand_ids: Dict[str, int] = {}
    cand_list: List[str] = []
    seg_cells: List[np.ndarray] = []
    seg_cands: List[np.ndarray] = []
    seg_weights: List[np.ndarray] = []

    def intern_candidate(value: str) -> int:
        uid = cand_ids.get(value)
        if uid is None:
            uid = cand_ids[value] = len(cand_list)
            cand_list.append(value)
        return uid

    def emit(members: np.ndarray, entries: List[Tuple[str, float]]) -> None:
        if not len(members) or not entries:
            return
        ids = np.fromiter(
            (intern_candidate(v) for v, _ in entries),
            np.int64, count=len(entries),
        )
        weights = np.fromiter(
            (w for _, w in entries), np.float64, count=len(entries)
        )
        seg_cells.append(np.repeat(members, len(entries)))
        seg_cands.append(np.tile(ids, len(members)))
        seg_weights.append(np.tile(weights, len(members)))

    text_uids, text_distinct = intern_values(chunk_texts)
    # Segment 1 -- value model: learned transformations.
    for uid, text in enumerate(text_distinct):
        emit(np.flatnonzero(text_uids == uid), transform_entries(text))
    if is_cat:
        # Segment 2 -- character-level value model (typo scan).
        for uid, text in enumerate(text_distinct):
            if column_domain.get(text, 0) <= 1:
                entry = typo_entry(text)
                if entry is not None:
                    emit(np.flatnonzero(text_uids == uid), [entry])
        # Segment 3 -- vicinity model, per context column in order.
        for col_a in categorical:
            if col_a == column:
                continue
            context_column = normalized[col_a]
            context_uids, context_distinct = intern_values(
                [context_column[i] for i in chunk_rows]
            )
            for uid, context_value in enumerate(context_distinct):
                emit(
                    np.flatnonzero(context_uids == uid),
                    vicinity_entries(col_a, context_value),
                )
        # Segment 4 -- domain model: same top-5 for every cell.
        emit(np.arange(n_cells, dtype=np.int64), domain_entries)

    if cand_list:
        n_cands = len(cand_list)
        cells = np.concatenate(seg_cells)
        cands = np.concatenate(seg_cands)
        weights = np.concatenate(seg_weights)
        slots = cells * n_cands + cands
        scores = np.zeros(n_cells * n_cands)
        np.add.at(scores, slots, weights)
        first_touch = np.full(n_cells * n_cands, _NEVER, dtype=np.int64)
        np.minimum.at(
            first_touch, slots, np.arange(len(slots), dtype=np.int64)
        )
        score_matrix = scores.reshape(n_cells, n_cands)
        rank_matrix = first_touch.reshape(n_cells, n_cands)
        touched = rank_matrix < _NEVER
        has_text = np.fromiter(
            (t is not None for t in chunk_texts), bool, count=n_cells
        )
        own_ids = np.fromiter(
            (
                cand_ids.get(t, -1) if t is not None else -1
                for t in chunk_texts
            ),
            np.int64, count=n_cells,
        )
        index = np.arange(n_cells)
        owned = own_ids >= 0
        # ``proposals.pop(text, 0.0)``: read the cell's own score, then
        # remove it from the candidate pool.
        current_scores = np.zeros(n_cells)
        current_scores[owned] = score_matrix[index[owned], own_ids[owned]]
        touched[index[owned], own_ids[owned]] = False
        masked = np.where(touched, score_matrix, -np.inf)
        best_score = masked.max(axis=1)
        has_proposals = touched.any(axis=1)
        tie_rank = np.where(
            touched & (masked == best_score[:, None]), rank_matrix, _NEVER
        )
        best_id = np.argmin(tie_rank, axis=1)
        # Leave well-supported current values alone: changing them would
        # turn a detection false positive into a wrong repair.
        accept = has_proposals & (~has_text | (best_score > current_scores))
        for k in np.flatnonzero(accept).tolist():
            repaired.set_cell(chunk_rows[k], column, cand_list[int(best_id[k])])
    else:
        has_proposals = np.zeros(n_cells, dtype=bool)
    unproposed = np.flatnonzero(~has_proposals)
    if len(unproposed) and table.schema.kind_of(column) == "numerical":
        if column not in numeric_means:
            values = table.as_float(column)
            finite = values[~np.isnan(values)]
            numeric_means[column] = (
                float(finite.mean()) if len(finite) else 0.0
            )
        for k in unproposed.tolist():
            repaired.set_cell(chunk_rows[k], column, numeric_means[column])


class BaranRepair(RepairMethod):
    """BARAN error correction with oracle-labeled tuples.

    Args:
        label_budget: number of tuples whose corrections the oracle reveals
            (BARAN's user labels; the paper uses ~20).
        revision_corpus: optional (error, correction) pairs from an external
            source (the Wikipedia-revision analogue) that pre-train the
            value model.
    """

    name = "BARAN"
    category = GENERIC

    def __init__(
        self,
        label_budget: int = 20,
        revision_corpus: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        if label_budget < 1:
            raise ValueError("label_budget must be >= 1")
        self.label_budget = label_budget
        self.revision_corpus = list(revision_corpus or [])

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        if use_reference_kernels():
            return reference_baran_repair(self, context, detections)
        if context.clean is None:
            raise RuntimeError("BARAN needs labeled tuples (oracle/clean data)")
        table = context.dirty
        repaired = table.copy()
        detected = sorted(
            c for c in detections
            if c[1] in table.schema and 0 <= c[0] < table.n_rows
        )
        if not detected:
            return repaired
        rng = context.rng(53)

        # --- model state ------------------------------------------------
        transformations: Dict[str, Transformation] = {}
        for error, correction in self.revision_corpus:
            for key, fn in _learn_transformations(str(error), str(correction)):
                transformations.setdefault(key, fn)
        # The value model starts dominant: a learned transformation that
        # applies exactly to the error string is far stronger evidence than
        # contextual co-occurrence (BARAN's corrector features behave the
        # same way for typo-class errors).
        model_weights = {"value": 2.5, "vicinity": 1.0, "domain": 0.5}

        # Vicinity statistics: (context_column, context_value, target_column)
        # -> Counter of target values, computed once over the dirty table.
        categorical = table.schema.categorical_names
        with kernel_stage("baran.context"):
            normalized, vicinity, domain = _build_context_models(
                table, categorical
            )

        def candidates_for(row: int, column: str) -> Dict[str, float]:
            """Candidate scores, *including* the current value's own score.

            Scoring the current value with the same vicinity/domain models
            lets the corrector leave well-supported values alone -- the
            guard that keeps detection false positives from becoming wrong
            repairs.  Only the (label-budget-bounded) training loop calls
            this; the correction pass replays the same accumulation
            batched in :func:`_score_pending_cells`.
            """
            scores: Dict[str, float] = defaultdict(float)
            value = table.get_cell(row, column)
            text = None if is_missing(value) else str(value).strip()
            if text is not None:
                for fn in transformations.values():
                    try:
                        out = fn(text)
                    except Exception:  # noqa: BLE001 - user-derived lambdas
                        continue
                    if out and out != text:
                        weight = model_weights["value"]
                        if column in categorical and domain[column].get(out, 0) < 2:
                            # A transform whose output never occurs in the
                            # column is likely misfiring on this cell.
                            weight *= 0.1
                        scores[out] += weight
            if column in categorical:
                column_domain = domain[column]
                if text is not None and column_domain.get(text, 0) <= 1:
                    # Character-level value model: a rare payload close (by
                    # edit distance) to a *frequent* domain value is almost
                    # certainly a typo of it.
                    best_candidate, best_distance = None, 3
                    for candidate, count in column_domain.items():
                        if count < 2 or candidate == text:
                            continue
                        distance = edit_distance(text, candidate, cutoff=2)
                        if distance < best_distance:
                            best_candidate, best_distance = candidate, distance
                    if best_candidate is not None:
                        scores[best_candidate] += model_weights["value"] * (
                            2.0 - 0.5 * best_distance
                        )
                for col_a in categorical:
                    if col_a == column:
                        continue
                    a = normalized[col_a][row]
                    if a is None:
                        continue
                    counts = vicinity[(col_a, a, column)]
                    total = sum(counts.values()) or 1
                    for candidate, count in counts.most_common(5):
                        scores[candidate] += (
                            model_weights["vicinity"] * count / total
                        )
                total = sum(column_domain.values()) or 1
                for candidate, count in column_domain.most_common(5):
                    scores[candidate] += (
                        model_weights["domain"] * count / total
                    )
            return dict(scores)

        # --- incremental training on labeled tuples ----------------------
        budget = min(self.label_budget, len(detected))
        labeled_positions = rng.choice(len(detected), size=budget, replace=False)
        labeled_cells = {detected[int(p)] for p in labeled_positions}
        for row, column in sorted(labeled_cells):
            correction = context.oracle_value((row, column))
            error_value = table.get_cell(row, column)
            if not is_missing(error_value) and not is_missing(correction):
                for key, fn in _learn_transformations(
                    str(error_value).strip(), str(correction).strip()
                ):
                    transformations.setdefault(key, fn)
            # Update model reliabilities: which model would have proposed
            # the right answer?
            proposals = candidates_for(row, column)
            target = None if is_missing(correction) else str(correction).strip()
            if target is not None and proposals:
                best = max(proposals, key=proposals.get)
                if best == target:
                    model_weights["vicinity"] *= 1.1
                else:
                    model_weights["domain"] *= 1.05
            repaired.set_cell(row, column, correction)

        # --- correct the remaining detections ----------------------------
        pending = [c for c in detected if c not in labeled_cells]
        with kernel_stage("baran.score"):
            _score_pending_cells(
                table, repaired, pending, transformations, model_weights,
                categorical, normalized, vicinity, domain,
            )
        return repaired
