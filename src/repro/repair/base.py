"""Repair-method protocol and result types.

Generic repair methods (Table 1, category I) map a dirty table plus a set of
detected cells to a *repaired table*.  ML-oriented methods (category II:
ActiveClean, BoostClean, CPClean) jointly optimise cleaning and modeling and
return a fitted *model* instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Set

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table

GENERIC = "generic"
ML_ORIENTED = "ml-oriented"


@dataclass
class RepairResult:
    """Output of a generic repair method."""

    method: str
    repaired: Table
    runtime_seconds: float
    metadata: Dict[str, Any] = field(default_factory=dict)


class RepairMethod:
    """Base class for generic repair methods.

    Subclasses implement :meth:`_repair`; :meth:`repair` adds timing.
    """

    name: str = "repair"
    category: str = GENERIC

    def repair(
        self, context: CleaningContext, detections: Iterable[Cell]
    ) -> RepairResult:
        context.check_deadline(f"{self.name}.repair")
        clock = context.clock or time.perf_counter
        started = clock()
        output = self._repair(context, set(detections))
        elapsed = clock() - started
        if isinstance(output, tuple):
            repaired, metadata = output
        else:
            repaired, metadata = output, {}
        return RepairResult(self.name, repaired, elapsed, metadata)

    def _repair(self, context: CleaningContext, detections: Set[Cell]):
        """Return the repaired table, optionally ``(table, metadata)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class ModelRepairResult:
    """Output of an ML-oriented repair method: a trained model."""

    method: str
    model: Any
    runtime_seconds: float
    metadata: Dict[str, Any] = field(default_factory=dict)


class MLOrientedRepair:
    """Base class for methods that output models rather than tables."""

    name: str = "ml-repair"
    category: str = ML_ORIENTED

    def fit(
        self, context: CleaningContext, detections: Iterable[Cell]
    ) -> ModelRepairResult:
        context.check_deadline(f"{self.name}.fit")
        clock = context.clock or time.perf_counter
        started = clock()
        model, metadata = self._fit(context, set(detections))
        elapsed = clock() - started
        return ModelRepairResult(self.name, model, elapsed, metadata)

    def _fit(self, context: CleaningContext, detections: Set[Cell]):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def blank_detected_cells(table: Table, detections: Set[Cell]) -> Table:
    """Copy the table with every detected cell set to missing.

    This is the canonical first step of impute-style repairs: detected
    errors become holes for the imputer to fill.
    """
    blanked = table.copy()
    for row, column in detections:
        if column in table.schema and 0 <= row < table.n_rows:
            blanked.set_cell(row, column, None)
    return blanked
