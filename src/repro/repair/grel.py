"""A miniature GREL (Google Refine Expression Language) engine.

OpenRefine repairs data through GREL expressions such as::

    value.trim().toLowercase().replace("_", " ")
    if(isBlank(value), "unknown", value)
    cells["city"].value + ", " + cells["state"].value

This module implements the subset REIN's OpenRefine repair path needs:

- the ``value`` variable (current cell) and ``cells["col"].value`` access;
- string methods: ``trim, toLowercase, toUppercase, toTitlecase, replace,
  substring, length, startsWith, endsWith, contains, split, strip``;
- numeric coercion ``toNumber`` and arithmetic ``+ - * /``;
- functions: ``if(cond, a, b), isBlank(v), coalesce(a, b), concat(...)``;
- comparison operators ``== != < <= > >=`` and string concatenation.

Expressions are parsed into an AST once and can then be evaluated per row.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from repro.dataset.table import Table, coerce_float, is_missing


class GrelError(ValueError):
    """Raised for syntax or evaluation errors in a GREL expression."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>==|!=|<=|>=|[+\-*/<>.,()\[\]])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str


def tokenize(expression: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            raise GrelError(
                f"unexpected character {expression[position]!r} at "
                f"position {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(Token(kind, match.group()))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
class Node:
    def evaluate(self, env: Dict[str, Any]) -> Any:
        raise NotImplementedError


@dataclass
class Literal(Node):
    value: Any

    def evaluate(self, env: Dict[str, Any]) -> Any:
        return self.value


@dataclass
class Variable(Node):
    name: str

    def evaluate(self, env: Dict[str, Any]) -> Any:
        if self.name == "value":
            return env.get("value")
        if self.name == "cells":
            return env.get("cells", {})
        if self.name in ("true", "false"):
            return self.name == "true"
        if self.name == "null":
            return None
        raise GrelError(f"unknown variable {self.name!r}")


@dataclass
class Index(Node):
    target: Node
    key: Node

    def evaluate(self, env: Dict[str, Any]) -> Any:
        container = self.target.evaluate(env)
        key = self.key.evaluate(env)
        if isinstance(container, dict):
            if key not in container:
                raise GrelError(f"unknown column {key!r}")
            return container[key]
        if isinstance(container, list):
            return container[int(key)]
        raise GrelError(f"cannot index into {type(container).__name__}")


@dataclass
class Member(Node):
    """Attribute access: ``cells["x"].value`` -- only `.value` for dicts."""

    target: Node
    name: str

    def evaluate(self, env: Dict[str, Any]) -> Any:
        container = self.target.evaluate(env)
        if self.name == "value":
            return container
        raise GrelError(f"unknown attribute {self.name!r}")


def _as_text(value: Any) -> str:
    """String view of a value; only true nulls blank out.

    Unlike :func:`is_missing`, a whitespace or ``"NA"`` *string* stays
    verbatim here -- GREL expressions manipulate exact payloads.
    """
    if value is None:
        return ""
    if isinstance(value, float) and value != value:  # NaN
        return ""
    return str(value)


def _method_replace(value: Any, old: Any, new: Any) -> str:
    return _as_text(value).replace(_as_text(old), _as_text(new))


def _method_substring(value: Any, start: Any, end: Any = None) -> str:
    text = _as_text(value)
    lo = int(start)
    hi = int(end) if end is not None else len(text)
    return text[lo:hi]


_METHODS: Dict[str, Callable[..., Any]] = {
    "trim": lambda v: _as_text(v).strip(),
    "strip": lambda v: _as_text(v).strip(),
    "toLowercase": lambda v: _as_text(v).lower(),
    "toUppercase": lambda v: _as_text(v).upper(),
    "toTitlecase": lambda v: _as_text(v).title(),
    "replace": _method_replace,
    "substring": _method_substring,
    "length": lambda v: len(_as_text(v)),
    "startsWith": lambda v, prefix: _as_text(v).startswith(_as_text(prefix)),
    "endsWith": lambda v, suffix: _as_text(v).endswith(_as_text(suffix)),
    "contains": lambda v, needle: _as_text(needle) in _as_text(v),
    "split": lambda v, sep: _as_text(v).split(_as_text(sep)),
    "toNumber": lambda v: coerce_float(v),
}


def _fn_if(condition: Any, then_value: Any, else_value: Any) -> Any:
    return then_value if condition else else_value


_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "if": _fn_if,
    "isBlank": lambda v: is_missing(v),
    "coalesce": lambda *vs: next((v for v in vs if not is_missing(v)), None),
    "concat": lambda *vs: "".join(_as_text(v) for v in vs),
    "length": lambda v: len(_as_text(v)),
    "toNumber": lambda v: coerce_float(v),
}


@dataclass
class MethodCall(Node):
    target: Node
    name: str
    args: List[Node]

    def evaluate(self, env: Dict[str, Any]) -> Any:
        if self.name not in _METHODS:
            raise GrelError(f"unknown method {self.name!r}")
        receiver = self.target.evaluate(env)
        arguments = [a.evaluate(env) for a in self.args]
        return _METHODS[self.name](receiver, *arguments)


@dataclass
class FunctionCall(Node):
    name: str
    args: List[Node]

    def evaluate(self, env: Dict[str, Any]) -> Any:
        if self.name not in _FUNCTIONS:
            raise GrelError(f"unknown function {self.name!r}")
        arguments = [a.evaluate(env) for a in self.args]
        return _FUNCTIONS[self.name](*arguments)


def _numeric_pair(a: Any, b: Any):
    fa, fb = coerce_float(a), coerce_float(b)
    if fa == fa and fb == fb:  # neither is NaN
        return fa, fb
    return None


@dataclass
class BinaryOp(Node):
    op: str
    left: Node
    right: Node

    def evaluate(self, env: Dict[str, Any]) -> Any:
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "+":
            pair = _numeric_pair(a, b)
            if pair is not None and not (
                isinstance(a, str) or isinstance(b, str)
            ):
                return pair[0] + pair[1]
            return _as_text(a) + _as_text(b)
        if self.op in ("-", "*", "/"):
            pair = _numeric_pair(a, b)
            if pair is None:
                raise GrelError(f"non-numeric operands for {self.op!r}")
            if self.op == "-":
                return pair[0] - pair[1]
            if self.op == "*":
                return pair[0] * pair[1]
            if pair[1] == 0:
                raise GrelError("division by zero")
            return pair[0] / pair[1]
        if self.op in ("==", "!="):
            from repro.dataset.table import values_equal

            equal = values_equal(a, b)
            return equal if self.op == "==" else not equal
        pair = _numeric_pair(a, b)
        if pair is not None:
            a, b = pair
        else:
            a, b = _as_text(a), _as_text(b)
        if self.op == "<":
            return a < b
        if self.op == "<=":
            return a <= b
        if self.op == ">":
            return a > b
        if self.op == ">=":
            return a >= b
        raise GrelError(f"unknown operator {self.op!r}")


# ----------------------------------------------------------------------
# Parser (recursive descent)
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise GrelError("unexpected end of expression")
        self.position += 1
        return token

    def expect(self, text: str) -> None:
        token = self.advance()
        if token.text != text:
            raise GrelError(f"expected {text!r}, got {token.text!r}")

    def parse(self) -> Node:
        node = self.comparison()
        if self.peek() is not None:
            raise GrelError(f"trailing input at {self.peek().text!r}")
        return node

    def comparison(self) -> Node:
        node = self.additive()
        while self.peek() and self.peek().text in ("==", "!=", "<", "<=", ">", ">="):
            op = self.advance().text
            node = BinaryOp(op, node, self.additive())
        return node

    def additive(self) -> Node:
        node = self.multiplicative()
        while self.peek() and self.peek().text in ("+", "-"):
            op = self.advance().text
            node = BinaryOp(op, node, self.multiplicative())
        return node

    def multiplicative(self) -> Node:
        node = self.postfix()
        while self.peek() and self.peek().text in ("*", "/"):
            op = self.advance().text
            node = BinaryOp(op, node, self.postfix())
        return node

    def postfix(self) -> Node:
        node = self.primary()
        while True:
            token = self.peek()
            if token is None:
                return node
            if token.text == ".":
                self.advance()
                name = self.advance()
                if name.kind != "name":
                    raise GrelError(f"expected name after '.', got {name.text!r}")
                if self.peek() and self.peek().text == "(":
                    self.advance()
                    args = self.arguments()
                    node = MethodCall(node, name.text, args)
                else:
                    node = Member(node, name.text)
            elif token.text == "[":
                self.advance()
                key = self.comparison()
                self.expect("]")
                node = Index(node, key)
            else:
                return node

    def arguments(self) -> List[Node]:
        args: List[Node] = []
        if self.peek() and self.peek().text == ")":
            self.advance()
            return args
        while True:
            args.append(self.comparison())
            token = self.advance()
            if token.text == ")":
                return args
            if token.text != ",":
                raise GrelError(f"expected ',' or ')', got {token.text!r}")

    def primary(self) -> Node:
        token = self.advance()
        if token.kind == "number":
            return Literal(float(token.text))
        if token.kind == "string":
            body = token.text[1:-1]
            body = body.replace('\\"', '"').replace("\\'", "'")
            body = body.replace("\\\\", "\\")
            return Literal(body)
        if token.text == "(":
            node = self.comparison()
            self.expect(")")
            return node
        if token.text == "-":
            inner = self.postfix()
            return BinaryOp("-", Literal(0.0), inner)
        if token.kind == "name":
            if self.peek() and self.peek().text == "(":
                self.advance()
                args = self.arguments()
                return FunctionCall(token.text, args)
            return Variable(token.text)
        raise GrelError(f"unexpected token {token.text!r}")


class GrelExpression:
    """A parsed, reusable GREL expression."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._ast = _Parser(tokenize(source)).parse()

    def evaluate(self, value: Any, cells: Optional[Dict[str, Any]] = None) -> Any:
        """Evaluate against one cell value (and optionally the full row)."""
        env = {"value": value, "cells": cells or {}}
        return self._ast.evaluate(env)

    def apply_to_column(self, table: Table, column: str) -> Table:
        """Return a copy of *table* with the expression applied column-wise."""
        out = table.copy()
        column_names = table.column_names
        for row in range(table.n_rows):
            cells = {name: table.get_cell(row, name) for name in column_names}
            out.set_cell(
                row, column, self.evaluate(table.get_cell(row, column), cells)
            )
        return out

    def __repr__(self) -> str:
        return f"GrelExpression({self.source!r})"
