"""Holistic signal-combining repairs: HoloClean, OpenRefine, and CleanLab's
repair side (Table 1 rows 13, 14, 16)."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.columnar import (
    first_occurrence_order,
    intern_values,
    normalized_column,
)
from repro.dataset.encoding import LabelEncoder, TableEncoder
from repro.dataset.table import Cell, Table, is_missing
from repro.detectors.openrefine import cluster_column, fingerprint
from repro.kernels import kernel_stage, use_reference_kernels
from repro.ml.linear import LogisticRegression
from repro.repair._reference import reference_holoclean_repair
from repro.repair.base import GENERIC, RepairMethod, blank_detected_cells
from repro.repair.simple import MeanModeImputeRepair


def _strip_or_none(value: object) -> Optional[str]:
    return None if is_missing(value) else str(value).strip()


class _SignalModel:
    """Interned categorical signals for HoloClean's factor features.

    Replaces the scalar per-row co-occurrence build (an O(rows x
    columns^2) Python loop of Counter updates) with one interning pass
    per column plus one vectorized pair count per column pair.  The
    value priors are rebuilt as insertion-ordered Counters so
    ``most_common`` tie-breaking (stable by key insertion) matches the
    scalar build exactly; co-occurrence counts are kept as sorted code
    arrays for ``searchsorted`` lookups.
    """

    def __init__(self, blanked: Table, categorical: List[str]) -> None:
        self.categorical = list(categorical)
        self.normalized: Dict[str, List[Optional[str]]] = {
            c: normalized_column(blanked.column(c), _strip_or_none)
            for c in self.categorical
        }
        self.uids: Dict[str, np.ndarray] = {}
        self.distinct: Dict[str, List[str]] = {}
        self.ids: Dict[str, Dict[str, int]] = {}
        for c in self.categorical:
            self.uids[c], self.distinct[c] = intern_values(self.normalized[c])
            self.ids[c] = {v: k for k, v in enumerate(self.distinct[c])}
        self.priors: Dict[str, Counter] = {}
        for c in self.categorical:
            present = self.uids[c][self.uids[c] >= 0]
            values, counts, _, _ = first_occurrence_order(present)
            counter: Counter = Counter()
            names = self.distinct[c]
            for uid, count in zip(values.tolist(), counts.tolist()):
                counter[names[uid]] = count
            self.priors[c] = counter
        self._joint: Dict[Tuple[str, str], Tuple[np.ndarray, np.ndarray, int]] = {}

    def _joint_counts(
        self, column: str, col_b: str
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Sorted ``(column value, col_b value)`` codes with counts."""
        key = (column, col_b)
        cached = self._joint.get(key)
        if cached is None:
            cu, bu = self.uids[column], self.uids[col_b]
            both = (cu >= 0) & (bu >= 0)
            width = max(len(self.distinct[col_b]), 1)
            codes, counts = np.unique(
                cu[both] * width + bu[both], return_counts=True
            )
            cached = self._joint[key] = (codes, counts, width)
        return cached

    def features(
        self,
        column: str,
        rows: List[int],
        candidates: List[str],
        fd_votes: Dict[Cell, Counter],
    ) -> np.ndarray:
        """Signal features for assigning ``candidates[t]`` to ``rows[t]``.

        Row ``t`` equals the scalar ``candidate_features`` vector
        ``[prior, fd_vote, context_loglik, 1.0]`` bit for bit: the
        context log-likelihood accumulates per context column in the
        same order, and absent contexts contribute ``log(0 + 1) == 0.0``
        exactly as the scalar's skip does.
        """
        m = len(rows)
        prior_counts = np.fromiter(
            (self.priors[column][cand] for cand in candidates),
            np.int64, count=m,
        )
        prior = np.log(prior_counts + 1.0)
        fd_vote = np.zeros(m)
        for t, cell_row in enumerate(rows):
            counter = fd_votes.get((cell_row, column))
            if counter:
                fd_vote[t] = float(counter[candidates[t]])
        cand_uid = np.fromiter(
            (self.ids[column].get(cand, -1) for cand in candidates),
            np.int64, count=m,
        )
        row_arr = np.asarray(rows, dtype=np.int64)
        context_loglik = np.zeros(m)
        contexts = np.zeros(m, dtype=np.int64)
        for col_b in self.categorical:
            if col_b == column:
                continue
            bu = self.uids[col_b][row_arr]
            codes, counts, width = self._joint_counts(column, col_b)
            joint = np.zeros(m, dtype=np.int64)
            present = (cand_uid >= 0) & (bu >= 0)
            if len(codes) and present.any():
                queries = cand_uid[present] * width + bu[present]
                pos = np.clip(
                    np.searchsorted(codes, queries), 0, len(codes) - 1
                )
                joint[present] = np.where(
                    codes[pos] == queries, counts[pos], 0
                )
            context_loglik += np.log(joint + 1.0)
            contexts += bu >= 0
        context_loglik = np.where(
            contexts > 0, context_loglik / np.maximum(contexts, 1),
            context_loglik,
        )
        features = np.empty((m, 4))
        features[:, 0] = prior
        features[:, 1] = fd_vote
        features[:, 2] = context_loglik
        features[:, 3] = 1.0
        return features


class HoloCleanRepair(RepairMethod):
    """HoloClean's repair stage: probabilistic inference over signals.

    Candidate repairs are scored by a log-linear model over the signal
    features HoloClean's factor graph encodes:

    - FD/constraint co-group votes (rows agreeing on a determinant);
    - attribute co-occurrence with the rest of the tuple;
    - the column's empirical value prior.

    With ``learn_weights`` (default), the feature weights are *learned* the
    way HoloClean learns its factor weights: every unflagged categorical
    cell is treated as weak supervision -- its observed value is a positive
    example and sampled domain values are negatives -- and a logistic model
    fits the weights.  With too little evidence the scorer falls back to
    calibrated fixed weights.  Numeric cells fall back to the column mean
    (HoloClean's domain pruning makes continuous attributes statistical).

    Candidate features are built in one vectorized pass per column (see
    :class:`_SignalModel`); only the final length-4 score dot products
    stay per-candidate, because a batched matmul rounds differently than
    the scalar ``weights @ features`` and the outputs must stay
    bit-identical to the frozen reference pipeline.
    """

    name = "HoloClean"
    category = GENERIC

    #: Fixed fallback weights: [prior, fd_vote, cooccurrence, bias].
    _FALLBACK_WEIGHTS = np.array([1.0, 4.0, 1.0, 0.0])

    def __init__(
        self,
        max_candidates: int = 30,
        learn_weights: bool = True,
        max_training_cells: int = 400,
    ) -> None:
        if max_candidates < 2:
            raise ValueError("max_candidates must be >= 2")
        if max_training_cells < 10:
            raise ValueError("max_training_cells must be >= 10")
        self.max_candidates = max_candidates
        self.learn_weights = learn_weights
        self.max_training_cells = max_training_cells
        self.learned_weights_: Optional[np.ndarray] = None

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        if use_reference_kernels():
            return reference_holoclean_repair(self, context, detections)
        table = context.dirty
        blanked = blank_detected_cells(table, detections)
        repaired = blanked.copy()
        # FD majority votes per (cell -> value).
        fd_votes: Dict[Cell, Counter] = defaultdict(Counter)
        for fd in context.fds:
            for cell, value in fd.majority_repairs(table).items():
                fd_votes[cell][str(value).strip()] += 3  # strong signal
        with kernel_stage("holoclean.context"):
            signals = _SignalModel(
                blanked, list(table.schema.categorical_names)
            )

        weights = self._learn_weights(context, detections, signals, fd_votes)
        self.learned_weights_ = weights

        numeric_means: Dict[str, float] = {}
        flagged_by_column: Dict[str, List[int]] = {}
        for cell_row, column in sorted(detections):
            if column not in table.schema or not (0 <= cell_row < table.n_rows):
                continue
            if table.schema.kind_of(column) == "numerical":
                if column not in numeric_means:
                    values = blanked.as_float(column)
                    finite = values[~np.isnan(values)]
                    numeric_means[column] = (
                        float(finite.mean()) if len(finite) else 0.0
                    )
                repaired.set_cell(cell_row, column, numeric_means[column])
                continue
            flagged_by_column.setdefault(column, []).append(cell_row)
        with kernel_stage("holoclean.score"):
            for column, cell_rows in flagged_by_column.items():
                self._score_column(
                    repaired, column, cell_rows, signals, fd_votes, weights
                )
        return repaired

    def _score_column(
        self,
        repaired: Table,
        column: str,
        cell_rows: List[int],
        signals: _SignalModel,
        fd_votes: Dict[Cell, Counter],
        weights: np.ndarray,
    ) -> None:
        """Score every flagged cell of one column in a single feature batch."""
        base = [
            v for v, _ in signals.priors[column].most_common(self.max_candidates)
        ]
        candidate_lists: List[List[str]] = []
        pair_rows: List[int] = []
        pair_candidates: List[str] = []
        offsets = [0]
        for cell_row in cell_rows:
            candidates = list(base)
            for vote_value in fd_votes.get((cell_row, column), ()):
                if vote_value not in candidates:
                    candidates.append(vote_value)
            candidate_lists.append(candidates)
            pair_rows.extend([cell_row] * len(candidates))
            pair_candidates.extend(candidates)
            offsets.append(len(pair_candidates))
        if not pair_candidates:
            return
        features = signals.features(column, pair_rows, pair_candidates, fd_votes)
        # Length-4 dots, one per candidate: a batched ``features @
        # weights`` is *not* bitwise-equal to the scalar ``weights @ f``.
        scores = np.fromiter(
            (float(weights @ features[t]) for t in range(len(features))),
            np.float64, count=len(features),
        )
        for k, cell_row in enumerate(cell_rows):
            lo, hi = offsets[k], offsets[k + 1]
            if lo == hi:
                continue
            choice = candidate_lists[k][int(np.argmax(scores[lo:hi]))]
            repaired.set_cell(cell_row, column, choice)

    def _learn_weights(
        self,
        context: CleaningContext,
        detections: Set[Cell],
        signals: _SignalModel,
        fd_votes: Dict[Cell, Counter],
    ) -> np.ndarray:
        """Fit factor weights from unflagged cells (weak supervision)."""
        if not self.learn_weights or not signals.categorical:
            return self._FALLBACK_WEIGHTS
        rng = context.rng(83)
        detected = set(detections)
        normalized, priors = signals.normalized, signals.priors
        pool: List[Tuple[int, str]] = [
            (pool_row, column)
            for column in signals.categorical
            for pool_row in range(context.dirty.n_rows)
            if (pool_row, column) not in detected
            and normalized[column][pool_row] is not None
            and len(priors[column]) >= 2
        ]
        if len(pool) > self.max_training_cells:
            picks = rng.choice(
                len(pool), size=self.max_training_cells, replace=False
            )
            pool = [pool[int(p)] for p in picks]
        # Negatives are drawn cell by cell so the rng consumes the same
        # sequence as the scalar loop; alternatives lists iterate the
        # insertion-ordered priors exactly as ``[v for v in priors[c]]``.
        alternatives_cache: Dict[Tuple[str, str], List[str]] = {}
        entries: List[Tuple[int, str, str, str]] = []
        for pool_row, column in pool:
            observed = normalized[column][pool_row]
            cache_key = (column, observed)
            alternatives = alternatives_cache.get(cache_key)
            if alternatives is None:
                alternatives = alternatives_cache[cache_key] = [
                    v for v in priors[column] if v != observed
                ]
            negative = alternatives[int(rng.integers(len(alternatives)))]
            entries.append((pool_row, column, observed, negative))
        if 2 * len(entries) < 20:
            return self._FALLBACK_WEIGHTS
        # Feature rows interleave positive/negative per pool cell, same
        # as the scalar ``np.vstack(examples)``; construction is batched
        # per column and scattered back into pool order.
        features = np.empty((2 * len(entries), 4))
        by_column: Dict[str, List[int]] = {}
        for idx, entry in enumerate(entries):
            by_column.setdefault(entry[1], []).append(idx)
        for column, idxs in by_column.items():
            batch_rows: List[int] = []
            batch_cands: List[str] = []
            slots: List[int] = []
            for idx in idxs:
                pool_row, _, observed, negative = entries[idx]
                batch_rows += [pool_row, pool_row]
                batch_cands += [observed, negative]
                slots += [2 * idx, 2 * idx + 1]
            features[slots] = signals.features(
                column, batch_rows, batch_cands, fd_votes
            )
        targets = np.array([1, 0] * len(entries))
        # Hold out a slice of the pseudo-examples to decide whether the
        # learned weights actually beat the calibrated fallback.
        n_holdout = max(4, len(features) // 4)
        order = rng.permutation(len(features))
        holdout, training = order[:n_holdout], order[n_holdout:]
        model = LogisticRegression(max_iter=200, learning_rate=0.3)
        try:
            model.fit(features[training], targets[training])
        except (ValueError, np.linalg.LinAlgError):
            return self._FALLBACK_WEIGHTS
        # Column 1 of coef_ is the positive-class direction; the model adds
        # its own intercept on top of our bias feature -- fold it in.
        learned = model.coef_[:, 1] - model.coef_[:, 0]
        weights = learned[:-1].copy()
        weights[-1] += learned[-1]  # merge the intercept into the bias slot
        if not np.isfinite(weights).all():
            return self._FALLBACK_WEIGHTS
        # FD votes never occur among unflagged training cells, so their
        # weight cannot be learned here; keep the fallback's strong prior
        # (hard-constraint factors are not softened in HoloClean either).
        weights[1] = max(weights[1], self._FALLBACK_WEIGHTS[1])

        def holdout_accuracy(w: np.ndarray) -> float:
            scores = features[holdout] @ w
            predictions = (scores > 0).astype(int)
            return float(np.mean(predictions == targets[holdout]))

        if holdout_accuracy(weights) >= holdout_accuracy(self._FALLBACK_WEIGHTS):
            return weights
        return self._FALLBACK_WEIGHTS


class OpenRefineRepair(RepairMethod):
    """OpenRefine repair (row 14): cluster merges plus GREL transforms.

    Detected categorical cells whose fingerprint cluster has a majority raw
    variant are rewritten to that variant -- the "mass edit" a user performs
    after reviewing clusters.  Optionally, per-column GREL expressions
    (OpenRefine's native transformation language, see
    :mod:`repro.repair.grel`) are applied to the detected cells first, e.g.
    ``{"city": 'value.trim().toLowercase()'}``.
    """

    name = "OpenRefine"
    category = GENERIC

    def __init__(self, transforms: Optional[Dict[str, str]] = None) -> None:
        from repro.repair.grel import GrelExpression

        self.transforms = {
            column: GrelExpression(source)
            for column, source in (transforms or {}).items()
        }

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        table = context.dirty
        repaired = table.copy()
        # Phase 1: user-supplied GREL transforms on detected cells.
        if self.transforms:
            column_names = table.column_names
            for row, column in sorted(detections):
                expression = self.transforms.get(column)
                if expression is None or not (0 <= row < table.n_rows):
                    continue
                cells = {
                    name: table.get_cell(row, name) for name in column_names
                }
                try:
                    repaired.set_cell(
                        row, column,
                        expression.evaluate(table.get_cell(row, column), cells),
                    )
                except Exception:  # noqa: BLE001 - user expression errors
                    continue
        merges: Dict[str, Dict[str, str]] = {}
        for column in table.schema.categorical_names:
            clusters = cluster_column(table, column)
            mapping: Dict[str, str] = {}
            for counts in clusters.values():
                if len(counts) < 2:
                    continue
                majority, _ = counts.most_common(1)[0]
                for variant in counts:
                    if variant != majority:
                        mapping[variant] = majority
            if mapping:
                merges[column] = mapping
        for row, column in detections:
            if column not in merges or not (0 <= row < table.n_rows):
                continue
            value = table.get_cell(row, column)
            if is_missing(value):
                continue
            replacement = merges[column].get(str(value))
            if replacement is not None:
                repaired.set_cell(row, column, replacement)
        return repaired


class CleanLabRepair(RepairMethod):
    """CleanLab's repair side (row 16): relabel flagged label cells.

    Trains a classifier on the rows whose labels were *not* flagged and
    overwrites flagged labels with its predictions -- confident learning's
    prune-and-relearn loop collapsed to one pass.
    """

    name = "CleanLab"
    category = GENERIC

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        label_column = context.label_column
        table = context.dirty
        if label_column is None or label_column not in table.schema:
            return table.copy()
        flagged_rows = sorted(
            {row for row, column in detections if column == label_column}
        )
        if not flagged_rows:
            return table.copy()
        keep_rows = [i for i in range(table.n_rows) if i not in set(flagged_rows)]
        encoder = TableEncoder()
        features = encoder.fit_transform(table, exclude=[label_column])
        label_encoder = LabelEncoder()
        labels = label_encoder.fit_transform(table.column(label_column))
        repaired = table.copy()
        if len(keep_rows) < 10 or len(set(labels[keep_rows])) < 2:
            return repaired
        model = LogisticRegression(max_iter=150)
        model.fit(features[keep_rows], labels[keep_rows])
        predictions = model.predict(features[flagged_rows])
        decoded = label_encoder.inverse_transform(predictions)
        for row, value in zip(flagged_rows, decoded):
            repaired.set_cell(row, label_column, value)
        return repaired
