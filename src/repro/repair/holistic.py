"""Holistic signal-combining repairs: HoloClean, OpenRefine, and CleanLab's
repair side (Table 1 rows 13, 14, 16)."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.encoding import LabelEncoder, TableEncoder
from repro.dataset.table import Cell, Table, is_missing
from repro.detectors.openrefine import cluster_column, fingerprint
from repro.ml.linear import LogisticRegression
from repro.repair.base import GENERIC, RepairMethod, blank_detected_cells
from repro.repair.simple import MeanModeImputeRepair


class HoloCleanRepair(RepairMethod):
    """HoloClean's repair stage: probabilistic inference over signals.

    Candidate repairs are scored by a log-linear model over the signal
    features HoloClean's factor graph encodes:

    - FD/constraint co-group votes (rows agreeing on a determinant);
    - attribute co-occurrence with the rest of the tuple;
    - the column's empirical value prior.

    With ``learn_weights`` (default), the feature weights are *learned* the
    way HoloClean learns its factor weights: every unflagged categorical
    cell is treated as weak supervision -- its observed value is a positive
    example and sampled domain values are negatives -- and a logistic model
    fits the weights.  With too little evidence the scorer falls back to
    calibrated fixed weights.  Numeric cells fall back to the column mean
    (HoloClean's domain pruning makes continuous attributes statistical).
    """

    name = "HoloClean"
    category = GENERIC

    #: Fixed fallback weights: [prior, fd_vote, cooccurrence, bias].
    _FALLBACK_WEIGHTS = np.array([1.0, 4.0, 1.0, 0.0])

    def __init__(
        self,
        max_candidates: int = 30,
        learn_weights: bool = True,
        max_training_cells: int = 400,
    ) -> None:
        if max_candidates < 2:
            raise ValueError("max_candidates must be >= 2")
        if max_training_cells < 10:
            raise ValueError("max_training_cells must be >= 10")
        self.max_candidates = max_candidates
        self.learn_weights = learn_weights
        self.max_training_cells = max_training_cells
        self.learned_weights_: Optional[np.ndarray] = None

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        table = context.dirty
        blanked = blank_detected_cells(table, detections)
        repaired = blanked.copy()
        # FD majority votes per (cell -> value).
        fd_votes: Dict[Cell, Counter] = defaultdict(Counter)
        for fd in context.fds:
            for cell, value in fd.majority_repairs(table).items():
                fd_votes[cell][str(value).strip()] += 3  # strong signal
        normalized: Dict[str, List[Optional[str]]] = {}
        for column in table.schema.categorical_names:
            normalized[column] = [
                None if is_missing(v) else str(v).strip()
                for v in blanked.column(column)
            ]
        priors = {
            column: Counter(v for v in normalized[column] if v is not None)
            for column in normalized
        }
        # Co-occurrence counts between categorical columns (on kept cells).
        cooccurrence: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
        categorical = list(normalized)
        for i in range(table.n_rows):
            for col_a in categorical:
                a = normalized[col_a][i]
                if a is None:
                    continue
                for col_b in categorical:
                    if col_b == col_a:
                        continue
                    b = normalized[col_b][i]
                    if b is not None:
                        cooccurrence[(col_a, col_b)][(a, b)] += 1

        def candidate_features(
            row: int, column: str, candidate: str
        ) -> np.ndarray:
            """Signal features for assigning *candidate* to one cell."""
            prior = np.log(priors[column][candidate] + 1.0)
            fd_vote = float(
                fd_votes.get((row, column), Counter())[candidate]
            )
            context_loglik = 0.0
            contexts = 0
            for col_b in categorical:
                if col_b == column:
                    continue
                b = normalized[col_b][row]
                if b is None:
                    continue
                joint = cooccurrence[(column, col_b)][(candidate, b)]
                context_loglik += np.log(joint + 1.0)
                contexts += 1
            if contexts:
                context_loglik /= contexts
            return np.array([prior, fd_vote, context_loglik, 1.0])

        weights = self._learn_weights(
            context, detections, categorical, normalized, priors,
            candidate_features,
        )
        self.learned_weights_ = weights

        numeric_means: Dict[str, float] = {}
        for row, column in sorted(detections):
            if column not in table.schema or not (0 <= row < table.n_rows):
                continue
            if table.schema.kind_of(column) == "numerical":
                if column not in numeric_means:
                    values = blanked.as_float(column)
                    finite = values[~np.isnan(values)]
                    numeric_means[column] = (
                        float(finite.mean()) if len(finite) else 0.0
                    )
                repaired.set_cell(row, column, numeric_means[column])
                continue
            candidates = [
                v for v, _ in priors[column].most_common(self.max_candidates)
            ]
            for vote_value in fd_votes.get((row, column), ()):
                if vote_value not in candidates:
                    candidates.append(vote_value)
            if not candidates:
                continue
            scores = [
                float(weights @ candidate_features(row, column, candidate))
                for candidate in candidates
            ]
            repaired.set_cell(
                row, column, candidates[int(np.argmax(scores))]
            )
        return repaired

    def _learn_weights(
        self,
        context: CleaningContext,
        detections: Set[Cell],
        categorical: List[str],
        normalized: Dict[str, List[Optional[str]]],
        priors: Dict[str, Counter],
        candidate_features,
    ) -> np.ndarray:
        """Fit factor weights from unflagged cells (weak supervision)."""
        if not self.learn_weights or not categorical:
            return self._FALLBACK_WEIGHTS
        rng = context.rng(83)
        detected = set(detections)
        examples: List[np.ndarray] = []
        labels: List[int] = []
        pool: List[Tuple[int, str]] = [
            (row, column)
            for column in categorical
            for row in range(context.dirty.n_rows)
            if (row, column) not in detected
            and normalized[column][row] is not None
            and len(priors[column]) >= 2
        ]
        if len(pool) > self.max_training_cells:
            picks = rng.choice(
                len(pool), size=self.max_training_cells, replace=False
            )
            pool = [pool[int(p)] for p in picks]
        for row, column in pool:
            observed = normalized[column][row]
            examples.append(candidate_features(row, column, observed))
            labels.append(1)
            alternatives = [v for v in priors[column] if v != observed]
            negative = alternatives[int(rng.integers(len(alternatives)))]
            examples.append(candidate_features(row, column, negative))
            labels.append(0)
        if len(examples) < 20:
            return self._FALLBACK_WEIGHTS
        features = np.vstack(examples)
        targets = np.array(labels)
        # Hold out a slice of the pseudo-examples to decide whether the
        # learned weights actually beat the calibrated fallback.
        n_holdout = max(4, len(features) // 4)
        order = rng.permutation(len(features))
        holdout, training = order[:n_holdout], order[n_holdout:]
        model = LogisticRegression(max_iter=200, learning_rate=0.3)
        try:
            model.fit(features[training], targets[training])
        except (ValueError, np.linalg.LinAlgError):
            return self._FALLBACK_WEIGHTS
        # Column 1 of coef_ is the positive-class direction; the model adds
        # its own intercept on top of our bias feature -- fold it in.
        learned = model.coef_[:, 1] - model.coef_[:, 0]
        weights = learned[:-1].copy()
        weights[-1] += learned[-1]  # merge the intercept into the bias slot
        if not np.isfinite(weights).all():
            return self._FALLBACK_WEIGHTS
        # FD votes never occur among unflagged training cells, so their
        # weight cannot be learned here; keep the fallback's strong prior
        # (hard-constraint factors are not softened in HoloClean either).
        weights[1] = max(weights[1], self._FALLBACK_WEIGHTS[1])

        def holdout_accuracy(w: np.ndarray) -> float:
            scores = features[holdout] @ w
            predictions = (scores > 0).astype(int)
            return float(np.mean(predictions == targets[holdout]))

        if holdout_accuracy(weights) >= holdout_accuracy(self._FALLBACK_WEIGHTS):
            return weights
        return self._FALLBACK_WEIGHTS


class OpenRefineRepair(RepairMethod):
    """OpenRefine repair (row 14): cluster merges plus GREL transforms.

    Detected categorical cells whose fingerprint cluster has a majority raw
    variant are rewritten to that variant -- the "mass edit" a user performs
    after reviewing clusters.  Optionally, per-column GREL expressions
    (OpenRefine's native transformation language, see
    :mod:`repro.repair.grel`) are applied to the detected cells first, e.g.
    ``{"city": 'value.trim().toLowercase()'}``.
    """

    name = "OpenRefine"
    category = GENERIC

    def __init__(self, transforms: Optional[Dict[str, str]] = None) -> None:
        from repro.repair.grel import GrelExpression

        self.transforms = {
            column: GrelExpression(source)
            for column, source in (transforms or {}).items()
        }

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        table = context.dirty
        repaired = table.copy()
        # Phase 1: user-supplied GREL transforms on detected cells.
        if self.transforms:
            column_names = table.column_names
            for row, column in sorted(detections):
                expression = self.transforms.get(column)
                if expression is None or not (0 <= row < table.n_rows):
                    continue
                cells = {
                    name: table.get_cell(row, name) for name in column_names
                }
                try:
                    repaired.set_cell(
                        row, column,
                        expression.evaluate(table.get_cell(row, column), cells),
                    )
                except Exception:  # noqa: BLE001 - user expression errors
                    continue
        merges: Dict[str, Dict[str, str]] = {}
        for column in table.schema.categorical_names:
            clusters = cluster_column(table, column)
            mapping: Dict[str, str] = {}
            for counts in clusters.values():
                if len(counts) < 2:
                    continue
                majority, _ = counts.most_common(1)[0]
                for variant in counts:
                    if variant != majority:
                        mapping[variant] = majority
            if mapping:
                merges[column] = mapping
        for row, column in detections:
            if column not in merges or not (0 <= row < table.n_rows):
                continue
            value = table.get_cell(row, column)
            if is_missing(value):
                continue
            replacement = merges[column].get(str(value))
            if replacement is not None:
                repaired.set_cell(row, column, replacement)
        return repaired


class CleanLabRepair(RepairMethod):
    """CleanLab's repair side (row 16): relabel flagged label cells.

    Trains a classifier on the rows whose labels were *not* flagged and
    overwrites flagged labels with its predictions -- confident learning's
    prune-and-relearn loop collapsed to one pass.
    """

    name = "CleanLab"
    category = GENERIC

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        label_column = context.label_column
        table = context.dirty
        if label_column is None or label_column not in table.schema:
            return table.copy()
        flagged_rows = sorted(
            {row for row, column in detections if column == label_column}
        )
        if not flagged_rows:
            return table.copy()
        keep_rows = [i for i in range(table.n_rows) if i not in set(flagged_rows)]
        encoder = TableEncoder()
        features = encoder.fit_transform(table, exclude=[label_column])
        label_encoder = LabelEncoder()
        labels = label_encoder.fit_transform(table.column(label_column))
        repaired = table.copy()
        if len(keep_rows) < 10 or len(set(labels[keep_rows])) < 2:
            return repaired
        model = LogisticRegression(max_iter=150)
        model.fit(features[keep_rows], labels[keep_rows])
        predictions = model.predict(features[flagged_rows])
        decoded = label_encoder.inverse_transform(predictions)
        for row, value in zip(flagged_rows, decoded):
            repaired.set_cell(row, label_column, value)
        return repaired
