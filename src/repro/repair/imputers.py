"""ML-driven imputation repairs: missForest, DataWig, and combinations
(Table 1 rows 6-12).

All of them share the missForest loop: blank the detected cells, fill them
with a cheap initial guess, then repeatedly re-train a per-column predictor
on the observed cells (features = every other column, encoded) and overwrite
the holes with its predictions, sweeping columns from fewest to most holes.
What varies is the predictor family and whether numeric and categorical
columns see each other's features:

- missForest: random forests, *mixed* mode (all columns as features) or
  *separate* mode (numeric columns predicted from numeric features only,
  categorical from categorical);
- DataWig: MLP predictors (the deep-learning imputer analogue), mixed mode;
- DT-/Bayes-/KNN-MISS: the named regressor for numeric columns combined
  with missForest for categorical columns.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.context import CleaningContext
from repro.dataset.encoding import TableEncoder
from repro.dataset.table import Cell, Table, is_missing
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import BayesianRidgeRegressor
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.neighbors import KNNClassifier, KNNRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.repair.base import GENERIC, RepairMethod, blank_detected_cells

MIXED = "mixed"
SEPARATE = "separate"


def _initial_fill(table: Table) -> Table:
    """Mean/mode-fill every missing cell as the iteration starting point."""
    filled = table.copy()
    for column in table.column_names:
        holes = [
            i for i in range(table.n_rows)
            if is_missing(table.get_cell(i, column))
        ]
        if not holes:
            continue
        if table.schema.kind_of(column) == "numerical":
            values = table.as_float(column)
            finite = values[~np.isnan(values)]
            fill = float(finite.mean()) if len(finite) else 0.0
        else:
            counts = Counter(
                str(v).strip()
                for v in table.column(column)
                if not is_missing(v)
            )
            fill = counts.most_common(1)[0][0] if counts else "unknown"
        for row in holes:
            filled.set_cell(row, column, fill)
    return filled


class MLImputeRepair(RepairMethod):
    """Iterative model-based imputation (the missForest loop).

    Args:
        numeric_factory: builds the regressor used for numeric columns.
        categorical_factory: builds the classifier for categorical columns.
        mode: ``"mixed"`` (features from all columns) or ``"separate"``
            (features restricted to same-kind columns).
        n_iterations: sweeps of the column-wise re-impute loop.
    """

    name = "MLImpute"
    category = GENERIC

    def __init__(
        self,
        numeric_factory: Callable[[], object],
        categorical_factory: Callable[[], object],
        mode: str = MIXED,
        n_iterations: int = 2,
        max_categories: int = 20,
    ) -> None:
        if mode not in (MIXED, SEPARATE):
            raise ValueError("mode must be 'mixed' or 'separate'")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.numeric_factory = numeric_factory
        self.categorical_factory = categorical_factory
        self.mode = mode
        self.n_iterations = n_iterations
        self.max_categories = max_categories

    def _feature_columns(self, table: Table, target: str) -> List[str]:
        others = [c for c in table.column_names if c != target]
        if self.mode == MIXED:
            return others
        kind = table.schema.kind_of(target)
        same_kind = [c for c in others if table.schema.kind_of(c) == kind]
        return same_kind if same_kind else others

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        table = context.dirty
        blanked = blank_detected_cells(table, detections)
        holes_by_column: Dict[str, List[int]] = {}
        for column in table.column_names:
            holes = [
                i
                for i in range(table.n_rows)
                if is_missing(blanked.get_cell(i, column))
            ]
            if holes:
                holes_by_column[column] = holes
        if not holes_by_column:
            return blanked
        current = _initial_fill(blanked)
        # missForest sweeps columns from fewest to most missing values.
        order = sorted(holes_by_column, key=lambda c: len(holes_by_column[c]))
        for _ in range(self.n_iterations):
            for column in order:
                holes = holes_by_column[column]
                observed = [
                    i for i in range(table.n_rows) if i not in set(holes)
                ]
                if len(observed) < 5:
                    continue
                feature_cols = self._feature_columns(table, column)
                if not feature_cols:
                    continue
                encoder = TableEncoder(max_categories=self.max_categories)
                view = current.select_columns(feature_cols)
                features = encoder.fit_transform(view)
                if features.shape[1] == 0:
                    continue
                try:
                    predictions = self._predict_column(
                        table, current, column, features, observed, holes
                    )
                except (ValueError, np.linalg.LinAlgError, RuntimeError):
                    continue
                if predictions is None:
                    continue
                for row, value in zip(holes, predictions):
                    current.set_cell(row, column, value)
        return current

    def _predict_column(
        self,
        table: Table,
        current: Table,
        column: str,
        features: np.ndarray,
        observed: Sequence[int],
        holes: Sequence[int],
    ) -> Optional[List[object]]:
        observed = list(observed)
        holes = list(holes)
        if table.schema.kind_of(column) == "numerical":
            targets = current.as_float(column)
            usable = [i for i in observed if not np.isnan(targets[i])]
            if len(usable) < 5:
                return None
            model = self.numeric_factory()
            model.fit(features[usable], targets[usable])
            return [float(v) for v in model.predict(features[holes])]
        values = [
            None if is_missing(v) else str(v).strip()
            for v in current.column(column)
        ]
        usable = [i for i in observed if values[i] is not None]
        classes = sorted({values[i] for i in usable})
        if len(usable) < 5 or len(classes) < 2:
            if len(classes) == 1:
                return [classes[0]] * len(holes)
            return None
        index = {c: j for j, c in enumerate(classes)}
        labels = np.array([index[values[i]] for i in usable])
        model = self.categorical_factory()
        model.fit(features[usable], labels)
        predicted = model.predict(features[holes])
        return [classes[int(p)] for p in predicted]


def _rf_regressor() -> RandomForestRegressor:
    return RandomForestRegressor(n_estimators=15, max_depth=10, seed=0)


def _rf_classifier() -> RandomForestClassifier:
    return RandomForestClassifier(n_estimators=15, max_depth=10, seed=0)


def _mlp_regressor() -> MLPRegressor:
    return MLPRegressor(hidden=(32,), epochs=40, seed=0)


def _mlp_classifier() -> MLPClassifier:
    return MLPClassifier(hidden=(32,), epochs=40, seed=0)


class MissForestMixRepair(MLImputeRepair):
    """missForest in mixed mode (Table 1 row 6, 'MISS-Mix')."""

    name = "MISS-Mix"

    def __init__(self) -> None:
        super().__init__(_rf_regressor, _rf_classifier, mode=MIXED)


class MissForestSepRepair(MLImputeRepair):
    """missForest in separate mode (row 8, 'MISS-Sep')."""

    name = "MISS-Sep"

    def __init__(self) -> None:
        super().__init__(_rf_regressor, _rf_classifier, mode=SEPARATE)


class DataWigMixRepair(MLImputeRepair):
    """DataWig analogue: MLP imputer in mixed mode (row 7)."""

    name = "DataWig-Mix"

    def __init__(self) -> None:
        super().__init__(_mlp_regressor, _mlp_classifier, mode=MIXED)


class MissDataWigRepair(MLImputeRepair):
    """missForest for numeric, DataWig for categorical (row 9)."""

    name = "MISS-DataWig"

    def __init__(self) -> None:
        super().__init__(_rf_regressor, _mlp_classifier, mode=MIXED)


class DTMissRepair(MLImputeRepair):
    """Decision tree for numeric, missForest for categorical (row 10)."""

    name = "DT-MISS"

    def __init__(self, max_depth: int = 10) -> None:
        super().__init__(
            lambda: DecisionTreeRegressor(max_depth=max_depth),
            _rf_classifier,
            mode=MIXED,
        )


class BayesMissRepair(MLImputeRepair):
    """Bayesian ridge for numeric, missForest for categorical (row 11)."""

    name = "Bayes-MISS"

    def __init__(self) -> None:
        super().__init__(BayesianRidgeRegressor, _rf_classifier, mode=MIXED)


class KNNMissRepair(MLImputeRepair):
    """KNN for numeric, missForest for categorical (row 12)."""

    name = "KNN-MISS"

    def __init__(self, n_neighbors: int = 5) -> None:
        super().__init__(
            lambda: KNNRegressor(n_neighbors=n_neighbors),
            _rf_classifier,
            mode=MIXED,
        )
