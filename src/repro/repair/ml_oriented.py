"""ML-oriented repair methods: ActiveClean, BoostClean, CPClean (Table 1
rows 17-19).

These jointly optimise cleaning and modeling: their output is a fitted
*model* (scenario S5 of Table 3), not a repaired table.  Each reproduces the
capability boundaries Section 6.5 reports: BoostClean and CPClean reject
multi-class problems, and ActiveClean fails when no clean warm-start
partition covering every class exists.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.context import CleaningContext
from repro.dataset.encoding import LabelEncoder, TableEncoder
from repro.dataset.table import Cell, Table
from repro.detectors.simple import IQRDetector, MVDetector, SDDetector
from repro.metrics.model import f1_score
from repro.ml.linear import LogisticRegression
from repro.ml.neighbors import KNNClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.repair.base import ML_ORIENTED, MLOrientedRepair
from repro.repair.simple import DeleteRepair, MeanModeImputeRepair


class FittedTabularModel:
    """A classifier bundled with the encoders that built its features.

    Lets scenario evaluation feed raw tables (dirty or clean) straight to
    the model, exactly how REIN scores S1/S4/S5 for these methods.
    """

    def __init__(
        self,
        model: Any,
        encoder: TableEncoder,
        label_encoder: LabelEncoder,
        label_column: str,
    ) -> None:
        self.model = model
        self.encoder = encoder
        self.label_encoder = label_encoder
        self.label_column = label_column

    def predict(self, table: Table) -> np.ndarray:
        return self.model.predict(self.encoder.transform(table))

    def f1(self, table: Table) -> float:
        """Macro F1 against the table's own label column."""
        truths = self.label_encoder.transform(table.column(self.label_column))
        return f1_score(truths, self.predict(table))


def _prepare(
    context: CleaningContext,
) -> Tuple[Table, np.ndarray, np.ndarray, TableEncoder, LabelEncoder, str]:
    label_column = context.label_column
    if label_column is None or label_column not in context.dirty.schema:
        raise ValueError("ML-oriented repair requires a label column")
    table = context.dirty
    encoder = TableEncoder()
    features = encoder.fit_transform(table, exclude=[label_column])
    label_encoder = LabelEncoder()
    labels = label_encoder.fit_transform(table.column(label_column))
    return table, features, labels, encoder, label_encoder, label_column


class ActiveCleanRepair(MLOrientedRepair):
    """ActiveClean: gradient-guided interactive cleaning for convex models.

    Warm-starts a logistic model on a fully-clean partition (rows with no
    detected cells; must cover every class -- otherwise the method raises,
    reproducing the failure mode Section 6.5 describes).  Then it repeatedly
    samples dirty records with probability proportional to their gradient
    magnitude, asks the oracle to clean them, and retrains on the grown
    clean set -- descending along the steepest cleaned gradient.
    """

    name = "ActiveClean"
    category = ML_ORIENTED

    def __init__(self, n_iterations: int = 5, batch_size: int = 20) -> None:
        if n_iterations < 1 or batch_size < 1:
            raise ValueError("n_iterations and batch_size must be >= 1")
        self.n_iterations = n_iterations
        self.batch_size = batch_size

    def _fit(self, context: CleaningContext, detections: Set[Cell]):
        if context.clean is None:
            raise RuntimeError("ActiveClean needs an oracle (clean data)")
        table, features, labels, encoder, label_encoder, label_column = _prepare(
            context
        )
        dirty_rows = sorted({row for row, _ in detections if row < table.n_rows})
        dirty_set = set(dirty_rows)
        clean_partition = [i for i in range(table.n_rows) if i not in dirty_set]
        all_classes = set(labels.tolist())
        covered = {int(labels[i]) for i in clean_partition}
        if covered != all_classes:
            raise RuntimeError(
                "ActiveClean found no clean partition covering all classes "
                f"(missing {sorted(all_classes - covered)})"
            )
        rng = context.rng(61)
        # Oracle-cleaned view built lazily as records are sampled.
        cleaned_features = features.copy()
        cleaned_labels = labels.copy()
        clean_label_codes = label_encoder.transform(
            context.clean.column(label_column)
        )
        clean_encoded = encoder.transform(context.clean)
        training_rows = list(clean_partition)
        model = LogisticRegression(max_iter=150)
        model.fit(cleaned_features[training_rows], cleaned_labels[training_rows])
        remaining = list(dirty_rows)
        for _ in range(self.n_iterations):
            if not remaining:
                break
            probabilities = model.predict_proba(cleaned_features[remaining])
            # Gradient magnitude for logistic loss ~ |p - y| * ||x||.
            point_errors = 1.0 - probabilities[
                np.arange(len(remaining)), cleaned_labels[remaining]
            ]
            norms = np.linalg.norm(cleaned_features[remaining], axis=1) + 1e-9
            weights = point_errors * norms
            total = weights.sum()
            if total <= 0:
                break
            batch = min(self.batch_size, len(remaining))
            picks = rng.choice(
                len(remaining), size=batch, replace=False, p=weights / total
            )
            for p in sorted(picks, reverse=True):
                row = remaining.pop(int(p))
                cleaned_features[row] = clean_encoded[row]
                cleaned_labels[row] = clean_label_codes[row]
                training_rows.append(row)
            model = LogisticRegression(max_iter=150)
            model.fit(
                cleaned_features[training_rows], cleaned_labels[training_rows]
            )
        fitted = FittedTabularModel(model, encoder, label_encoder, label_column)
        return fitted, {"records_cleaned": len(training_rows) - len(clean_partition)}


class BoostCleanRepair(MLOrientedRepair):
    """BoostClean: statistical boosting over (detector, repair) pairs.

    Each candidate pair yields a cleaned training set and a weak learner
    trained on it; AdaBoost-style rounds greedily pick the learner with the
    lowest weighted validation error and reweight.  Binary classification
    only (the multi-class limitation Section 6.5 reports).
    """

    name = "BoostClean"
    category = ML_ORIENTED

    def __init__(self, n_rounds: int = 3, validation_fraction: float = 0.25) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        self.n_rounds = n_rounds
        self.validation_fraction = validation_fraction

    @staticmethod
    def _library() -> List[Tuple[str, Optional[Any], Optional[Any]]]:
        """(name, detector, repair) candidates; None means 'no cleaning'."""
        return [
            ("identity", None, None),
            ("mv+impute", MVDetector(), MeanModeImputeRepair()),
            ("sd+impute", SDDetector(3.0), MeanModeImputeRepair()),
            ("iqr+delete", IQRDetector(1.5), DeleteRepair()),
        ]

    def _fit(self, context: CleaningContext, detections: Set[Cell]):
        table, _, labels, _, label_encoder, label_column = _prepare(context)
        if label_encoder.n_classes != 2:
            raise ValueError(
                "BoostClean supports binary classification only "
                f"(got {label_encoder.n_classes} classes)"
            )
        rng = context.rng(67)
        n_rows = table.n_rows
        n_valid = max(2, int(self.validation_fraction * n_rows))
        order = rng.permutation(n_rows)
        valid_rows = np.sort(order[:n_valid])
        train_rows = np.sort(order[n_valid:])
        valid_set = set(valid_rows.tolist())
        shared_encoder = TableEncoder()
        shared_encoder.fit(table, exclude=[label_column])
        valid_features = shared_encoder.transform(table.select_rows(valid_rows))
        valid_labels = labels[valid_rows]
        # Build candidate cleaned training sets.
        candidates = []
        for name, detector, repair in self._library():
            if detector is None:
                cleaned = table.select_rows(train_rows)
            else:
                detected = detector.detect(context).cells
                train_detected = {
                    (row, col) for row, col in detected if row not in valid_set
                }
                sub_context = CleaningContext(
                    dirty=table.select_rows(train_rows),
                    clean=None,
                    label_column=label_column,
                    seed=context.seed,
                )
                remap = {int(r): k for k, r in enumerate(train_rows)}
                remapped = {
                    (remap[row], col)
                    for row, col in train_detected
                    if row in remap
                }
                cleaned = repair.repair(sub_context, remapped).repaired
            candidates.append((name, cleaned))
        weights = np.full(len(valid_rows), 1.0 / len(valid_rows))
        learners: List[Tuple[Any, float, str]] = []
        for round_index in range(self.n_rounds):
            best = None
            for name, cleaned in candidates:
                cleaned_labels = label_encoder.transform(
                    cleaned.column(label_column)
                )
                if len(set(cleaned_labels.tolist())) < 2:
                    continue
                learner = DecisionTreeClassifier(
                    max_depth=4, seed=context.seed + round_index
                )
                cleaned_features = shared_encoder.transform(cleaned)
                learner.fit(cleaned_features, cleaned_labels)
                predictions = learner.predict(valid_features)
                error = float(np.sum(weights[predictions != valid_labels]))
                if best is None or error < best[0]:
                    best = (error, learner, name)
            if best is None:
                break
            error, learner, name = best
            error = min(max(error, 1e-10), 1 - 1e-10)
            if error >= 0.5:
                break
            alpha = 0.5 * np.log((1 - error) / error)
            learners.append((learner, alpha, name))
            predictions = learner.predict(valid_features)
            signs = np.where(predictions == valid_labels, -1.0, 1.0)
            weights = weights * np.exp(alpha * signs)
            weights /= weights.sum()
        if not learners:
            fallback = DecisionTreeClassifier(max_depth=4, seed=context.seed)
            fallback.fit(
                shared_encoder.transform(table.select_rows(train_rows)),
                labels[train_rows],
            )
            learners = [(fallback, 1.0, "identity")]

        ensemble = _BoostedEnsemble([(l, a) for l, a, _ in learners])
        fitted = FittedTabularModel(
            ensemble, shared_encoder, label_encoder, label_column
        )
        return fitted, {"learners": [name for _, _, name in learners]}


class _BoostedEnsemble:
    """Weighted-vote binary ensemble over encoded features."""

    def __init__(self, learners: Sequence[Tuple[Any, float]]) -> None:
        self.learners = list(learners)

    def predict(self, features: np.ndarray) -> np.ndarray:
        scores = np.zeros(len(features))
        for learner, alpha in self.learners:
            predictions = learner.predict(features).astype(float)
            scores += alpha * np.where(predictions > 0, 1.0, -1.0)
        return (scores > 0).astype(int)


class CPCleanRepair(MLOrientedRepair):
    """CPClean: clean until predictions are certain (KNN-based).

    Over the incomplete (detected-dirty) training set, a prediction on the
    validation set is *certain* when every possible world of the dirty
    cells yields the same label.  CPClean greedily cleans (via the oracle)
    the training rows whose dirtiness blocks the most certain predictions,
    stopping when all validation predictions are certain or every dirty row
    is cleaned.  Binary classification only.
    """

    name = "CPClean"
    category = ML_ORIENTED

    def __init__(self, n_neighbors: int = 3, max_cleaned: int = 100) -> None:
        if n_neighbors < 1 or max_cleaned < 1:
            raise ValueError("n_neighbors and max_cleaned must be >= 1")
        self.n_neighbors = n_neighbors
        self.max_cleaned = max_cleaned

    def _fit(self, context: CleaningContext, detections: Set[Cell]):
        if context.clean is None:
            raise RuntimeError("CPClean needs an oracle (clean data)")
        table, features, labels, encoder, label_encoder, label_column = _prepare(
            context
        )
        if label_encoder.n_classes != 2:
            raise ValueError(
                "CPClean supports binary classification only "
                f"(got {label_encoder.n_classes} classes)"
            )
        rng = context.rng(71)
        n_rows = table.n_rows
        n_valid = max(2, n_rows // 4)
        order = rng.permutation(n_rows)
        valid_rows = np.sort(order[:n_valid])
        train_rows = np.sort(order[n_valid:])
        dirty_train = sorted(
            {row for row, _ in detections if row in set(train_rows.tolist())}
        )
        clean_encoded = encoder.transform(context.clean)
        clean_labels = label_encoder.transform(
            context.clean.column(label_column)
        )
        current_features = features.copy()
        current_labels = labels.copy()
        cleaned_count = 0
        position = {int(r): k for k, r in enumerate(train_rows)}

        def certain_fraction() -> float:
            """Fraction of validation points whose KNN vote is unanimous
            regardless of the dirty rows (worst-case flip analysis)."""
            model = KNNClassifier(n_neighbors=self.n_neighbors)
            model.fit(current_features[train_rows], current_labels[train_rows])
            neighbor_sets = model._neighbor_indices(features[valid_rows])
            dirty_positions = {position[r] for r in dirty_train}
            certain = 0
            for neighbors in neighbor_sets:
                votes = current_labels[train_rows[neighbors]]
                n_dirty = sum(1 for n in neighbors if int(n) in dirty_positions)
                majority = np.bincount(votes, minlength=2)
                margin = abs(int(majority[0]) - int(majority[1]))
                # Each dirty neighbour could flip its vote in some world.
                if margin > 2 * n_dirty:
                    certain += 1
            return certain / max(len(valid_rows), 1)

        history = [certain_fraction()]
        while dirty_train and cleaned_count < self.max_cleaned:
            if history[-1] >= 1.0:
                break
            # Greedy: clean the dirty row most often appearing as a neighbor.
            model = KNNClassifier(n_neighbors=self.n_neighbors)
            model.fit(current_features[train_rows], current_labels[train_rows])
            neighbor_sets = model._neighbor_indices(features[valid_rows])
            counts: Dict[int, int] = {}
            dirty_positions = {position[r]: r for r in dirty_train}
            for neighbors in neighbor_sets:
                for n in neighbors:
                    if int(n) in dirty_positions:
                        row = dirty_positions[int(n)]
                        counts[row] = counts.get(row, 0) + 1
            target = (
                max(counts, key=counts.get) if counts else dirty_train[0]
            )
            current_features[target] = clean_encoded[target]
            current_labels[target] = clean_labels[target]
            dirty_train.remove(target)
            cleaned_count += 1
            history.append(certain_fraction())
        final = KNNClassifier(n_neighbors=self.n_neighbors)
        final.fit(current_features[train_rows], current_labels[train_rows])
        fitted = FittedTabularModel(final, encoder, label_encoder, label_column)
        return fitted, {
            "records_cleaned": cleaned_count,
            "certainty_history": history,
        }
